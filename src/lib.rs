//! # square-repro — SQUARE (ISCA 2020) reproduction facade
//!
//! Re-exports the public API of the whole workspace so examples,
//! integration tests, and downstream users can depend on one crate.
//!
//! The system reproduces *SQUARE: Strategic Quantum Ancilla Reuse for
//! Modular Quantum Programs via Cost-Effective Uncomputation* (Ding et
//! al., ISCA 2020): a compiler that decides, per reversible-function
//! call, whether to uncompute ancilla qubits (reclaiming them at a gate
//! cost) or leave them as garbage (reserving qubits), optimizing the
//! *active quantum volume* of the program on NISQ and fault-tolerant
//! machines.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md`
//! for the paper-vs-measured record of every table and figure.

pub use square_arch as arch;
pub use square_bench as bench;
pub use square_core as core;
pub use square_lang as lang;
pub use square_metrics as metrics;
pub use square_qir as qir;
pub use square_route as route;
pub use square_sim as sim;
pub use square_verify as verify;
pub use square_workloads as workloads;

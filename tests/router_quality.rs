//! Swap-count quality gates for the lookahead router.
//!
//! The lookahead router's reason to exist is fewer routing swaps than
//! the greedy per-gate swapper. This suite pins that claim on the
//! catalog NISQ subset (auto-sized lattice, SQUARE policy — the
//! paper's headline configuration):
//!
//! * per benchmark, lookahead inserts at most [`PER_BENCH_TOLERANCE`]
//!   more swaps than greedy (measured slack: the worst benchmark is
//!   RD53 at exactly 1.0× — the tolerance absorbs future parameter
//!   tuning, not a real regression);
//! * across the subset the geometric-mean swap ratio must show a
//!   strict improvement;
//! * a fixed golden for MUL32 (the `#[ignore]`d release-mode test)
//!   pins both routers' exact swap counts, so any routing change —
//!   either router, any layer below — is caught as a hard diff.

use square_repro::bench::ablation::{router_compare, swap_ratio_geomean};
use square_repro::bench::SweepArch;
use square_repro::core::RouterKind;
use square_repro::workloads::Benchmark;

/// Per-benchmark slack on `lookahead / greedy` swap counts. The
/// measured worst case on the NISQ subset is 1.000 (RD53); 5% of
/// headroom keeps the gate meaningful while tolerating future window
/// or weight tuning.
const PER_BENCH_TOLERANCE: f64 = 1.05;

#[test]
fn lookahead_swaps_at_most_tolerance_over_greedy_per_nisq_benchmark() {
    let cells = router_compare(&Benchmark::NISQ, &[SweepArch::NisqAuto]);
    let mut checked = 0usize;
    for greedy in cells.iter().filter(|c| c.router == RouterKind::Greedy) {
        let look = cells
            .iter()
            .find(|c| c.router == RouterKind::Lookahead && c.benchmark == greedy.benchmark)
            .unwrap_or_else(|| panic!("{}: no lookahead cell", greedy.benchmark));
        assert_eq!(
            greedy.gates, look.gates,
            "{}: routers must not change program gates",
            greedy.benchmark
        );
        assert!(
            (look.swaps as f64) <= (greedy.swaps as f64) * PER_BENCH_TOLERANCE,
            "{}: lookahead {} swaps vs greedy {} (tolerance {PER_BENCH_TOLERANCE})",
            greedy.benchmark,
            look.swaps,
            greedy.swaps
        );
        checked += 1;
    }
    assert_eq!(checked, Benchmark::NISQ.len());
}

#[test]
fn lookahead_reduces_nisq_catalog_swap_geomean() {
    let cells = router_compare(&Benchmark::NISQ, &[SweepArch::NisqAuto]);
    let geo = swap_ratio_geomean(&cells).expect("nonzero greedy swaps on the lattice");
    // Measured ≈ 0.78 (a 22% reduction); gate at a strict improvement
    // with margin for parameter drift.
    assert!(
        geo < 0.95,
        "lookahead no longer reduces swaps: geomean ratio {geo:.3}"
    );
}

/// Fixed-seed golden for one MUL benchmark: the exact swap counts of
/// both routers on MUL32 (SQUARE policy, auto lattice). MUL32's
/// builder is fully deterministic, so these are stable constants —
/// refresh them only after an *intentional* router change, together
/// with `BENCH_square.json`.
#[test]
#[ignore = "MUL32 compile is release-speed; run in release (CI routing job)"]
fn mul32_router_swap_golden() {
    let cells = router_compare(&[Benchmark::Mul32], &[SweepArch::NisqAuto]);
    let swaps = |kind: RouterKind| {
        cells
            .iter()
            .find(|c| c.router == kind)
            .map(|c| c.swaps)
            .expect("cell compiled")
    };
    assert_eq!(swaps(RouterKind::Greedy), 91_753, "greedy drifted");
    assert_eq!(swaps(RouterKind::Lookahead), 63_519, "lookahead drifted");
}

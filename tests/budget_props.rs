//! Property-based invariants of the `budget:N` policy dimension,
//! driven by the synthetic program generator:
//!
//! * every *satisfiable* budget (≥ the eager-probe width floor) holds
//!   as a hard cap — the compile succeeds and `peak_active ≤ N`;
//! * `budget:inf` (the CLI spelling of "no cap") is field-identical
//!   to the bare base policy — the budget machinery is provably inert
//!   when no cap is set;
//! * shrinking the cap never *increases* width: the peak is monotone
//!   non-decreasing in N over a ladder of satisfiable budgets.

use proptest::prelude::*;
use square_repro::core::{compile, BudgetPolicy, CompilerConfig, Policy};
use square_repro::workloads::synthetic::{synthesize, SynthParams};

fn arb_params() -> impl Strategy<Value = SynthParams> {
    (
        1usize..4,
        1usize..4,
        2usize..6,
        2usize..5,
        2usize..12,
        0u64..1000,
    )
        .prop_map(|(levels, callees, inputs, anc, gates, seed)| SynthParams {
            levels,
            max_callees: callees,
            inputs_per_fn: inputs,
            max_ancilla: anc,
            max_gates: gates,
            seed,
        })
}

/// An ascending ladder of budgets from the satisfiable floor up to
/// (just past) the unbudgeted peak, deduplicated.
fn budget_ladder(floor: usize, peak: usize) -> Vec<usize> {
    let top = peak.max(floor);
    let mut ladder: Vec<usize> = vec![
        floor,
        floor + (top - floor) / 3,
        floor + 2 * (top - floor) / 3,
        top,
        top + 2,
    ];
    ladder.dedup();
    ladder
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Hard cap: for every satisfiable budget N, both
    /// garbage-leaving base policies compile with peak width ≤ N, and
    /// the report names the cap it ran under.
    #[test]
    fn satisfiable_budgets_hold_the_cap(params in arb_params()) {
        let program = synthesize(&params).unwrap();
        let floor = compile(&program, &CompilerConfig::nisq(Policy::Eager))
            .unwrap()
            .peak_active;
        for base in [Policy::Lazy, Policy::Square] {
            let unbudgeted = compile(&program, &CompilerConfig::nisq(base))
                .unwrap()
                .peak_active;
            for n in budget_ladder(floor, unbudgeted) {
                let config = CompilerConfig::nisq(base).with_budget(Some(n));
                let report = compile(&program, &config).unwrap_or_else(|e| {
                    panic!("{}/budget:{n} (floor {floor}): {e}", base.cli_name())
                });
                prop_assert!(
                    report.peak_active <= n,
                    "{}: peak {} over budget {n}",
                    base.cli_name(),
                    report.peak_active
                );
                prop_assert_eq!(report.budget, Some(n));
            }
        }
    }

    /// (b) `budget:inf` is the base policy: parsing the explicit
    /// infinite-cap spec and compiling under it is field-identical to
    /// the bare base policy, decision log included, with zeroed
    /// recompute counters.
    #[test]
    fn infinite_budget_is_field_identical_to_base(params in arb_params()) {
        let program = synthesize(&params).unwrap();
        for base in Policy::ALL {
            let spec = BudgetPolicy::parse(&format!("{},budget:inf", base.cli_name())).unwrap();
            prop_assert_eq!(spec.base, base);
            prop_assert_eq!(spec.budget, None);
            let capped = compile(
                &program,
                &CompilerConfig::nisq(spec.base).with_budget(spec.budget),
            )
            .unwrap();
            let bare = compile(&program, &CompilerConfig::nisq(base)).unwrap();
            prop_assert_eq!(capped.gates, bare.gates);
            prop_assert_eq!(capped.swaps, bare.swaps);
            prop_assert_eq!(capped.depth, bare.depth);
            prop_assert_eq!(capped.qubits, bare.qubits);
            prop_assert_eq!(capped.peak_active, bare.peak_active);
            prop_assert_eq!(capped.aqv, bare.aqv);
            prop_assert_eq!(capped.decisions, bare.decisions);
            prop_assert_eq!(&capped.decision_log, &bare.decision_log);
            prop_assert_eq!(capped.budget, None);
            prop_assert_eq!(capped.recompute, Default::default());
        }
    }

    /// (c) Shrinking the cap never increases width: over an ascending
    /// budget ladder the reported peak is monotone non-decreasing (a
    /// tighter cap forces reclamation earlier, never later).
    #[test]
    fn peak_width_is_monotone_in_the_cap(params in arb_params()) {
        let program = synthesize(&params).unwrap();
        let floor = compile(&program, &CompilerConfig::nisq(Policy::Eager))
            .unwrap()
            .peak_active;
        for base in [Policy::Lazy, Policy::Square] {
            let unbudgeted = compile(&program, &CompilerConfig::nisq(base))
                .unwrap()
                .peak_active;
            let mut previous = 0usize;
            for n in budget_ladder(floor, unbudgeted) {
                let config = CompilerConfig::nisq(base).with_budget(Some(n));
                let peak = compile(&program, &config).unwrap().peak_active;
                prop_assert!(
                    peak >= previous,
                    "{}: peak shrank from {previous} to {peak} when the cap \
                     grew to {n}",
                    base.cli_name()
                );
                previous = peak;
            }
            // And the ladder tops out at the unbudgeted width.
            prop_assert!(previous <= unbudgeted);
        }
    }
}

//! Translation-validation integration tests: the routed, scheduled
//! physical circuit of every benchmark cell must compute exactly what
//! the reference bit-level semantics say it should, under the
//! compiler's own recorded reclamation decisions.
//!
//! The quick test covers the NISQ set on both machine targets in
//! debug builds. The full 17-benchmark × 4-policy × {nisq, ft} matrix
//! per router (204 cells — greedy + lookahead on swap-chain targets,
//! some with multi-million-gate schedules) is `#[ignore]`d
//! here and run in release by CI's translation-validation job:
//!
//! ```sh
//! cargo test --release --test validate -- --ignored
//! ```

use rayon::prelude::*;
use square_repro::core::{Policy, RouterKind};
use square_repro::verify::{
    validate_benchmark, validate_benchmark_with, MachineKind, Mismatch, ValidationError,
};
use square_repro::workloads::Benchmark;

fn cells(
    benchmarks: &[Benchmark],
    machines: &[MachineKind],
) -> Vec<(Benchmark, Policy, MachineKind, RouterKind)> {
    let mut out = Vec::new();
    for &bench in benchmarks {
        for &machine in machines {
            for policy in Policy::ALL {
                for &router in machine.routers() {
                    out.push((bench, policy, machine, router));
                }
            }
        }
    }
    out
}

fn validate_cells(benchmarks: &[Benchmark], machines: &[MachineKind]) {
    let failures: Vec<String> = cells(benchmarks, machines)
        .into_par_iter()
        .map(|(bench, policy, machine, router)| {
            validate_benchmark_with(bench, policy, machine, router)
                .err()
                .map(|e| {
                    format!(
                        "{bench}/{}/{machine}/{}: {e}",
                        policy.cli_name(),
                        router.cli_name()
                    )
                })
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(
        failures.is_empty(),
        "{} cells failed translation validation:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn nisq_benchmark_cells_validate() {
    // The historical PR 3 matrix: both auto targets, greedy-routed
    // cells plus the lookahead cells the router axis added.
    validate_cells(&Benchmark::NISQ, &MachineKind::BOTH);
}

#[test]
fn new_topology_cells_validate_quick() {
    // Heavy-hex and ring through the full three-layer oracle stack,
    // both routers, on a fast benchmark subset (kept small so the
    // debug-mode tier-1 run stays quick; the full NISQ set runs in
    // release below).
    validate_cells(
        &[Benchmark::Rd53, Benchmark::Adder4, Benchmark::BelleS],
        &[MachineKind::HeavyHex, MachineKind::Ring],
    );
}

#[test]
#[ignore = "full NISQ set × {heavyhex, ring} × routers; run in release (CI routing job)"]
fn new_topology_nisq_set_validates() {
    validate_cells(
        &Benchmark::NISQ,
        &[MachineKind::HeavyHex, MachineKind::Ring],
    );
}

#[test]
#[ignore = "full 204-cell matrix; run in release (CI translation-validation job)"]
fn full_sweep_matrix_validates() {
    validate_cells(&Benchmark::ALL, &MachineKind::BOTH);
}

#[test]
fn budget_cells_validate_quick() {
    // Quick budgeted slice through the full oracle stack: cap each
    // cell at its eager-probe peak (the frame-granularity width
    // floor, always satisfiable) and check the cap actually held.
    use square_repro::core::{compile, CompilerConfig};
    use square_repro::verify::validate;
    use square_repro::workloads::build;

    for bench in [Benchmark::Rd53, Benchmark::Adder4] {
        let program = build(bench).unwrap();
        let floor = compile(&program, &CompilerConfig::nisq(Policy::Eager))
            .unwrap()
            .peak_active;
        for base in [Policy::Lazy, Policy::Square] {
            let cfg = CompilerConfig::nisq(base).with_budget(Some(floor));
            let v = validate(&program, &[], &cfg)
                .unwrap_or_else(|e| panic!("{bench}/{}/budget:{floor}: {e}", base.cli_name()));
            assert!(
                v.report.peak_active <= floor,
                "{bench}/{}: peak {} over budget {floor}",
                base.cli_name(),
                v.report.peak_active
            );
            assert_eq!(v.report.budget, Some(floor));
        }
    }
}

#[test]
fn budget_fits_a_machine_the_existing_policies_overflow() {
    // The tentpole payoff (ISSUE 8): Belle on heavyhex:5 (55 qubits).
    // Lazy (peak 255) and unbudgeted Square (peak 132) both overflow;
    // square,budget:55 must compile AND validate through the full
    // oracle stack while staying under the machine.
    use square_repro::core::{compile, ArchSpec, CompileError, CompilerConfig};
    use square_repro::verify::validate;
    use square_repro::workloads::build;

    let program = build(Benchmark::Belle).unwrap();
    let arch = ArchSpec::HeavyHex { d: 5 };
    for overflowing in [Policy::Lazy, Policy::Square] {
        let cfg = CompilerConfig::nisq(overflowing).with_arch(arch);
        let err = compile(&program, &cfg).unwrap_err();
        assert!(
            matches!(err, CompileError::OutOfQubits { .. }),
            "{overflowing} unexpectedly fits heavyhex:5: {err}"
        );
    }
    let cfg = CompilerConfig::nisq(Policy::Square)
        .with_arch(arch)
        .with_budget(Some(55));
    let v = validate(&program, &[], &cfg).expect("budgeted square fits and validates");
    assert!(v.report.peak_active <= 55, "peak {}", v.report.peak_active);
    // The cap was binding: the budget clamp had to force reclamations
    // the unbudgeted policy would have skipped.
    assert!(v.report.decisions.forced > 0);
}

#[test]
fn validation_survives_the_facade_round_trip() {
    // One cell end-to-end through the public facade, checking the
    // report really carries the new artifacts.
    let v = validate_benchmark(Benchmark::Rd53, Policy::Square, MachineKind::Nisq).unwrap();
    assert!(v.report.schedule.is_some());
    assert!(v.report.placement_history.is_some());
    assert!(!v.report.decision_log.is_empty());
    assert_eq!(
        v.report.decision_log.iter().filter(|d| d.reclaim).count() as u64,
        v.report.decisions.reclaimed
    );
    assert_eq!(v.outputs.len(), v.report.entry_register.len());
}

#[test]
fn validation_detects_a_sabotaged_schedule() {
    use square_repro::core::{compile_with_inputs, CompilerConfig};
    use square_repro::qir::Gate;
    use square_repro::route::ScheduledGate;
    use square_repro::verify::{check_physical, replay_virtual};
    use square_repro::workloads::build;

    let program = build(Benchmark::TwoOf5).unwrap();
    let cfg = CompilerConfig::nisq(Policy::Lazy).with_schedule();
    let mut report = compile_with_inputs(&program, &[], &cfg).unwrap();
    let virt_vals = replay_virtual(&report.trace, &report.entry_register).unwrap();
    check_physical(&report, &virt_vals).expect("honest schedule validates");

    // Inject a stray X on a measured cell — the kind of off-by-one a
    // routing bug would produce. The oracle stack must notice.
    let target = report.measure_map()[0];
    let schedule = report.schedule.as_mut().unwrap();
    let end = schedule.last().unwrap().end();
    schedule.push(ScheduledGate {
        gate: Gate::X { target },
        start: end,
        dur: 1,
        is_comm: false,
        guard: None,
        measure: None,
    });
    let err = check_physical(&report, &virt_vals).unwrap_err();
    match err {
        Mismatch::OutputDiff { index, journey, .. } => {
            assert_eq!(index, 0);
            assert!(!journey.is_empty(), "diagnostics carry the journey");
        }
        other => panic!("expected an output diff, got: {other}"),
    }
}

#[test]
fn compile_failures_surface_as_compile_errors() {
    use square_repro::core::{ArchSpec, CompilerConfig};
    use square_repro::verify::validate;
    use square_repro::workloads::build;

    let program = build(Benchmark::Rd53).unwrap();
    let cfg = CompilerConfig::nisq(Policy::Lazy).with_arch(ArchSpec::Grid {
        width: 2,
        height: 2,
    });
    let err = validate(&program, &[], &cfg).unwrap_err();
    assert!(matches!(err, ValidationError::Compile(_)), "got: {err}");
}

//! End-to-end pipeline tests: every benchmark × policy compiles, and
//! the *scheduled physical circuit* computes exactly what the
//! reference bit-level semantics say it should — i.e. swap-chain
//! routing, placement relocation, and mechanical uncomputation all
//! preserve program meaning.

use square_repro::core::{compile_with_inputs, CompilerConfig, Policy};
use square_repro::qir::{ClbitId, Gate, TraceOp, VirtId};
use square_repro::sim::run_ideal;
use square_repro::workloads::{build, Benchmark};
use std::collections::HashMap;

/// Replays the compiler's virtual trace on booleans, asserting ancilla
/// hygiene (every freed qubit is |0⟩), and returns the register values.
fn replay_trace(trace: &[TraceOp], register: &[VirtId], label: &str) -> Vec<bool> {
    let mut bits: HashMap<VirtId, bool> = HashMap::new();
    let mut clbits: HashMap<ClbitId, bool> = HashMap::new();
    for op in trace {
        match op {
            TraceOp::Alloc(v) => {
                assert!(bits.insert(*v, false).is_none(), "{label}: double alloc");
            }
            TraceOp::Free(v) => {
                let val = bits.remove(v).expect("free of dead qubit");
                assert!(!val, "{label}: dirty ancilla freed");
            }
            TraceOp::Gate(g) => apply_gate(&mut bits, g),
            TraceOp::Measure { qubit, clbit } => {
                clbits.insert(*clbit, bits[qubit]);
            }
            TraceOp::CondGate { clbit, gate } => {
                if clbits[clbit] {
                    apply_gate(&mut bits, gate);
                }
            }
        }
    }
    register.iter().map(|v| bits[v]).collect()
}

fn apply_gate(bits: &mut HashMap<VirtId, bool>, g: &Gate<VirtId>) {
    let get = |q: &VirtId| bits[q];
    match g {
        Gate::X { target } => *bits.get_mut(target).unwrap() ^= true,
        Gate::Cx { control, target } => {
            if get(control) {
                *bits.get_mut(target).unwrap() ^= true;
            }
        }
        Gate::Ccx { c0, c1, target } => {
            if get(c0) && get(c1) {
                *bits.get_mut(target).unwrap() ^= true;
            }
        }
        Gate::Swap { a, b } => {
            let (va, vb) = (get(a), get(b));
            bits.insert(*a, vb);
            bits.insert(*b, va);
        }
        Gate::Mcx { controls, target } => {
            if controls.iter().all(get) {
                *bits.get_mut(target).unwrap() ^= true;
            }
        }
    }
}

#[test]
fn physical_schedule_matches_virtual_trace_on_all_nisq_benchmarks() {
    for bench in Benchmark::NISQ {
        let program = build(bench).expect("benchmark builds");
        let inputs: Vec<bool> = (0..bench.input_qubits()).map(|i| i % 2 == 0).collect();
        for policy in Policy::ALL {
            let cfg = CompilerConfig::nisq(policy).with_schedule();
            let report =
                compile_with_inputs(&program, &inputs, &cfg).expect("compiles on auto grid");
            let label = format!("{bench}/{policy}");
            // Virtual trace replay (with hygiene assertions).
            let virt_vals = replay_trace(&report.trace, &report.entry_register, &label);
            // Physical schedule replay.
            let schedule = report.schedule.as_deref().expect("recorded");
            let phys_bits = run_ideal(schedule, report.machine_qubits);
            let phys_vals: Vec<bool> = report
                .measure_map()
                .iter()
                .map(|q| phys_bits[q.index()])
                .collect();
            assert_eq!(
                virt_vals, phys_vals,
                "{label}: physical routing changed program semantics"
            );
        }
    }
}

#[test]
fn medium_benchmarks_compile_under_square() {
    for bench in [Benchmark::Adder32, Benchmark::Modexp, Benchmark::Sha2] {
        let program = build(bench).expect("benchmark builds");
        let report = square_repro::core::compile(&program, &CompilerConfig::nisq(Policy::Square))
            .expect("compiles");
        assert!(report.gates > 0, "{bench}");
        assert_eq!(report.aqv, report.aqv_from_segments(), "{bench}");
        assert_eq!(
            report.aqv,
            report.usage_curve().area(),
            "{bench}: curve area cross-check"
        );
    }
}

#[test]
fn ft_braided_compilation_is_swap_free() {
    for bench in Benchmark::NISQ {
        let program = build(bench).expect("benchmark builds");
        let report = square_repro::core::compile(&program, &CompilerConfig::ft(Policy::Square))
            .expect("compiles");
        assert_eq!(report.swaps, 0, "{bench}: braiding must not insert swaps");
        assert!(report.stats.braids > 0, "{bench}: multi-qubit gates braid");
    }
}

#[test]
fn policies_agree_on_program_outputs() {
    // All policies are semantics-preserving: identical entry-register
    // values after full execution.
    for bench in [Benchmark::Rd53, Benchmark::TwoOf5, Benchmark::BelleS] {
        let program = build(bench).expect("benchmark builds");
        let inputs: Vec<bool> = (0..bench.input_qubits()).map(|i| i % 2 == 1).collect();
        let mut reference: Option<Vec<bool>> = None;
        // Eager and Lazy both uncompute the top level, so they agree
        // bit-for-bit; Square leaves the entry frame forward, so only
        // the store-protected output register is comparable.
        for policy in [Policy::Eager, Policy::Lazy] {
            let cfg = CompilerConfig::nisq(policy);
            let report = compile_with_inputs(&program, &inputs, &cfg).expect("compiles");
            let vals = replay_trace(
                &report.trace,
                &report.entry_register,
                &format!("{bench}/{policy}"),
            );
            match &reference {
                None => reference = Some(vals),
                Some(r) => assert_eq!(r, &vals, "{bench}/{policy}"),
            }
        }
    }
}

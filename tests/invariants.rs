//! Property-based invariants across the whole pipeline, driven by the
//! synthetic program generator: for arbitrary modular programs and
//! any policy, compilation preserves semantics, keeps ancilla hygiene,
//! and reports self-consistent metrics.

use proptest::prelude::*;
use square_repro::core::{compile, CompilerConfig, Policy};
use square_repro::metrics::UsageCurve;
use square_repro::workloads::synthetic::{synthesize, SynthParams};

fn arb_params() -> impl Strategy<Value = SynthParams> {
    (
        1usize..4,
        1usize..4,
        2usize..6,
        2usize..5,
        2usize..12,
        0u64..1000,
    )
        .prop_map(|(levels, callees, inputs, anc, gates, seed)| SynthParams {
            levels,
            max_callees: callees,
            inputs_per_fn: inputs,
            max_ancilla: anc,
            max_gates: gates,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated program compiles under every policy with
    /// internally consistent reports.
    #[test]
    fn reports_are_self_consistent(params in arb_params()) {
        let program = synthesize(&params).unwrap();
        for policy in Policy::ALL {
            let report = compile(&program, &CompilerConfig::nisq(policy)).unwrap();
            prop_assert_eq!(report.aqv, report.aqv_from_segments());
            let curve = UsageCurve::from_segments(
                report.segments.iter().map(|s| (s.start, s.end)),
            );
            prop_assert_eq!(report.aqv, curve.area());
            // Note: the schedule-time liveness peak can exceed the
            // program-order placement peak (ASAP reorders gates), so
            // only machine capacity bounds both.
            prop_assert!(report.peak_active <= report.machine_qubits);
            prop_assert!(curve.peak() as usize <= report.machine_qubits);
            prop_assert!(report.qubits <= report.machine_qubits);
            prop_assert!(report.depth > 0);
        }
    }

    /// Gate-count ordering of the paper's baselines: Eager performs at
    /// least as many program gates as Lazy (recursive recomputation),
    /// and both bound SQUARE's total from above/below sensibly.
    #[test]
    fn gate_count_orderings(params in arb_params()) {
        let program = synthesize(&params).unwrap();
        let gates = |p: Policy| {
            compile(&program, &CompilerConfig::nisq(p)).unwrap().gates
        };
        let (eager, lazy, square) = (gates(Policy::Eager), gates(Policy::Lazy), gates(Policy::Square));
        prop_assert!(eager >= lazy, "eager {eager} < lazy {lazy}");
        // SQUARE never does more gate work than Eager (it can always
        // decline an uncompute Eager would perform).
        prop_assert!(square <= eager, "square {square} > eager {eager}");
    }

    /// FT compilation never inserts swaps; NISQ never braids.
    #[test]
    fn comm_models_are_disjoint(params in arb_params()) {
        let program = synthesize(&params).unwrap();
        let nisq = compile(&program, &CompilerConfig::nisq(Policy::Square)).unwrap();
        prop_assert_eq!(nisq.stats.braids, 0);
        let ft = compile(&program, &CompilerConfig::ft(Policy::Square)).unwrap();
        prop_assert_eq!(ft.swaps, 0);
    }
}

//! End-to-end checks of the parallel policy-sweep engine through the
//! facade crate: the product executor fills every cell, reports
//! meaningful metrics, serializes, and preserves the paper's headline
//! resource ordering (SQUARE never uses more qubits than Lazy — Lazy
//! reserves garbage, SQUARE reclaims).

use square_repro::bench::{run_sweep, SweepArch, SweepSpec};
use square_repro::core::{Policy, RouterKind};
use square_repro::workloads::Benchmark;

fn small_spec() -> SweepSpec {
    SweepSpec {
        benchmarks: vec![Benchmark::Rd53, Benchmark::Adder4],
        policies: vec![Policy::Lazy, Policy::Square],
        archs: vec![SweepArch::NisqAuto],
        routers: vec![RouterKind::Greedy],
        budgets: vec![None],
    }
}

#[test]
fn small_sweep_returns_a_full_matrix_with_positive_aqv() {
    let spec = small_spec();
    let matrix = run_sweep(&spec);
    assert_eq!(matrix.cells.len(), 4, "2 benchmarks × 2 policies");
    for (bench, policy, arch, _router, _budget) in spec.cells() {
        let cell = matrix
            .get(bench, policy, arch)
            .unwrap_or_else(|| panic!("missing cell {bench}/{policy}/{arch}"));
        let report = cell
            .report
            .as_ref()
            .unwrap_or_else(|e| panic!("{bench}/{policy}/{arch} failed: {e}"));
        assert!(report.aqv > 0, "{bench}/{policy}: AQV must be positive");
        assert!(report.gates > 0, "{bench}/{policy}: no gates executed");
        assert!(report.depth > 0, "{bench}/{policy}: zero depth");
    }
}

#[test]
fn square_never_uses_more_qubits_than_lazy() {
    let matrix = run_sweep(&small_spec());
    for bench in [Benchmark::Rd53, Benchmark::Adder4] {
        let qubits = |policy: Policy| {
            matrix
                .get(bench, policy, SweepArch::NisqAuto)
                .and_then(|c| c.report.as_ref().ok())
                .map(|r| (r.qubits, r.peak_active))
                .expect("cell compiled")
        };
        let (lazy_qubits, lazy_peak) = qubits(Policy::Lazy);
        let (square_qubits, square_peak) = qubits(Policy::Square);
        assert!(
            square_qubits <= lazy_qubits,
            "{bench}: SQUARE used {square_qubits} qubits, Lazy {lazy_qubits}"
        );
        assert!(
            square_peak <= lazy_peak,
            "{bench}: SQUARE peaked at {square_peak}, Lazy at {lazy_peak}"
        );
    }
}

#[test]
fn matrix_serializes_every_cell() {
    let matrix = run_sweep(&small_spec());
    let json = serde_json::to_string(&matrix).expect("matrix serializes");
    for bench in ["RD53", "ADDER4"] {
        assert!(json.contains(&format!("\"benchmark\":\"{bench}\"")));
    }
    for policy in ["lazy", "square"] {
        assert!(json.contains(&format!("\"policy\":\"{policy}\"")));
    }
    assert_eq!(json.matches("\"aqv\":").count(), 4, "one report per cell");
}

//! Offline stand-in for `criterion`, covering the harness subset the
//! workspace's benches use: `Criterion::benchmark_group`,
//! `sample_size`, `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark runs a short warm-up plus `sample_size`
//! timed samples and prints min / mean per sample — no statistics
//! engine, plots, or baselines. The workspace builds hermetically
//! (no crates.io access), hence the shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id composed of a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Runs one benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        bencher.report(&self.name, &name.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `routine` over the configured number of samples (after
    /// one untimed warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{label}: no samples");
            return;
        }
        let min = self.samples.iter().min().expect("nonempty");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "  {group}/{label}: min {min:?}, mean {mean:?} over {} samples",
            self.samples.len()
        );
    }
}

/// Bundles benchmark functions (each `fn(&mut Criterion)`) into one
/// runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formats_function_and_parameter() {
        let id = BenchmarkId::new("compile", "square");
        assert_eq!(id.label, "compile/square");
    }
}

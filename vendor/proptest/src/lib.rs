//! Offline stand-in for `proptest`, covering the subset the
//! workspace's property tests use: the [`proptest!`] macro, integer
//! range and tuple strategies, [`any`], `collection::vec`,
//! [`Strategy::prop_map`], and the `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-test stream (FNV of
//! the test path mixed with the case index through SplitMix64), so
//! failures reproduce across runs and CI. There is no shrinking: a
//! failing case panics with the sampled inputs left to the assert
//! message. The workspace builds hermetically (no crates.io access),
//! hence the shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Generator for one named test case: decorrelates tests by
    /// hashing the test path, and cases by mixing in the index.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h ^ (u64::from(case).wrapping_mul(0x9e3779b97f4a7c15)))
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_strategy_uint {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )+};
}
impl_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_int {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}
impl_strategy_int!(i8, i16, i32, i64, isize);

/// Types with a canonical "anything" strategy, via [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A / 0, B / 1);
impl_strategy_tuple!(A / 0, B / 1, C / 2);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`]: an exact `usize` or
    /// a half-open `Range<usize>`.
    pub trait IntoLenRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoLenRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S> {
        let (lo, hi) = len.bounds();
        assert!(lo < hi, "empty vec length range");
        VecStrategy { element, lo, hi }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64;
            let len = self.lo + ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestRng};
}

/// Defines property tests: each `fn name(arg in strategy, ...) {..}`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the leading parenthesised
/// expression is the resolved [`ProptestConfig`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                for __case in 0..__cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under proptest's name (the shim panics instead of
/// returning a `TestCaseError`; there is no shrinking to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = collection::vec(any::<u8>(), 0..5).sample(&mut rng);
            assert!(v.len() < 5);
        }
        let exact = collection::vec(any::<bool>(), 8).sample(&mut rng);
        assert_eq!(exact.len(), 8);
    }

    #[test]
    fn per_case_streams_are_deterministic() {
        let a = TestRng::for_case("m::t", 3).next_u64();
        let b = TestRng::for_case("m::t", 3).next_u64();
        let c = TestRng::for_case("m::t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: tuple + map + vec strategies compose.
        #[test]
        fn macro_smoke(
            pair in (0u32..10, 1usize..4).prop_map(|(a, b)| (a, b)),
            flags in collection::vec(any::<bool>(), 2),
        ) {
            prop_assert!(pair.0 < 10);
            prop_assert!((1..4).contains(&pair.1));
            prop_assert_eq!(flags.len(), 2);
        }
    }
}

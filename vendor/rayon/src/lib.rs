//! Offline stand-in for `rayon`, covering the parallel-iterator subset
//! the sweep engine uses: `into_par_iter()` / `par_iter()`, `map`, and
//! `collect`. Work is executed on `std::thread::scope` workers (one per
//! available core, capped by item count) pulling indices from a shared
//! atomic counter, so results preserve input order while cells run
//! concurrently.
//!
//! The workspace builds hermetically (no crates.io access), hence the
//! vendored shim rather than the real crate. The API is a strict
//! subset; swapping in upstream rayon later is a one-line manifest
//! change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon-style prelude: import the iterator traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads for `n` items: one per available core,
/// never more than the item count, at least one.
fn workers_for(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
        .max(1)
}

/// Applies `f` to every item on a pool of scoped threads, preserving
/// input order in the output.
fn parallel_apply<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = workers_for(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work slot taken twice");
                let result = f(item);
                *out[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker died before filling slot")
        })
        .collect()
}

/// A parallel iterator: a recipe that materialises to an ordered
/// `Vec` when driven by [`ParallelIterator::collect`].
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Runs the recipe to completion, in parallel, preserving order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` (applied on the worker threads).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { inner: self, f }
    }

    /// Filters items through `pred` (applied on the worker threads).
    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { inner: self, pred }
    }

    /// Drives the iterator and collects the results.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Drives `iter` and builds the collection.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.run()
    }
}

/// Conversion of an owned collection into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts into the iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Borrowing parallel iteration (`par_iter()` on slices and vecs).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send + 'a;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterates over references in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Source iterator over an already-materialised vector.
pub struct VecIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecIter<&'a T>;

    fn par_iter(&'a self) -> VecIter<&'a T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecIter<&'a T>;

    fn par_iter(&'a self) -> VecIter<&'a T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_apply(self.inner.run(), &self.f)
    }
}

/// The result of [`ParallelIterator::filter`].
pub struct Filter<I, F> {
    inner: I,
    pred: F,
}

impl<I, F> ParallelIterator for Filter<I, F>
where
    I: ParallelIterator,
    F: Fn(&I::Item) -> bool + Sync + Send,
{
    type Item = I::Item;

    fn run(self) -> Vec<I::Item> {
        let pred = &self.pred;
        parallel_apply(self.inner.run(), &|item| {
            if pred(&item) {
                Some(item)
            } else {
                None
            }
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps() {
        let v: Vec<u32> = (0..64).collect();
        let out: Vec<String> = v
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out[10], "11");
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<u64> = (0..128).collect();
        let sum: Vec<u64> = v.par_iter().map(|&x| x).collect();
        assert_eq!(sum.iter().sum::<u64>(), v.iter().sum::<u64>());
    }

    #[test]
    fn filter_drops_items() {
        let v: Vec<u32> = (0..100).collect();
        let evens: Vec<u32> = v.into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 50);
        assert!(evens.iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn actually_runs_concurrently() {
        // With >1 core, two tasks that each sleep 50ms should overlap.
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            < 2
        {
            return;
        }
        let start = std::time::Instant::now();
        let _: Vec<()> = vec![(), (), (), ()]
            .into_par_iter()
            .map(|()| std::thread::sleep(std::time::Duration::from_millis(50)))
            .collect();
        assert!(
            start.elapsed() < std::time::Duration::from_millis(190),
            "no overlap observed: {:?}",
            start.elapsed()
        );
    }
}

//! Offline stand-in for `serde`'s serialization half, built on an
//! explicit data model: [`Serialize`] lowers a type to a [`Value`]
//! tree, which backends (the vendored `serde_json`) render. There is
//! no derive macro in the hermetic build, so report types implement
//! [`Serialize`] by hand — each impl is a handful of lines via
//! [`Value::map`].
//!
//! The workspace builds with no crates.io access; swapping in real
//! serde later means replacing the manual impls with `#[derive]` and
//! the manifest path with a registry version.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

/// The serialization data model: the JSON-shaped tree every
/// [`Serialize`] implementation lowers into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// null / absent.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key→value map (struct fields keep declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Builds a map value from `(key, value)` pairs; the idiom for
    /// hand-written struct serializers.
    pub fn map<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Value {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a sequence value by serializing every element.
    pub fn seq<'a, T: Serialize + 'a, I: IntoIterator<Item = &'a T>>(items: I) -> Value {
        Value::Seq(items.into_iter().map(Serialize::serialize).collect())
    }

    /// Map lookup by key; `None` for non-maps and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The unsigned-integer content (signed values coerce when
    /// non-negative).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The signed-integer content (unsigned values coerce when they
    /// fit).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The numeric content as a float (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string content.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The sequence content.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Lowers a type into the [`Value`] data model.
pub trait Serialize {
    /// Produces the value tree for `self`.
    fn serialize(&self) -> Value;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )+};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )+};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower() {
        assert_eq!(3u32.serialize(), Value::UInt(3));
        assert_eq!((-2i64).serialize(), Value::Int(-2));
        assert_eq!("hi".serialize(), Value::String("hi".into()));
        assert_eq!(None::<u8>.serialize(), Value::Null);
        assert_eq!(
            vec![1u8, 2].serialize(),
            Value::Seq(vec![Value::UInt(1), Value::UInt(2)])
        );
    }

    #[test]
    fn map_builder_keeps_order() {
        let v = Value::map([("b", Value::UInt(1)), ("a", Value::UInt(2))]);
        match v {
            Value::Map(pairs) => {
                assert_eq!(pairs[0].0, "b");
                assert_eq!(pairs[1].0, "a");
            }
            other => panic!("expected map, got {other:?}"),
        }
    }
}

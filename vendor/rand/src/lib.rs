//! Offline stand-in for the `rand` crate, exposing exactly the API
//! subset this workspace uses: [`rngs::StdRng`] (xoshiro256** seeded
//! through SplitMix64), the [`Rng`] / [`SeedableRng`] traits with
//! `gen`, `gen_range` and `gen_bool`, and [`seq::SliceRandom`].
//!
//! The workspace builds hermetically (no crates.io access), so the
//! handful of external APIs the seed code relies on are vendored here.
//! Semantics match the real crate; the exact random streams do not,
//! which is fine because every consumer only requires determinism for
//! a fixed seed, not rand-compatible streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS entropy. The vendored shim has no
    /// OS entropy source; it derives a seed from the system clock,
    /// which is all the non-test callers need.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types samplable uniformly from a generator via [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                // Lemire multiply-shift; bias is < 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )+};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )+};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling interface (auto-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**, seeded via
    /// SplitMix64 (the reference seeding procedure for xoshiro).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            let span = self.len() as u64;
            let i = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=16u8);
            assert!((1..=16).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}

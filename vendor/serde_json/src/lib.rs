//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`](serde::Value) data model to JSON text, compact
//! ([`to_string`]) or indented ([`to_string_pretty`]), and parses
//! JSON text back into a [`Value`](serde::Value) tree ([`from_str`]).
//! Non-finite floats render as `null`, matching real serde_json's
//! lossy default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Serialization error. The vendored renderer is infallible, but the
/// signatures mirror real serde_json so call sites stay compatible.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // Keep a trailing ".0" so integral floats round-trip
                // as floats, like real serde_json.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
///
/// Integers without fraction/exponent parse as [`Value::UInt`] /
/// [`Value::Int`]; everything else numeric parses as
/// [`Value::Float`]. Trailing non-whitespace is an error.
///
/// # Errors
///
/// [`ParseError`] describing the offending byte offset.
pub fn from_str(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError::at("trailing characters", pos));
    }
    Ok(value)
}

/// Parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl ParseError {
    fn at(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError::at(format!("expected `{lit}`"), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at("unexpected end of input", *pos)),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(ParseError::at("expected `,` or `]`", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(pairs));
                    }
                    _ => return Err(ParseError::at("expected `,` or `}`", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError::at("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| ParseError::at("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at("bad \\u escape", *pos))?;
                        // Surrogates fall back to the replacement
                        // character (the shim never emits them).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so byte
                // boundaries are valid).
                let rest = &bytes[*pos..];
                let s =
                    std::str::from_utf8(rest).map_err(|_| ParseError::at("invalid utf-8", *pos))?;
                let c = s.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at("invalid number", start))?;
    if text.is_empty() || text == "-" {
        return Err(ParseError::at("expected value", start));
    }
    if !float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| ParseError::at("invalid number", start))
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::map([
            ("name", Value::String("adder4".into())),
            ("aqv", Value::UInt(123)),
            ("ratio", Value::Float(0.5)),
            ("tags", Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"adder4","aqv":123,"ratio":0.5,"tags":[true,null]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::map([("k", Value::Seq(vec![Value::UInt(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn escapes_specials() {
        let s = to_string(&"a\"b\\c\nd\u{1}").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_round_trips_render() {
        let v = Value::map([
            ("name", Value::String("adder4".into())),
            ("aqv", Value::UInt(123)),
            ("neg", Value::Int(-7)),
            ("ratio", Value::Float(0.5)),
            ("tags", Value::Seq(vec![Value::Bool(true), Value::Null])),
            (
                "nested",
                Value::map([("k", Value::String("a\"b\n".into()))]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_exponents() {
        let v = from_str(" { \"x\" : [ 1e3 , -2.5 , 18446744073709551615 ] } ").unwrap();
        let xs = v.get("x").unwrap().as_seq().unwrap();
        assert_eq!(xs[0].as_f64(), Some(1000.0));
        assert_eq!(xs[1].as_f64(), Some(-2.5));
        assert_eq!(xs[2].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("true false").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            from_str("\"a\\u0041\\n\"").unwrap(),
            Value::String("aA\n".into())
        );
    }
}

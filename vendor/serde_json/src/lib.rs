//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`](serde::Value) data model to JSON text, compact
//! ([`to_string`]) or indented ([`to_string_pretty`]). Non-finite
//! floats render as `null`, matching real serde_json's lossy default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Serialization error. The vendored renderer is infallible, but the
/// signatures mirror real serde_json so call sites stay compatible.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // Keep a trailing ".0" so integral floats round-trip
                // as floats, like real serde_json.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::map([
            ("name", Value::String("adder4".into())),
            ("aqv", Value::UInt(123)),
            ("ratio", Value::Float(0.5)),
            ("tags", Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"adder4","aqv":123,"ratio":0.5,"tags":[true,null]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::map([("k", Value::Seq(vec![Value::UInt(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn escapes_specials() {
        let s = to_string(&"a\"b\\c\nd\u{1}").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}

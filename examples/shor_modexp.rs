//! Shor's-algorithm arithmetic: compile modular exponentiation and
//! reproduce the paper's Fig.-1 qubit-usage curves, then verify the
//! arithmetic against native integers via the reference semantics.
//!
//! Run with: `cargo run --release --example shor_modexp`

use square_repro::core::{compile, CompilerConfig, Policy};
use square_repro::qir::sem;
use square_repro::workloads::arith::{from_bits, to_bits};
use square_repro::workloads::modexp::ModexpSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModexpSpec { n: 6, k: 4, g: 5 };
    let program = square_repro::workloads::catalog::modexp_program(spec)?;

    // Correctness: the compiled arithmetic equals g^e mod 2^n.
    for e in [0u64, 1, 5, 11, 15] {
        let inputs = to_bits(e, spec.k);
        let mut oracle = |_m: square_repro::qir::ModuleId, d: usize| d > 0;
        let run = sem::run(&program, &inputs, &mut oracle)?;
        let out_base = spec.k + spec.n;
        let got = from_bits(&run.outputs[out_base..out_base + spec.n]);
        assert_eq!(got, spec.reference(e));
        println!(
            "g^{e} mod 2^{} = {got}  (reference {})",
            spec.n,
            spec.reference(e)
        );
    }

    // Resource shape: the Fig. 1 trade-off.
    println!(
        "\n{:<8} {:>8} {:>8} {:>10} {:>12}",
        "Policy", "Peak", "Depth", "AQV", "Gates"
    );
    for policy in Policy::BASELINE_THREE {
        let report = compile(&program, &CompilerConfig::nisq(policy))?;
        let curve = report.usage_curve();
        println!(
            "{:<8} {:>8} {:>8} {:>10} {:>12}",
            policy.label(),
            curve.peak(),
            report.depth,
            report.aqv,
            report.gates
        );
    }
    println!("\nSQUARE selectively uncomputes: lowest area under the curve.");
    Ok(())
}

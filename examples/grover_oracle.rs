//! A Grover-style oracle under noise: compile the 2OF5 weight oracle
//! with each policy, then estimate schedule fidelity with the
//! Monte-Carlo trajectory simulator (the paper's Fig. 8c methodology).
//!
//! Run with: `cargo run --release --example grover_oracle`

use square_repro::arch::{NoiseParams, PhysId};
use square_repro::core::{compile_with_inputs, ArchSpec, CompilerConfig, Policy};
use square_repro::metrics::{total_variation_distance, Histogram};
use square_repro::sim::{run_ideal, sample_histogram, NoiseModel, TrajectoryConfig};
use square_repro::workloads::{build, Benchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build(Benchmark::TwoOf5)?;
    // Mark exactly two of five inputs: the oracle output should be 1.
    let inputs = vec![true, false, true, false, false];
    let noise = NoiseModel::new(NoiseParams::paper_simulation().scaled(0.05));

    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>8}",
        "Policy", "Gates", "Swaps", "d_TV", "Oracle"
    );
    for policy in Policy::BASELINE_THREE {
        let cfg = CompilerConfig::nisq(policy)
            .with_arch(ArchSpec::Grid {
                width: 5,
                height: 5,
            })
            .with_schedule();
        let report = compile_with_inputs(&program, &inputs, &cfg)?;
        let schedule = report.schedule.as_deref().expect("schedule recorded");
        let measure: Vec<PhysId> = report.measure_map();

        let ideal_bits = run_ideal(schedule, report.machine_qubits);
        let ideal: Vec<bool> = measure.iter().map(|q| ideal_bits[q.index()]).collect();
        // Oracle output is the last entry-register qubit.
        let oracle_bit = *ideal.last().expect("register nonempty");
        assert!(oracle_bit, "2-of-5 oracle must fire on this input");

        let mut ideal_hist = Histogram::new();
        ideal_hist.record(Histogram::pack(&ideal));
        let noisy = sample_histogram(
            schedule,
            report.machine_qubits,
            &measure,
            &noise,
            &TrajectoryConfig {
                shots: 4096,
                seed: 7,
            },
        );
        let dtv = total_variation_distance(&noisy, &ideal_hist);
        println!(
            "{:<8} {:>8} {:>8} {:>10.4} {:>8}",
            policy.label(),
            report.gates,
            report.swaps,
            dtv,
            oracle_bit
        );
    }
    println!("\nLower d_TV = the schedule survives noise better (SQUARE wins).");
    Ok(())
}

//! Quickstart: build a modular reversible program with the
//! compute–store–uncompute construct, compile it under every
//! ancilla-reuse policy, and compare the resource numbers.
//!
//! Run with: `cargo run --release --example quickstart`

use square_repro::core::{compile, ArchSpec, CompilerConfig, Policy};
use square_repro::qir::ProgramBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny modular program in the style of the paper's Fig. 6:
    // `fun1` computes into an ancilla, stores the result out, and (per
    // the compiler's decision) uncomputes.
    let mut b = ProgramBuilder::new();
    let fun1 = b.module("fun1", 4, 1, |m| {
        let (i0, i1, i2, out) = (m.param(0), m.param(1), m.param(2), m.param(3));
        let a = m.ancilla(0);
        m.ccx(i0, i1, i2);
        m.cx(i2, a);
        m.ccx(i1, i0, a);
        m.store();
        m.cx(a, out);
    })?;
    let main_mod = b.module("main", 0, 5, |m| {
        let q: Vec<_> = (0..4).map(|i| m.ancilla(i)).collect();
        let out = m.ancilla(4);
        m.call(fun1, &q);
        m.call(fun1, &q);
        m.store();
        m.cx(q[3], out);
    })?;
    let program = b.finish(main_mod)?;

    println!("{}", square_repro::qir::pretty::program_listing(&program));

    // Compile under each policy on a 4x4 NISQ lattice.
    let arch = ArchSpec::Grid {
        width: 4,
        height: 4,
    };
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "Policy", "#Gates", "#Qubits", "Depth", "#Swaps", "AQV"
    );
    for policy in Policy::ALL {
        let report = compile(&program, &CompilerConfig::nisq(policy).with_arch(arch))?;
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>8} {:>10}",
            policy.label(),
            report.gates,
            report.qubits,
            report.depth,
            report.swaps,
            report.aqv
        );
    }
    Ok(())
}

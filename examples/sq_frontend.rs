//! The `.sq` textual frontend: parse the committed `examples/sq/`
//! corpus, compile each program under every ancilla-reuse policy, and
//! show what a frontend diagnostic looks like.
//!
//! Run with: `cargo run --release --example sq_frontend`

use std::path::Path;

use square_repro::bench::SweepArch;
use square_repro::core::{compile, Policy};
use square_repro::lang;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/sq");
    let mut files: Vec<_> = std::fs::read_dir(&corpus)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    files.sort();

    for file in files
        .iter()
        .filter(|p| p.extension().is_some_and(|x| x == "sq"))
    {
        let source = std::fs::read_to_string(file)?;
        let program = match lang::parse_program(&source) {
            Ok(p) => p,
            Err(diags) => {
                eprint!(
                    "{}",
                    lang::render(&source, &file.display().to_string(), &diags)
                );
                return Err("corpus file failed to parse".into());
            }
        };
        // The canonical listing parses back to the identical program.
        lang::check_roundtrip(&program)?;
        println!(
            "{} — {} modules, entry `{}`",
            file.file_name().unwrap().to_string_lossy(),
            program.len(),
            program.module(program.entry()).name()
        );
        println!(
            "  {:<18} {:>8} {:>8} {:>8} {:>10}",
            "policy", "gates", "depth", "qubits", "aqv"
        );
        for policy in Policy::ALL {
            let report = compile(&program, &SweepArch::NisqAuto.config(policy))?;
            println!(
                "  {:<18} {:>8} {:>8} {:>8} {:>10}",
                policy.label(),
                report.gates,
                report.depth,
                report.qubits,
                report.aqv
            );
        }
        println!();
    }

    // What the frontend does with a broken program: every error in one
    // pass, spanned, with suggestions.
    let broken = "\
entry module main(0 params, 2 ancilla) {
  compute {
    ccz a0 a1;
    call missing(a0);
  }
}
";
    println!("diagnostics for a deliberately broken program:\n");
    match lang::parse_program(broken) {
        Ok(_) => unreachable!("broken program must not parse"),
        Err(diags) => print!("{}", lang::render(broken, "broken.sq", &diags)),
    }
    Ok(())
}

//! The `.sq` textual frontend: parse the committed `examples/sq/`
//! corpus, compile each program under every ancilla-reuse policy, and
//! show what a frontend diagnostic looks like.
//!
//! Run with: `cargo run --release --example sq_frontend`

use std::path::Path;

use square_repro::bench::SweepArch;
use square_repro::core::{compile, Policy};
use square_repro::lang;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let corpus = root.join("examples/sq");
    let mut files: Vec<_> = std::fs::read_dir(&corpus)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    files.sort();

    // Corpus files may `import std;` — resolve against the shipped
    // standard library, wherever the example is run from.
    let loader = lang::SearchPathLoader::new(vec![root.join("lib")]);
    for file in files
        .iter()
        .filter(|p| p.extension().is_some_and(|x| x == "sq"))
    {
        let source = std::fs::read_to_string(file)?;
        let (map, parsed) = lang::parse_files(&file.display().to_string(), &source, &loader);
        let program = match parsed {
            Ok(p) => p,
            Err(diags) => {
                eprint!("{}", map.render(&diags));
                return Err("corpus file failed to parse".into());
            }
        };
        // The canonical listing parses back to the identical program.
        lang::check_roundtrip(&program)?;
        println!(
            "{} — {} modules, entry `{}`",
            file.file_name().unwrap().to_string_lossy(),
            program.len(),
            program.module(program.entry()).name()
        );
        println!(
            "  {:<18} {:>8} {:>8} {:>8} {:>10}",
            "policy", "gates", "depth", "qubits", "aqv"
        );
        for policy in Policy::ALL {
            let report = compile(&program, &SweepArch::NisqAuto.config(policy))?;
            println!(
                "  {:<18} {:>8} {:>8} {:>8} {:>10}",
                policy.label(),
                report.gates,
                report.depth,
                report.qubits,
                report.aqv
            );
        }
        println!();
    }

    // What the frontend does with a broken program: every error in one
    // pass, spanned, with suggestions.
    let broken = "\
entry module main(0 params, 2 ancilla) {
  compute {
    ccz a0 a1;
    call missing(a0);
  }
}
";
    println!("diagnostics for a deliberately broken program:\n");
    match lang::parse_program(broken) {
        Ok(_) => unreachable!("broken program must not parse"),
        Err(diags) => print!("{}", lang::render(broken, "broken.sq", &diags)),
    }
    Ok(())
}

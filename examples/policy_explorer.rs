//! Explore how program structure steers the reclamation trade-off:
//! sweep the synthetic-benchmark knobs (nesting depth, fan-out) and
//! watch the preferred policy flip — the effect behind the paper's
//! Fig. 5.
//!
//! Run with: `cargo run --release --example policy_explorer`

use square_repro::core::{compile, CompilerConfig, Policy};
use square_repro::workloads::synthetic::{synthesize, SynthParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<26} {:>10} {:>10} {:>10}  winner",
        "Structure", "LAZY", "EAGER", "SQUARE"
    );
    for (label, params) in [
        (
            "deep+light (Belle-ish)",
            SynthParams {
                levels: 6,
                max_callees: 2,
                inputs_per_fn: 4,
                max_ancilla: 3,
                max_gates: 5,
                seed: 11,
            },
        ),
        (
            "shallow+heavy (Elsa-ish)",
            SynthParams {
                levels: 2,
                max_callees: 4,
                inputs_per_fn: 10,
                max_ancilla: 8,
                max_gates: 60,
                seed: 12,
            },
        ),
        (
            "wide+ancilla-hungry",
            SynthParams {
                levels: 2,
                max_callees: 6,
                inputs_per_fn: 3,
                max_ancilla: 16,
                max_gates: 3,
                seed: 0xF32,
            },
        ),
    ] {
        let program = synthesize(&params)?;
        let mut row = Vec::new();
        for policy in Policy::BASELINE_THREE {
            let report = compile(&program, &CompilerConfig::nisq(policy))?;
            row.push((policy, report.aqv));
        }
        let best = row.iter().min_by_key(|(_, a)| *a).expect("nonempty");
        println!(
            "{:<26} {:>10} {:>10} {:>10}  {}",
            label,
            row[0].1,
            row[1].1,
            row[2].1,
            best.0.label()
        );
    }
    println!("\nSQUARE adapts per structure; fixed policies only win their home turf.");
    Ok(())
}

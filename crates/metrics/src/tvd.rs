//! Total variation distance between measurement-outcome histograms
//! (the d_TV score of Fig. 8c).

use std::collections::HashMap;

/// A shot histogram over measurement outcomes. Outcomes are packed
/// little-endian into a `u64` (qubit 0 = bit 0) — ample for the ≤ 20
/// qubit circuits of the paper's noise-simulation study.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: HashMap<u64, u64>,
    shots: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one shot with the given packed outcome.
    pub fn record(&mut self, outcome: u64) {
        *self.counts.entry(outcome).or_insert(0) += 1;
        self.shots += 1;
    }

    /// Total shots recorded.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Empirical probability of an outcome.
    pub fn probability(&self, outcome: u64) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            *self.counts.get(&outcome).unwrap_or(&0) as f64 / self.shots as f64
        }
    }

    /// Iterates `(outcome, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Packs a boolean outcome vector (qubit 0 first) into the key
    /// format used by [`Histogram::record`].
    ///
    /// # Panics
    ///
    /// Panics if more than 64 bits are supplied.
    pub fn pack(bits: &[bool]) -> u64 {
        assert!(bits.len() <= 64, "outcome wider than 64 bits");
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for outcome in iter {
            h.record(outcome);
        }
        h
    }
}

/// Total variation distance `½ Σ_x |p(x) − q(x)|` between two
/// histograms' empirical distributions. Ranges over `[0, 1]`;
/// 0 for identical distributions.
pub fn total_variation_distance(p: &Histogram, q: &Histogram) -> f64 {
    let mut keys: Vec<u64> = p.counts.keys().chain(q.counts.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    0.5 * keys
        .iter()
        .map(|&k| (p.probability(k) - q.probability(k)).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_distance() {
        let p: Histogram = [1u64, 2, 2, 3].into_iter().collect();
        let q: Histogram = [1u64, 2, 2, 3].into_iter().collect();
        assert_eq!(total_variation_distance(&p, &q), 0.0);
    }

    #[test]
    fn disjoint_distributions_have_distance_one() {
        let p: Histogram = [0u64; 10].into_iter().collect();
        let q: Histogram = [1u64; 10].into_iter().collect();
        assert!((total_variation_distance(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_mass_vs_noisy() {
        // Ideal: always 5. Noisy: 75% 5, 25% elsewhere → d_TV = 0.25.
        let p: Histogram = [5u64; 4].into_iter().collect();
        let q: Histogram = [5u64, 5, 5, 7].into_iter().collect();
        assert!((total_variation_distance(&p, &q) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pack_round_trip() {
        let bits = [true, false, true, true];
        assert_eq!(Histogram::pack(&bits), 0b1101);
        assert_eq!(Histogram::pack(&[]), 0);
    }

    #[test]
    fn probability_and_shots() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(9);
        assert_eq!(h.shots(), 3);
        assert!((h.probability(3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.probability(42), 0.0);
    }

    #[test]
    fn empty_histograms_are_at_distance_zero() {
        // Boundary: no shots on either side — the sum ranges over an
        // empty support, not a 0/0 division.
        let p = Histogram::new();
        let q = Histogram::new();
        assert_eq!(p.shots(), 0);
        assert_eq!(total_variation_distance(&p, &q), 0.0);
    }

    #[test]
    fn empty_vs_point_mass_is_distance_one() {
        // Boundary: an empty histogram assigns probability 0 to every
        // outcome, so it sits at maximal distance from any point mass.
        let p = Histogram::new();
        let q: Histogram = [3u64; 5].into_iter().collect();
        assert_eq!(total_variation_distance(&p, &q), 0.5 * 1.0);
        assert_eq!(total_variation_distance(&q, &p), 0.5 * 1.0);
    }

    #[test]
    fn fully_disjoint_supports_are_at_distance_one() {
        let p: Histogram = [0u64, 1, 2].into_iter().collect();
        let q: Histogram = [3u64, 4, 5].into_iter().collect();
        assert!((total_variation_distance(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_with_different_shot_counts() {
        // Same empirical distribution at different sample sizes: still
        // distance zero — d_TV compares probabilities, not counts.
        let p: Histogram = [1u64, 2].into_iter().collect();
        let q: Histogram = [1u64, 1, 2, 2].into_iter().collect();
        assert_eq!(total_variation_distance(&p, &q), 0.0);
    }

    #[test]
    fn symmetry() {
        let p: Histogram = [0u64, 0, 1].into_iter().collect();
        let q: Histogram = [0u64, 1, 1].into_iter().collect();
        assert_eq!(
            total_variation_distance(&p, &q),
            total_variation_distance(&q, &p)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// d_TV is a metric bounded in [0,1], zero iff the empirical
        /// distributions coincide (on these finite supports).
        #[test]
        fn bounded_and_symmetric(
            a in proptest::collection::vec(0u64..8, 1..100),
            b in proptest::collection::vec(0u64..8, 1..100),
        ) {
            let p: Histogram = a.into_iter().collect();
            let q: Histogram = b.into_iter().collect();
            let d = total_variation_distance(&p, &q);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
            let d2 = total_variation_distance(&q, &p);
            prop_assert!((d - d2).abs() < 1e-12);
        }

        /// Triangle inequality on three empirical distributions.
        #[test]
        fn triangle(
            a in proptest::collection::vec(0u64..4, 1..50),
            b in proptest::collection::vec(0u64..4, 1..50),
            c in proptest::collection::vec(0u64..4, 1..50),
        ) {
            let p: Histogram = a.into_iter().collect();
            let q: Histogram = b.into_iter().collect();
            let r: Histogram = c.into_iter().collect();
            let pq = total_variation_distance(&p, &q);
            let qr = total_variation_distance(&q, &r);
            let pr = total_variation_distance(&p, &r);
            prop_assert!(pr <= pq + qr + 1e-12);
        }
    }
}

//! Active quantum volume and qubit-usage curves.
//!
//! `AQV = Σ_q Σ_(ti,tf)∈T_q (tf − ti)` over live segments (paper,
//! Section III-B). Two independent computations are provided — a
//! direct sum over segments and the area under the usage step curve —
//! and property tests assert they agree.

/// Direct AQV: sum of segment durations.
///
/// Segments are `(start, end)` pairs in scheduler cycles; `end <
/// start` segments are rejected by a debug assertion and clamp to 0 in
/// release builds.
pub fn aqv(segments: impl IntoIterator<Item = (u64, u64)>) -> u64 {
    segments
        .into_iter()
        .map(|(s, e)| {
            debug_assert!(e >= s, "segment ends before it starts");
            e.saturating_sub(s)
        })
        .sum()
}

/// The qubits-in-use vs. time step curve (Fig. 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UsageCurve {
    /// Breakpoints `(t, live_count)`: from time `t` (inclusive) until
    /// the next breakpoint, `live_count` qubits are live. Sorted by
    /// `t`; the curve is 0 before the first breakpoint.
    points: Vec<(u64, u64)>,
}

impl UsageCurve {
    /// Builds the curve from live segments.
    pub fn from_segments(segments: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut events: Vec<(u64, i64)> = Vec::new();
        for (s, e) in segments {
            if e > s {
                events.push((s, 1));
                events.push((e, -1));
            }
        }
        events.sort_unstable();
        let mut points = Vec::new();
        let mut live = 0i64;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                live += events[i].1;
                i += 1;
            }
            points.push((t, live as u64));
        }
        UsageCurve { points }
    }

    /// The breakpoints of the step curve.
    pub fn points(&self) -> &[(u64, u64)] {
        &self.points
    }

    /// Peak simultaneous liveness.
    pub fn peak(&self) -> u64 {
        self.points.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// Area under the curve — equal to [`aqv`] over the same segments.
    pub fn area(&self) -> u64 {
        let mut area = 0u64;
        for w in self.points.windows(2) {
            area += (w[1].0 - w[0].0) * w[0].1;
        }
        area
    }

    /// Live count at time `t`.
    pub fn at(&self, t: u64) -> u64 {
        match self.points.binary_search_by_key(&t, |&(bt, _)| bt) {
            Ok(i) => self.points[i].1,
            Err(0) => 0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Samples the curve at `n` evenly spaced times across its span —
    /// handy for printing Fig.-1-style time series.
    pub fn sample(&self, n: usize) -> Vec<(u64, u64)> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let t0 = self.points[0].0;
        let t1 = self.points[self.points.len() - 1].0;
        (0..n)
            .map(|i| {
                let t = t0 + (t1 - t0) * i as u64 / (n.max(2) - 1).max(1) as u64;
                (t, self.at(t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aqv_sums_durations() {
        assert_eq!(aqv([(0, 10), (5, 7), (20, 21)]), 13);
        assert_eq!(aqv(Vec::<(u64, u64)>::new()), 0);
    }

    #[test]
    fn curve_area_matches_aqv() {
        let segs = vec![(0u64, 10u64), (2, 8), (8, 12), (30, 31)];
        let curve = UsageCurve::from_segments(segs.clone());
        assert_eq!(curve.area(), aqv(segs));
    }

    #[test]
    fn curve_tracks_overlap() {
        let curve = UsageCurve::from_segments([(0, 4), (2, 6)]);
        assert_eq!(curve.at(0), 1);
        assert_eq!(curve.at(2), 2);
        assert_eq!(curve.at(3), 2);
        assert_eq!(curve.at(4), 1);
        assert_eq!(curve.at(6), 0);
        assert_eq!(curve.peak(), 2);
    }

    #[test]
    fn empty_segments_are_ignored() {
        let curve = UsageCurve::from_segments([(5, 5)]);
        assert_eq!(curve.points().len(), 0);
        assert_eq!(curve.area(), 0);
    }

    #[test]
    fn sampling_spans_curve() {
        let curve = UsageCurve::from_segments([(0, 100)]);
        let samples = curve.sample(5);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0], (0, 1));
        assert_eq!(samples[4].0, 100);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The two AQV computations — segment-sum and curve-area —
        /// agree for arbitrary segment sets.
        #[test]
        fn area_equals_sum(segs in proptest::collection::vec((0u64..1000, 0u64..1000), 0..50)) {
            let segs: Vec<(u64, u64)> = segs
                .into_iter()
                .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
                .collect();
            let curve = UsageCurve::from_segments(segs.clone());
            prop_assert_eq!(curve.area(), aqv(segs));
        }

        /// Peak equals the maximum pointwise overlap count.
        #[test]
        fn peak_is_max_overlap(segs in proptest::collection::vec((0u64..100, 1u64..20), 1..20)) {
            let segs: Vec<(u64, u64)> = segs.into_iter().map(|(s, d)| (s, s + d)).collect();
            let curve = UsageCurve::from_segments(segs.clone());
            let brute_peak = (0..=121u64)
                .map(|t| segs.iter().filter(|&&(s, e)| s <= t && t < e).count() as u64)
                .max()
                .unwrap();
            prop_assert_eq!(curve.peak(), brute_peak);
        }
    }
}

//! Worst-case analytical program success rate (Fig. 8b).
//!
//! The paper estimates success by "multiplying the single-qubit /
//! two-qubit gate success rates and the probability of qubit
//! coherence" (Section V-C2). We do the same: every elementary gate
//! succeeds independently, and every live qubit-cycle of exposure
//! (i.e. the active quantum volume) decays against T1.

use square_arch::NoiseParams;
use square_qir::Gate;

/// Tally of elementary gate counts for error accounting. Composite
/// gates decompose: SWAP = 3 CNOTs; Toffoli = 6 CNOTs + 9 single-qubit
/// gates (standard Clifford+T network).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateTally {
    /// Elementary single-qubit gates.
    pub one_qubit: u64,
    /// Elementary two-qubit gates.
    pub two_qubit: u64,
}

impl GateTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one IR gate's elementary decomposition to the tally.
    pub fn add_gate<Q>(&mut self, gate: &Gate<Q>) {
        match gate {
            Gate::X { .. } => self.one_qubit += 1,
            Gate::Cx { .. } => self.two_qubit += 1,
            Gate::Swap { .. } => self.two_qubit += 3,
            Gate::Ccx { .. } => {
                self.two_qubit += 6;
                self.one_qubit += 9;
            }
            Gate::Mcx { controls, .. } => match controls.len() {
                0 => self.one_qubit += 1,
                1 => self.two_qubit += 1,
                n => {
                    let toffolis = 2 * n as u64 - 3;
                    self.two_qubit += 6 * toffolis;
                    self.one_qubit += 9 * toffolis;
                }
            },
        }
    }

    /// Tallies a whole gate sequence.
    pub fn from_gates<'a, Q: 'a>(gates: impl IntoIterator<Item = &'a Gate<Q>>) -> Self {
        let mut t = Self::new();
        for g in gates {
            t.add_gate(g);
        }
        t
    }
}

/// Worst-case success probability of a program run:
/// `(1−p1)^n1 · (1−p2)^n2 · exp(−AQV·t_cycle/T1)`.
///
/// `aqv_cycles` is the program's active quantum volume in scheduler
/// cycles — using AQV rather than `qubits × depth` is precisely the
/// paper's argument for the metric (Section III-B, advantage 1).
pub fn success_rate(tally: &GateTally, aqv_cycles: u64, noise: &NoiseParams) -> f64 {
    let gate_term = (1.0 - noise.p1).powf(tally.one_qubit as f64)
        * (1.0 - noise.p2).powf(tally.two_qubit as f64);
    gate_term * noise.coherence_prob(aqv_cycles)
}

/// Paper-style worst-case success estimate: per *scheduled gate*
/// success rates (1q gates at `1−p1`, multi-qubit gates — including
/// routing swaps — at `1−p2`) times a single coherence factor over the
/// circuit's wall-clock duration, `exp(−depth·t_cycle/T1)`. This is
/// the granularity at which Section V-C2 multiplies probabilities;
/// [`success_rate`] provides the stricter elementary-gate accounting.
pub fn worst_case_success(
    gates_1q: u64,
    gates_multi: u64,
    depth_cycles: u64,
    noise: &NoiseParams,
) -> f64 {
    (1.0 - noise.p1).powf(gates_1q as f64)
        * (1.0 - noise.p2).powf(gates_multi as f64)
        * noise.coherence_prob(depth_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_arch::NoiseParams;

    #[test]
    fn tally_decomposes_composites() {
        let mut t = GateTally::new();
        t.add_gate(&Gate::Swap { a: 0u32, b: 1 });
        t.add_gate(&Gate::Ccx {
            c0: 0u32,
            c1: 1,
            target: 2,
        });
        assert_eq!(t.two_qubit, 3 + 6);
        assert_eq!(t.one_qubit, 9);
    }

    #[test]
    fn more_gates_lower_success() {
        let noise = NoiseParams::paper_simulation();
        let small = GateTally {
            one_qubit: 10,
            two_qubit: 10,
        };
        let large = GateTally {
            one_qubit: 100,
            two_qubit: 100,
        };
        assert!(success_rate(&small, 0, &noise) > success_rate(&large, 0, &noise));
    }

    #[test]
    fn more_volume_lowers_success() {
        let noise = NoiseParams::paper_simulation();
        let t = GateTally {
            one_qubit: 10,
            two_qubit: 10,
        };
        assert!(success_rate(&t, 100, &noise) > success_rate(&t, 100_000, &noise));
    }

    #[test]
    fn noiseless_is_certain() {
        let noise = NoiseParams::noiseless();
        let t = GateTally {
            one_qubit: 1000,
            two_qubit: 1000,
        };
        assert!((success_rate(&t, 1_000_000, &noise) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_success_in_paper_range() {
        // A SQUARE-like NISQ schedule: ~100 multi-qubit gates, depth
        // ~250 cycles — success should land in the paper's 0.1–0.6.
        let noise = NoiseParams::paper_simulation();
        let s = worst_case_success(30, 110, 260, &noise);
        assert!((0.05..0.7).contains(&s), "got {s}");
    }

    #[test]
    fn empty_tally_and_zero_volume_are_certain() {
        // Boundary: no gates and no exposure — success is exactly 1
        // even under realistic noise (0^0-style powf edge).
        let noise = NoiseParams::paper_simulation();
        assert_eq!(success_rate(&GateTally::new(), 0, &noise), 1.0);
        assert_eq!(worst_case_success(0, 0, 0, &noise), 1.0);
    }

    #[test]
    fn single_gate_matches_closed_form() {
        let noise = NoiseParams::paper_simulation();
        let t = GateTally {
            one_qubit: 1,
            two_qubit: 0,
        };
        assert!((success_rate(&t, 0, &noise) - (1.0 - noise.p1)).abs() < 1e-15);
        assert!((worst_case_success(0, 1, 0, &noise) - (1.0 - noise.p2)).abs() < 1e-15);
    }

    #[test]
    fn mcx_tally_boundaries() {
        // 0 controls = X; 1 control = CNOT; the generic branch starts
        // at 2 where it must coincide with the Toffoli decomposition.
        let mut t0 = GateTally::new();
        t0.add_gate(&Gate::Mcx {
            controls: vec![],
            target: 0u32,
        });
        assert_eq!((t0.one_qubit, t0.two_qubit), (1, 0));
        let mut t1 = GateTally::new();
        t1.add_gate(&Gate::Mcx {
            controls: vec![1u32],
            target: 0,
        });
        assert_eq!((t1.one_qubit, t1.two_qubit), (0, 1));
        let mut t2 = GateTally::new();
        t2.add_gate(&Gate::Mcx {
            controls: vec![1u32, 2],
            target: 0,
        });
        let mut ccx = GateTally::new();
        ccx.add_gate(&Gate::Ccx {
            c0: 1u32,
            c1: 2,
            target: 0,
        });
        assert_eq!(t2, ccx, "2-control MCX ≡ Toffoli accounting");
    }

    #[test]
    fn success_bounded_by_unit_interval() {
        let noise = NoiseParams::paper_simulation();
        let t = GateTally {
            one_qubit: 12345,
            two_qubit: 6789,
        };
        let s = success_rate(&t, 987654, &noise);
        assert!((0.0..=1.0).contains(&s));
    }
}

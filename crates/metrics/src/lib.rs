//! # square-metrics — resource metrics for SQUARE
//!
//! Implements the paper's figure of merit, **active quantum volume**
//! (Section III-B): the sum over qubits of their live-interval
//! durations, i.e. the area under the qubits-in-use vs. time curve of
//! Fig. 1. Heap time (after reclamation, before reuse) is excluded —
//! a reclaimed qubit rests in |0⟩ and is not exposed to decoherence.
//!
//! Also provides the worst-case analytical success-rate model used in
//! Fig. 8b (product of gate success probabilities and qubit coherence)
//! and the total-variation distance used to score noisy-simulation
//! outcomes in Fig. 8c.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aqv;
pub mod success;
pub mod tvd;

pub use aqv::{aqv, UsageCurve};
pub use success::{success_rate, worst_case_success, GateTally};
pub use tvd::{total_variation_distance, Histogram};

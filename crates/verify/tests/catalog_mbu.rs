//! Full-catalog translation validation with measurement-based
//! uncomputation enabled: every NISQ benchmark compiles under the
//! Eager policy (the upper bound on MBU engagement) with `mbu` on,
//! and the result passes all three oracle layers — virtual-trace
//! hygiene, the reference semantics, and the physical replay with its
//! classical-bit side channel — on both the NISQ lattice and the FT
//! tile grid.

use square_verify::{default_inputs, validate, MachineKind};

use square_core::Policy;
use square_workloads::{build, Benchmark};

fn validate_catalog(machine: MachineKind) {
    let mut engaged = 0u64;
    for bench in Benchmark::NISQ {
        let program = build(bench).expect("benchmark builds");
        let config = machine.config(Policy::Eager).with_mbu(true);
        let validated = validate(&program, &default_inputs(bench), &config)
            .unwrap_or_else(|e| panic!("{bench} on {machine}: {e}"));
        assert!(validated.report.mbu, "{bench} on {machine}: flag echoes");
        engaged += validated.report.mbu_stats.mbu_frames;
    }
    // The catalog is Toffoli-heavy: across the set, MBU must actually
    // fire somewhere, or this test would only certify the off-path.
    assert!(
        engaged > 0,
        "{machine}: MBU never engaged across the catalog"
    );
}

#[test]
fn nisq_catalog_validates_with_mbu_on_the_nisq_lattice() {
    validate_catalog(MachineKind::Nisq);
}

#[test]
fn nisq_catalog_validates_with_mbu_on_the_ft_grid() {
    validate_catalog(MachineKind::Ft);
}

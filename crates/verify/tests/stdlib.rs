//! Functional correctness of `lib/std.sq` — every routine checked
//! against its integer/boolean specification through the reference
//! semantics — plus the validation matrix: each routine compiling and
//! translation-validating across the full policy × machine × router
//! product (the exhaustive product is `#[ignore]`d for the CI stdlib
//! job; a quick subset always runs).

use square_core::Policy;
use square_lang::{parse_files, MapLoader};
use square_qir::sem::{self, ReclaimOracle};
use square_qir::{lower_mcx, ModuleId, Program};
use square_verify::fuzz::STDLIB_SOURCE;
use square_verify::validate::{validate, MachineKind};

/// Every stdlib routine with its arity, for driver generation.
const ROUTINES: &[(&str, usize)] = &[
    ("add4", 13),
    ("add8", 25),
    ("cla4", 13),
    ("eq4", 9),
    ("lt4", 9),
    ("mul4", 16),
    ("fpmul4", 12),
    ("and4", 5),
    ("or4", 5),
    ("parity4", 5),
    ("mark5", 5),
];

/// Resolves an `import std;` root against the compiled-in stdlib.
fn program_with(entry: &str) -> Program {
    let mut loader = MapLoader::new();
    loader.insert("std", STDLIB_SOURCE);
    let (map, parsed) = parse_files("test.sq", entry, &loader);
    match parsed {
        Ok(p) => p,
        Err(diags) => panic!("driver failed to parse:\n{}", map.render(&diags)),
    }
}

/// An entry module that forwards its whole register to one routine.
fn driver(name: &str, arity: usize) -> Program {
    let args: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
    program_with(&format!(
        "import std;\nentry module main(0 params, {arity} ancilla) {{\n  compute {{\n    \
         call {name}({});\n  }}\n}}\n",
        args.join(", ")
    ))
}

/// Reclaims every routine frame (so params conjugated during a
/// routine's compute are restored and scratch is freed) but keeps the
/// driver's top-level frame intact — its results land on entry
/// ancillas during the entry's compute block, and reclaiming the
/// entry would mechanically undo them.
struct ChildFramesOnly;

impl ReclaimOracle for ChildFramesOnly {
    fn reclaim(&mut self, _module: ModuleId, depth: usize) -> bool {
        depth > 0
    }
}

/// Reference-semantics run: prep `inputs` on the leading ancillas,
/// read back the final entry register.
fn run(program: &Program, inputs: &[bool]) -> Vec<bool> {
    let lowered = lower_mcx(program);
    sem::run(&lowered, inputs, &mut ChildFramesOnly)
        .expect("reference semantics run")
        .outputs
}

/// `value` as `n` little-endian bits.
fn bits(value: u32, n: usize) -> Vec<bool> {
    (0..n).map(|i| value >> i & 1 == 1).collect()
}

/// Little-endian bits back to an integer.
fn value(bits: &[bool]) -> u32 {
    bits.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum()
}

fn two_operand_inputs(a: u32, b: u32, n: usize) -> Vec<bool> {
    let mut v = bits(a, n);
    v.extend(bits(b, n));
    v
}

#[test]
fn adders_match_integer_addition() {
    for name in ["add4", "cla4"] {
        let program = driver(name, 13);
        for a in 0..16u32 {
            for b in 0..16u32 {
                let out = run(&program, &two_operand_inputs(a, b, 4));
                assert_eq!(value(&out[8..13]), a + b, "{name}({a}, {b})");
                assert_eq!(value(&out[..8]), a | b << 4, "{name}: operands clobbered");
            }
        }
    }
}

#[test]
fn add8_matches_integer_addition_on_a_sample() {
    let program = driver("add8", 25);
    for i in 0..256u32 {
        let (a, b) = (i, i.wrapping_mul(37) % 256);
        let out = run(&program, &two_operand_inputs(a, b, 8));
        assert_eq!(value(&out[16..25]), a + b, "add8({a}, {b})");
    }
}

#[test]
fn comparators_match_integer_comparison() {
    let eq = driver("eq4", 9);
    let lt = driver("lt4", 9);
    for a in 0..16u32 {
        for b in 0..16u32 {
            let inputs = two_operand_inputs(a, b, 4);
            assert_eq!(run(&eq, &inputs)[8], a == b, "eq4({a}, {b})");
            assert_eq!(run(&lt, &inputs)[8], a < b, "lt4({a}, {b})");
        }
    }
}

#[test]
fn mul4_matches_integer_multiplication() {
    let program = driver("mul4", 16);
    for a in 0..16u32 {
        for b in 0..16u32 {
            let out = run(&program, &two_operand_inputs(a, b, 4));
            assert_eq!(value(&out[8..16]), a * b, "mul4({a}, {b})");
        }
    }
}

#[test]
fn fpmul4_truncates_the_q44_product() {
    // Q2.2 × Q2.2: the full product is Q4.4; fpmul4 stores bits 2..6
    // of the integer product — the Q2.2 window, truncating toward
    // zero. 1.5 × 2.5 = 3.75 is exact: 0110 × 1010 → 1111.
    let program = driver("fpmul4", 12);
    for a in 0..16u32 {
        for b in 0..16u32 {
            let out = run(&program, &two_operand_inputs(a, b, 4));
            assert_eq!(value(&out[8..12]), ((a * b) >> 2) & 0xF, "fpmul4({a}, {b})");
        }
    }
    let out = run(&program, &two_operand_inputs(0b0110, 0b1010, 4));
    assert_eq!(value(&out[8..12]), 0b1111);
}

#[test]
fn oracles_match_their_boolean_functions() {
    type Oracle = (&'static str, fn(u32) -> bool);
    let cases: &[Oracle] = &[
        ("and4", |q| q == 0xF),
        ("or4", |q| q != 0),
        ("parity4", |q| q.count_ones() % 2 == 1),
        ("mark5", |q| q == 5),
    ];
    for &(name, spec) in cases {
        let program = driver(name, 5);
        for q in 0..16u32 {
            let out = run(&program, &bits(q, 4));
            assert_eq!(out[4], spec(q), "{name}({q:04b})");
            assert_eq!(value(&out[..4]), q, "{name}: query clobbered");
        }
    }
}

#[test]
fn every_routine_validates_on_the_quick_subset() {
    // Always-on smoke: every routine's driver translation-validates
    // under every policy on the auto-sized NISQ lattice.
    for &(name, arity) in ROUTINES {
        let program = driver(name, arity);
        for policy in Policy::ALL {
            validate(&program, &[], &MachineKind::Nisq.config(policy))
                .unwrap_or_else(|e| panic!("{name}/{policy:?}/nisq: {e}"));
        }
    }
}

#[test]
#[ignore = "exhaustive matrix — run by the CI stdlib job"]
fn every_routine_validates_on_the_full_matrix() {
    // The acceptance matrix: policy × {nisq, ft, heavyhex, ring} ×
    // router for every stdlib routine.
    for &(name, arity) in ROUTINES {
        let program = driver(name, arity);
        for machine in MachineKind::ALL {
            for policy in Policy::ALL {
                for &router in machine.routers() {
                    validate(&program, &[], &machine.config_with(policy, router)).unwrap_or_else(
                        |e| panic!("{name}/{policy:?}/{machine:?}/{router:?}: {e}"),
                    );
                }
            }
        }
    }
}

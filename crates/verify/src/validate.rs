//! End-to-end translation validation of one compile.
//!
//! The oracle stack has three layers, each strictly stronger than the
//! last:
//!
//! 1. **Virtual replay** ([`replay_virtual`]): the compiler's executed
//!    trace, replayed on booleans with full hygiene checking — double
//!    allocations, use-after-free, and dirty frees (a reclaimed qubit
//!    not restored to |0⟩) are all hard failures.
//! 2. **Reference semantics** ([`check_reference`]): `square_qir::sem`
//!    re-executes the *lowered* program under a
//!    [`RecordedDecisions`](square_qir::sem::RecordedDecisions) oracle
//!    replaying the compiler's actual per-frame reclamation choices,
//!    and the entry-register values must agree bit-for-bit. This works
//!    for every policy, including CER's machine-state-dependent
//!    decisions.
//! 3. **Physical replay** ([`check_physical`]): the routed, scheduled
//!    physical gate stream — inserted SWAP chains, relocated |0⟩
//!    cells, recycled ancilla slots and all — is replayed on a
//!    physical basis-state vector and read back through the final
//!    placement; the data register must again agree. Swap-chain
//!    schedules additionally pass the per-qubit ASAP consistency
//!    check.
//!
//! [`validate`] composes all three over a single compile, and
//! [`validate_benchmark`] runs a catalog benchmark cell.

use std::collections::HashMap;
use std::fmt;

use square_arch::{CommModel, PhysId};
use square_core::{
    compile_with_inputs, ArchSpec, CompileError, CompileReport, CompilerConfig, Policy,
    ReclaimDecision, RouterKind,
};
use square_qir::sem::{RecordedDecisions, SemError};
use square_qir::{lower_mcx, ClbitId, Gate, Program, TraceOp, VirtId};
use square_route::journey_of;
use square_sim::{check_swapchain_schedule, replay_schedule, ScheduleViolation};
use square_workloads::{build, Benchmark};

/// Which oracle layer detected a disagreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The virtual trace itself is malformed (hygiene violation).
    VirtualReplay,
    /// Virtual trace vs. reference semantics.
    ReferenceSemantics,
    /// Physical schedule vs. virtual trace.
    PhysicalReplay,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::VirtualReplay => "virtual replay",
            Stage::ReferenceSemantics => "reference semantics",
            Stage::PhysicalReplay => "physical replay",
        })
    }
}

/// A detected semantics break, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
pub enum Mismatch {
    /// A virtual qubit was allocated twice without an intervening free.
    DoubleAlloc {
        /// The qubit.
        qubit: VirtId,
    },
    /// A gate or free touched a qubit that is not live.
    UseAfterFree {
        /// The qubit.
        qubit: VirtId,
        /// Trace position of the offending op.
        at: usize,
    },
    /// A qubit was freed while holding |1⟩ — its uncompute failed.
    DirtyFree {
        /// The qubit.
        qubit: VirtId,
        /// Trace position of the free.
        at: usize,
    },
    /// The reference execution demanded a different number of
    /// reclamation decisions than the compiler recorded.
    DecisionDrift {
        /// Decisions the reference run consumed.
        consumed: usize,
        /// Decisions the compiler recorded.
        recorded: usize,
        /// True if the reference run ran out of recorded decisions.
        overrun: bool,
    },
    /// An entry-register bit differs between two oracle layers.
    OutputDiff {
        /// Layer that disagreed with the virtual trace.
        stage: Stage,
        /// Register position (entry ancilla index).
        index: usize,
        /// Value per the virtual trace.
        virtual_value: bool,
        /// Value per the disagreeing layer.
        other_value: bool,
        /// The virtual qubit at that register position.
        virt: VirtId,
        /// Its final physical cell, if placed.
        phys: Option<PhysId>,
        /// Every physical cell the qubit occupied, in order (empty if
        /// placement history was not recorded).
        journey: Vec<PhysId>,
    },
    /// A swap-chain schedule violated per-qubit ASAP consistency.
    ScheduleInconsistent {
        /// The violation.
        violation: ScheduleViolation,
    },
    /// A classical bit written by a mid-circuit measurement differs
    /// between the virtual trace and the physical replay — the routed
    /// measurement read the wrong cell, or a guarded correction was
    /// mis-scheduled.
    ClbitMismatch {
        /// The classical bit that disagrees.
        clbit: ClbitId,
        /// Its value per the virtual trace (`None`: never recorded
        /// virtually).
        virtual_value: Option<bool>,
        /// Its value per the physical replay (`None`: never recorded
        /// physically).
        physical_value: Option<bool>,
    },
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mismatch::DoubleAlloc { qubit } => write!(f, "virtual replay: double alloc of {qubit}"),
            Mismatch::UseAfterFree { qubit, at } => {
                write!(f, "virtual replay: op #{at} touches dead qubit {qubit}")
            }
            Mismatch::DirtyFree { qubit, at } => write!(
                f,
                "virtual replay: op #{at} frees {qubit} holding |1⟩ (uncompute failed)"
            ),
            Mismatch::DecisionDrift {
                consumed,
                recorded,
                overrun,
            } => write!(
                f,
                "reference semantics visited {consumed} reclamation points, compiler recorded \
                 {recorded}{}",
                if *overrun { " (oracle overrun)" } else { "" }
            ),
            Mismatch::OutputDiff {
                stage,
                index,
                virtual_value,
                other_value,
                virt,
                phys,
                journey,
            } => {
                write!(
                    f,
                    "{stage}: register[{index}] ({virt}) is {} per the virtual trace but {} \
                     per {stage}",
                    *virtual_value as u8, *other_value as u8
                )?;
                if let Some(p) = phys {
                    write!(f, "; final cell {p}")?;
                }
                if !journey.is_empty() {
                    write!(f, "; journey")?;
                    for p in journey {
                        write!(f, " → {p}")?;
                    }
                }
                Ok(())
            }
            Mismatch::ScheduleInconsistent { violation } => {
                write!(f, "schedule consistency: {violation}")
            }
            Mismatch::ClbitMismatch {
                clbit,
                virtual_value,
                physical_value,
            } => {
                let show = |v: &Option<bool>| match v {
                    Some(b) => (*b as u8).to_string(),
                    None => "unrecorded".to_string(),
                };
                write!(
                    f,
                    "physical replay: classical bit {clbit} is {} per the virtual trace but {} \
                     per the schedule",
                    show(virtual_value),
                    show(physical_value)
                )
            }
        }
    }
}

/// Everything that can end a validation run unsuccessfully.
#[derive(Debug)]
pub enum ValidationError {
    /// The compile itself failed (e.g. out of qubits).
    Compile(CompileError),
    /// The reference execution failed outright.
    Sem(SemError),
    /// The layers disagree — the translation is wrong.
    Mismatch(Box<Mismatch>),
    /// The `.sq` frontend round-trip broke: the canonical listing of
    /// the program failed to parse back, or parsed to a different
    /// program (checked by the pipeline fuzzer for every generated
    /// program).
    RoundTrip(String),
    /// A budgeted compile reported a peak width above its own cap —
    /// the `budget:N` invariant (peak ≤ N for satisfiable cells) was
    /// violated even though the compile claimed success.
    BudgetExceeded {
        /// The requested hard cap.
        budget: usize,
        /// The peak simultaneously-active width actually reported.
        peak: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Compile(e) => write!(f, "compile failed: {e}"),
            ValidationError::Sem(e) => write!(f, "reference execution failed: {e}"),
            ValidationError::Mismatch(m) => write!(f, "semantic mismatch: {m}"),
            ValidationError::RoundTrip(detail) => {
                write!(f, "frontend round-trip failed: {detail}")
            }
            ValidationError::BudgetExceeded { budget, peak } => {
                write!(f, "budget violated: peak width {peak} over cap {budget}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<CompileError> for ValidationError {
    fn from(e: CompileError) -> Self {
        ValidationError::Compile(e)
    }
}

impl From<SemError> for ValidationError {
    fn from(e: SemError) -> Self {
        ValidationError::Sem(e)
    }
}

impl From<Mismatch> for ValidationError {
    fn from(m: Mismatch) -> Self {
        ValidationError::Mismatch(Box::new(m))
    }
}

/// A successfully validated compile.
#[derive(Debug)]
pub struct Validated {
    /// Final entry-register values (agreed on by all three layers).
    pub outputs: Vec<bool>,
    /// The full compile report (schedule and placement history
    /// included — validation forces recording on).
    pub report: CompileReport,
}

/// Replays a virtual trace on booleans with hygiene checking and
/// returns the final values of `register`.
///
/// # Errors
///
/// [`Mismatch::DoubleAlloc`] / [`Mismatch::UseAfterFree`] /
/// [`Mismatch::DirtyFree`] on malformed traces.
pub fn replay_virtual(trace: &[TraceOp], register: &[VirtId]) -> Result<Vec<bool>, Mismatch> {
    let (bits, _clbits) = replay_virtual_state(trace)?;
    register
        .iter()
        .map(|v| {
            bits.get(v)
                .copied()
                .ok_or(Mismatch::UseAfterFree { qubit: *v, at: 0 })
        })
        .collect()
}

/// Final state of a virtual replay: live qubit values plus every
/// classical bit recorded by mid-circuit measurements.
pub type VirtualState = (HashMap<VirtId, bool>, HashMap<ClbitId, bool>);

/// The full final state of a hygiene-checked virtual replay: live
/// qubit values plus every classical bit recorded by mid-circuit
/// measurements.
///
/// # Errors
///
/// Same hygiene failures as [`replay_virtual`].
pub fn replay_virtual_state(trace: &[TraceOp]) -> Result<VirtualState, Mismatch> {
    let mut bits: HashMap<VirtId, bool> = HashMap::new();
    let mut clbits: HashMap<ClbitId, bool> = HashMap::new();
    for (at, op) in trace.iter().enumerate() {
        match op {
            TraceOp::Alloc(v) => {
                if bits.insert(*v, false).is_some() {
                    return Err(Mismatch::DoubleAlloc { qubit: *v });
                }
            }
            TraceOp::Free(v) => match bits.remove(v) {
                None => return Err(Mismatch::UseAfterFree { qubit: *v, at }),
                Some(true) => return Err(Mismatch::DirtyFree { qubit: *v, at }),
                Some(false) => {}
            },
            TraceOp::Gate(g) => {
                if let Some(qubit) = first_dead(g, &bits) {
                    return Err(Mismatch::UseAfterFree { qubit, at });
                }
                apply_virtual(g, &mut bits);
            }
            TraceOp::Measure { qubit, clbit } => match bits.get(qubit) {
                Some(v) => {
                    clbits.insert(*clbit, *v);
                }
                None => return Err(Mismatch::UseAfterFree { qubit: *qubit, at }),
            },
            TraceOp::CondGate { clbit, gate } => {
                if let Some(qubit) = first_dead(gate, &bits) {
                    return Err(Mismatch::UseAfterFree { qubit, at });
                }
                if clbits.get(clbit).copied().unwrap_or(false) {
                    apply_virtual(gate, &mut bits);
                }
            }
        }
    }
    Ok((bits, clbits))
}

fn first_dead(g: &Gate<VirtId>, bits: &HashMap<VirtId, bool>) -> Option<VirtId> {
    let mut dead = None;
    g.for_each_qubit(|q| {
        if dead.is_none() && !bits.contains_key(q) {
            dead = Some(*q);
        }
    });
    dead
}

fn apply_virtual(g: &Gate<VirtId>, bits: &mut HashMap<VirtId, bool>) {
    let get = |bits: &HashMap<VirtId, bool>, q: &VirtId| bits[q];
    match g {
        Gate::X { target } => *bits.get_mut(target).unwrap() ^= true,
        Gate::Cx { control, target } => {
            if get(bits, control) {
                *bits.get_mut(target).unwrap() ^= true;
            }
        }
        Gate::Ccx { c0, c1, target } => {
            if get(bits, c0) && get(bits, c1) {
                *bits.get_mut(target).unwrap() ^= true;
            }
        }
        Gate::Swap { a, b } => {
            let (va, vb) = (get(bits, a), get(bits, b));
            bits.insert(*a, vb);
            bits.insert(*b, va);
        }
        Gate::Mcx { controls, target } => {
            if controls.iter().all(|c| get(bits, c)) {
                *bits.get_mut(target).unwrap() ^= true;
            }
        }
    }
}

fn output_diff(
    stage: Stage,
    report: &CompileReport,
    virt_vals: &[bool],
    other_vals: &[bool],
) -> Option<Mismatch> {
    let index = virt_vals.iter().zip(other_vals).position(|(a, b)| a != b)?;
    let virt = report.entry_register[index];
    let phys = report.final_placement.get(&virt).copied();
    let journey = report
        .placement_history
        .as_deref()
        .map(|h| journey_of(h, virt))
        .unwrap_or_default();
    Some(Mismatch::OutputDiff {
        stage,
        index,
        virtual_value: virt_vals[index],
        other_value: other_vals[index],
        virt,
        phys,
        journey,
    })
}

/// Checks the compiled result against the reference semantics run
/// under the compiler's own recorded reclamation decisions. `lowered`
/// must be the MCX-lowered program (the form the executor actually
/// compiled, and the form whose frame order the decision log follows).
///
/// # Errors
///
/// [`ValidationError::Sem`] if the reference run fails,
/// [`ValidationError::Mismatch`] on decision drift or output
/// disagreement.
pub fn check_reference(
    lowered: &Program,
    inputs: &[bool],
    report: &CompileReport,
    virt_vals: &[bool],
) -> Result<(), ValidationError> {
    let mut oracle = RecordedDecisions::new(report.decision_bools());
    let sem = square_qir::sem::run(lowered, inputs, &mut oracle)?;
    if !oracle.in_sync() {
        return Err(Mismatch::DecisionDrift {
            consumed: oracle.consumed(),
            recorded: report.decision_log.len(),
            overrun: oracle.overrun(),
        }
        .into());
    }
    if let Some(m) = output_diff(Stage::ReferenceSemantics, report, virt_vals, &sem.outputs) {
        return Err(m.into());
    }
    Ok(())
}

/// Replays the routed physical schedule and checks the read-back
/// register against the virtual values. Swap-chain schedules also
/// pass the per-qubit ASAP consistency check, and every classical bit
/// recorded by mid-circuit measurements must agree between the
/// virtual trace and the physical replay (MBU cells are validated
/// through the same side channel that steers them).
///
/// # Errors
///
/// [`Mismatch::ScheduleInconsistent`] / [`Mismatch::OutputDiff`] /
/// [`Mismatch::ClbitMismatch`].
///
/// # Panics
///
/// Panics if the report carries no recorded schedule (callers go
/// through [`validate`], which forces recording on).
pub fn check_physical(report: &CompileReport, virt_vals: &[bool]) -> Result<(), Mismatch> {
    let schedule = report
        .schedule
        .as_deref()
        .expect("validation requires a recorded schedule");
    if report.comm == CommModel::SwapChains {
        if let Err(violation) = check_swapchain_schedule(schedule) {
            return Err(Mismatch::ScheduleInconsistent { violation });
        }
    }
    let replay = replay_schedule(schedule, report.machine_qubits);
    let phys_vals = replay.read(&report.measure_map());
    if let Some(m) = output_diff(Stage::PhysicalReplay, report, virt_vals, &phys_vals) {
        return Err(m);
    }
    let (_, virt_clbits) = replay_virtual_state(&report.trace)?;
    let mut all: Vec<ClbitId> = virt_clbits
        .keys()
        .chain(replay.clbits.keys())
        .copied()
        .collect();
    all.sort_unstable();
    all.dedup();
    for clbit in all {
        let virtual_value = virt_clbits.get(&clbit).copied();
        let physical_value = replay.clbits.get(&clbit).copied();
        if virtual_value != physical_value {
            return Err(Mismatch::ClbitMismatch {
                clbit,
                virtual_value,
                physical_value,
            });
        }
    }
    Ok(())
}

/// Compiles `program` under `config` (with schedule recording forced
/// on) and validates the result through all three oracle layers.
///
/// # Errors
///
/// See [`ValidationError`].
pub fn validate(
    program: &Program,
    inputs: &[bool],
    config: &CompilerConfig,
) -> Result<Validated, ValidationError> {
    let mut config = config.clone();
    config.record_schedule = true;
    let report = compile_with_inputs(program, inputs, &config)?;
    let virt_vals = replay_virtual(&report.trace, &report.entry_register)?;
    let lowered = lower_mcx(program);
    check_reference(&lowered, inputs, &report, &virt_vals)?;
    check_physical(&report, &virt_vals)?;
    Ok(Validated {
        outputs: virt_vals,
        report,
    })
}

/// The auto-sized machine targets of the validation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// Auto-sized NISQ lattice, swap chains.
    Nisq,
    /// Auto-sized FT tile grid, braiding.
    Ft,
    /// Auto-sized IBM-style heavy-hex lattice, swap chains.
    HeavyHex,
    /// Auto-sized ring, swap chains.
    Ring,
}

impl MachineKind {
    /// The historical pair of targets (PR 3's matrix).
    pub const BOTH: [MachineKind; 2] = [MachineKind::Nisq, MachineKind::Ft];

    /// Every target, including the graph-backed topologies.
    pub const ALL: [MachineKind; 4] = [
        MachineKind::Nisq,
        MachineKind::Ft,
        MachineKind::HeavyHex,
        MachineKind::Ring,
    ];

    /// The compiler configuration for `policy` on this target.
    pub fn config(&self, policy: Policy) -> CompilerConfig {
        match self {
            MachineKind::Nisq => CompilerConfig::nisq(policy),
            MachineKind::Ft => CompilerConfig::ft(policy),
            MachineKind::HeavyHex => CompilerConfig::nisq(policy).with_arch(ArchSpec::AutoHeavyHex),
            MachineKind::Ring => CompilerConfig::nisq(policy).with_arch(ArchSpec::AutoRing),
        }
    }

    /// [`MachineKind::config`] with an explicit swap-chain router.
    pub fn config_with(&self, policy: Policy, router: RouterKind) -> CompilerConfig {
        self.config(policy).with_router(router)
    }

    /// The routers worth validating on this target: both on
    /// swap-chain machines, greedy alone under braiding (the router
    /// never runs there, so the cells would be identical).
    pub fn routers(&self) -> &'static [RouterKind] {
        match self {
            MachineKind::Ft => &[RouterKind::Greedy],
            _ => &RouterKind::ALL,
        }
    }
}

impl fmt::Display for MachineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MachineKind::Nisq => "nisq",
            MachineKind::Ft => "ft",
            MachineKind::HeavyHex => "heavyhex",
            MachineKind::Ring => "ring",
        })
    }
}

/// Deterministic alternating input pattern for a benchmark's input
/// register (the pattern the integration suites use).
pub fn default_inputs(bench: Benchmark) -> Vec<bool> {
    (0..bench.input_qubits()).map(|i| i % 2 == 0).collect()
}

/// Validates one catalog benchmark under one policy on one target.
///
/// # Errors
///
/// See [`ValidationError`]; benchmark build failures surface as
/// [`ValidationError::Compile`].
pub fn validate_benchmark(
    bench: Benchmark,
    policy: Policy,
    machine: MachineKind,
) -> Result<Validated, ValidationError> {
    validate_benchmark_with(bench, policy, machine, RouterKind::Greedy)
}

/// [`validate_benchmark`] with an explicit swap-chain router.
///
/// # Errors
///
/// See [`ValidationError`].
pub fn validate_benchmark_with(
    bench: Benchmark,
    policy: Policy,
    machine: MachineKind,
    router: RouterKind,
) -> Result<Validated, ValidationError> {
    let program = build(bench).map_err(CompileError::from)?;
    validate(
        &program,
        &default_inputs(bench),
        &machine.config_with(policy, router),
    )
}

/// A decision summary useful in logs: how many frames reclaimed.
pub fn decision_summary(log: &[ReclaimDecision]) -> (usize, usize) {
    let reclaimed = log.iter().filter(|d| d.reclaim).count();
    (reclaimed, log.len() - reclaimed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_qir::ProgramBuilder;

    fn small_program() -> Program {
        let mut b = ProgramBuilder::new();
        let child = b
            .module("child", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.store();
                m.cx(a, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 3, |m| {
                let (x, s, out) = (m.ancilla(0), m.ancilla(1), m.ancilla(2));
                m.x(x);
                m.call(child, &[x, s]);
                m.store();
                m.cx(s, out);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    #[test]
    fn validate_passes_for_all_policies_on_both_targets() {
        let p = small_program();
        for policy in Policy::ALL {
            for machine in MachineKind::BOTH {
                let v = validate(&p, &[], &machine.config(policy))
                    .unwrap_or_else(|e| panic!("{policy}/{machine}: {e}"));
                assert!(v.outputs[2], "{policy}/{machine}: stored output");
                assert!(v.report.schedule.is_some());
                assert!(v.report.placement_history.is_some());
            }
        }
    }

    #[test]
    fn tampered_schedule_is_caught() {
        let p = small_program();
        let cfg = CompilerConfig::nisq(Policy::Lazy).with_schedule();
        let mut report = compile_with_inputs(&p, &[], &cfg).unwrap();
        let virt_vals = replay_virtual(&report.trace, &report.entry_register).unwrap();
        check_physical(&report, &virt_vals).expect("untampered schedule validates");
        // Flip one program gate into an X on the measured output cell:
        // the physical replay must now disagree.
        let out_cell = report.measure_map()[2];
        let schedule = report.schedule.as_mut().unwrap();
        let last = schedule.last().unwrap().clone();
        schedule.push(square_route::ScheduledGate {
            gate: Gate::X { target: out_cell },
            start: last.end(),
            dur: 1,
            is_comm: false,
            guard: None,
            measure: None,
        });
        let err = check_physical(&report, &virt_vals).unwrap_err();
        match err {
            Mismatch::OutputDiff { stage, index, .. } => {
                assert_eq!(stage, Stage::PhysicalReplay);
                assert_eq!(index, 2);
            }
            other => panic!("wrong mismatch: {other}"),
        }
    }

    /// A program whose child frame is Toffoli-built, so MBU wins the
    /// weighted compare and the compile emits measure-and-correct.
    fn toffoli_program() -> Program {
        let mut b = ProgramBuilder::new();
        let child = b
            .module("and2", 3, 2, |m| {
                let (x, y, out) = (m.param(0), m.param(1), m.param(2));
                let (a, t) = (m.ancilla(0), m.ancilla(1));
                m.ccx(x, y, a);
                m.ccx(x, a, t);
                m.store();
                m.cx(t, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 4, |m| {
                let (x, y, t, out) = (m.ancilla(0), m.ancilla(1), m.ancilla(2), m.ancilla(3));
                m.x(x);
                m.x(y);
                m.call(child, &[x, y, t]);
                m.store();
                m.cx(t, out);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    #[test]
    fn mbu_compiles_validate_through_all_three_oracles() {
        let p = toffoli_program();
        for machine in MachineKind::BOTH {
            let cfg = machine.config(Policy::Eager).with_mbu(true);
            let v = validate(&p, &[], &cfg).unwrap_or_else(|e| panic!("{machine}: {e}"));
            assert!(
                v.report.mbu_stats.mbu_frames > 0,
                "{machine}: MBU actually engaged"
            );
            assert!(v.outputs[3], "{machine}: stored output survives MBU");
        }
    }

    #[test]
    fn tampered_clbit_is_caught_and_named() {
        let p = toffoli_program();
        let cfg = MachineKind::Nisq
            .config(Policy::Eager)
            .with_mbu(true)
            .with_schedule();
        let mut report = compile_with_inputs(&p, &[], &cfg).unwrap();
        let virt_vals = replay_virtual(&report.trace, &report.entry_register).unwrap();
        check_physical(&report, &virt_vals).expect("untampered MBU schedule validates");
        // Retarget one measurement to a fresh clbit: the recorded bit
        // vanishes physically and the diagnostic must name it.
        let schedule = report.schedule.as_mut().unwrap();
        let g = schedule
            .iter_mut()
            .find(|g| g.measure.is_some())
            .expect("MBU schedule contains a measurement");
        let original = g.measure.take().unwrap();
        g.measure = Some(ClbitId(original.0 + 1000));
        let err = check_physical(&report, &virt_vals).unwrap_err();
        match &err {
            Mismatch::ClbitMismatch { clbit, .. } => {
                assert!(*clbit == original || clbit.0 == original.0 + 1000);
            }
            other => panic!("wrong mismatch: {other}"),
        }
        assert!(err.to_string().contains("classical bit c"), "{err}");
    }

    #[test]
    fn tampered_decision_log_is_caught_as_drift() {
        let p = small_program();
        let cfg = CompilerConfig::nisq(Policy::Eager).with_schedule();
        let mut report = compile_with_inputs(&p, &[], &cfg).unwrap();
        let virt_vals = replay_virtual(&report.trace, &report.entry_register).unwrap();
        let lowered = lower_mcx(&p);
        check_reference(&lowered, &[], &report, &virt_vals).expect("clean log checks out");
        report.decision_log.pop();
        let err = check_reference(&lowered, &[], &report, &virt_vals).unwrap_err();
        assert!(
            matches!(
                err,
                ValidationError::Mismatch(ref m)
                    if matches!(**m, Mismatch::DecisionDrift { overrun: true, .. })
            ),
            "got: {err}"
        );
    }

    #[test]
    fn dirty_trace_is_caught() {
        use TraceOp::*;
        let v = VirtId(0);
        let trace = vec![Alloc(v), Gate(square_qir::Gate::X { target: v }), Free(v)];
        assert_eq!(
            replay_virtual(&trace, &[]),
            Err(Mismatch::DirtyFree { qubit: v, at: 2 })
        );
        let use_after = vec![Alloc(v), Free(v), Gate(square_qir::Gate::X { target: v })];
        assert_eq!(
            replay_virtual(&use_after, &[]),
            Err(Mismatch::UseAfterFree { qubit: v, at: 2 })
        );
        assert_eq!(
            replay_virtual(&[Alloc(v), Alloc(v)], &[]),
            Err(Mismatch::DoubleAlloc { qubit: v })
        );
    }

    #[test]
    fn mismatch_diagnostics_name_the_journey() {
        let p = small_program();
        let cfg = CompilerConfig::nisq(Policy::Square).with_schedule();
        let report = compile_with_inputs(&p, &[], &cfg).unwrap();
        let virt_vals = replay_virtual(&report.trace, &report.entry_register).unwrap();
        let mut flipped = virt_vals.clone();
        flipped[0] = !flipped[0];
        let m = output_diff(Stage::PhysicalReplay, &report, &virt_vals, &flipped).unwrap();
        let text = m.to_string();
        assert!(text.contains("register[0]"), "{text}");
        assert!(text.contains("journey"), "{text}");
    }
}

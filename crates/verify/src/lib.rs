//! # square-verify — translation validation for the SQUARE compiler
//!
//! SQUARE's entire value proposition rests on uncomputation and
//! ancilla reuse being *semantics-preserving*. This crate closes the
//! loop end to end: the fully routed and scheduled physical gate
//! stream — inserted SWAP chains, relocated pooled |0⟩ cells,
//! mid-circuit qubit recycling — is replayed on a basis-state vector,
//! read back through the placement history, and diff-checked against
//! the reference bit-level semantics (`square_qir::sem`) running under
//! the compiler's own recorded reclamation decisions.
//!
//! Three oracle layers (see [`validate`]):
//!
//! 1. virtual-trace replay with ancilla-hygiene checking,
//! 2. reference semantics under the recorded decision log,
//! 3. physical schedule replay + per-qubit ASAP consistency.
//!
//! On top sits the seeded **pipeline fuzzer** ([`fuzz`]): one
//! meta-seed derives a random modular program and input pattern;
//! every `policy × machine × router` cell — lattice, FT, heavy-hex,
//! and ring targets, greedy and lookahead routers — must validate and
//! agree on the observable output. Failing cases shrink greedily to a one-line
//! reproducer (driven by the `fuzz_pipeline` binary in
//! `square-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod validate;

pub use fuzz::{run_case, shrink, CaseStats, FuzzCase, FuzzFailure};
pub use validate::{
    check_physical, check_reference, default_inputs, replay_virtual, validate, validate_benchmark,
    validate_benchmark_with, MachineKind, Mismatch, Stage, Validated, ValidationError,
};

//! Seeded pipeline fuzzing: random modular programs through
//! compile → route → replay, across every policy and both machine
//! targets, with greedy shrinking of failing cases.
//!
//! One meta-seed deterministically derives a [`SynthParams`] draw plus
//! an input pattern ([`FuzzCase::from_seed`]); [`run_case`] validates
//! the generated program over the full `policy × machine` product and
//! additionally cross-checks that every cell agrees on the observable
//! outputs (inputs echoed back plus the store-protected result). A
//! failing case greedily [`shrink`]s toward the smallest program
//! structure that still fails and prints as a one-line reproducer
//! ([`FuzzCase::spec`] / [`FuzzCase::parse_spec`]).

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use square_core::{Policy, RouterKind};
use square_qir::Program;
use square_workloads::synthetic::{synthesize, synthesize_disciplined, SynthParams};

use crate::validate::{validate, MachineKind, Mismatch, Stage, ValidationError};

/// Domain separator so case derivation is independent of any other
/// consumer of the same seed.
const META_SEED_SALT: u64 = 0x5147_5541_5245_F22E;

/// One fuzz case: the derived program knobs plus an input pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Meta-seed this case was derived from (0 for hand-built cases).
    pub seed: u64,
    /// Synthetic-program knobs.
    pub params: SynthParams,
    /// Computational-basis input bits for the entry register.
    pub inputs: Vec<bool>,
}

impl FuzzCase {
    /// Derives the case for a meta-seed. Knob ranges are chosen so a
    /// single case compiles in milliseconds while still exercising
    /// nesting, fan-out, Toffoli lowering, and forced reclamation.
    pub fn from_seed(seed: u64) -> FuzzCase {
        let mut rng = StdRng::seed_from_u64(seed ^ META_SEED_SALT);
        let params = SynthParams {
            levels: rng.gen_range(1..=4usize),
            max_callees: rng.gen_range(1..=3usize),
            inputs_per_fn: rng.gen_range(2..=6usize),
            max_ancilla: rng.gen_range(1..=4usize),
            max_gates: rng.gen_range(2..=14usize),
            seed: rng.gen::<u64>(),
        };
        let inputs = (0..params.inputs_per_fn.max(2))
            .map(|_| rng.gen::<bool>())
            .collect();
        FuzzCase {
            seed,
            params,
            inputs,
        }
    }

    /// One-token reproducer spec:
    /// `levels=2,callees=1,inputs=3,anc=2,gates=6,seed=123,bits=101`.
    pub fn spec(&self) -> String {
        let bits: String = self
            .inputs
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        format!(
            "levels={},callees={},inputs={},anc={},gates={},seed={},bits={}",
            self.params.levels,
            self.params.max_callees,
            self.params.inputs_per_fn,
            self.params.max_ancilla,
            self.params.max_gates,
            self.params.seed,
            bits
        )
    }

    /// Parses a [`FuzzCase::spec`] line back into a case.
    pub fn parse_spec(spec: &str) -> Option<FuzzCase> {
        let mut params = SynthParams {
            levels: 0,
            max_callees: 0,
            inputs_per_fn: 0,
            max_ancilla: 0,
            max_gates: 0,
            seed: 0,
        };
        let mut inputs = Vec::new();
        for field in spec.split(',') {
            let (key, value) = field.split_once('=')?;
            match key.trim() {
                "levels" => params.levels = value.parse().ok()?,
                "callees" => params.max_callees = value.parse().ok()?,
                "inputs" => params.inputs_per_fn = value.parse().ok()?,
                "anc" => params.max_ancilla = value.parse().ok()?,
                "gates" => params.max_gates = value.parse().ok()?,
                "seed" => params.seed = value.parse().ok()?,
                "bits" => {
                    inputs = value
                        .chars()
                        .map(|c| match c {
                            '0' => Some(false),
                            '1' => Some(true),
                            _ => None,
                        })
                        .collect::<Option<Vec<bool>>>()?;
                }
                _ => return None,
            }
        }
        (params.levels > 0).then_some(FuzzCase {
            seed: 0,
            params,
            inputs,
        })
    }
}

/// Statistics from one passing case.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStats {
    /// `policy × machine` cells validated.
    pub cells: usize,
    /// Total program gates across all cells.
    pub gates: u64,
    /// Total routing swaps across all cells.
    pub swaps: u64,
}

/// One failing cell of a case.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The case that failed.
    pub case: FuzzCase,
    /// Policy of the failing cell.
    pub policy: Policy,
    /// Machine target of the failing cell.
    pub machine: MachineKind,
    /// Swap-chain router of the failing cell.
    pub router: RouterKind,
    /// True if the failing program came from the disciplined
    /// generator (the cross-policy differential half of the case).
    pub disciplined: bool,
    /// What went wrong.
    pub error: ValidationError,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {} [{}] {}/{}/{} ({}): {}",
            self.case.seed,
            self.case.spec(),
            self.policy.cli_name(),
            self.machine,
            self.router.cli_name(),
            if self.disciplined { "clean" } else { "free" },
            self.error
        )
    }
}

/// Validates one program over the full `policy × machine × router`
/// product — every machine target ([`MachineKind::ALL`], heavy-hex
/// and ring included) under every router the target routes with —
/// plus one *budgeted* cell: Square capped at the program's own
/// eager-probe width floor (the tightest always-satisfiable
/// `budget:N`), which must validate through the full oracle stack
/// AND stay under its cap — and one *MBU* cell (Eager with
/// measurement-based uncomputation on), which validates the classical
/// side channel.
/// With `cross_check`, the observable register (echoed inputs + the
/// store-protected result; the scratch cell between them is
/// legitimately policy-dependent) must also agree across every cell —
/// only sound for disciplined programs.
fn run_program(
    program: &Program,
    inputs: &[bool],
    cross_check: bool,
    stats: &mut CaseStats,
) -> Result<(), (Policy, MachineKind, RouterKind, ValidationError)> {
    let mut reference: Option<(Vec<bool>, bool)> = None;
    for machine in MachineKind::ALL {
        for policy in Policy::ALL {
            for &router in machine.routers() {
                let v = validate(program, inputs, &machine.config_with(policy, router))
                    .map_err(|e| (policy, machine, router, e))?;
                stats.cells += 1;
                stats.gates += v.report.gates;
                stats.swaps += v.report.swaps;
                if !cross_check {
                    continue;
                }
                let echoed = v.outputs[..inputs.len()].to_vec();
                let result = *v.outputs.last().expect("entry register is non-empty");
                match &reference {
                    None => reference = Some((echoed, result)),
                    Some((ref_echo, ref_result)) => {
                        if *ref_echo != echoed || *ref_result != result {
                            // Name the first diverging bit and report
                            // *its* two values (an echoed input, or
                            // the result).
                            let (index, reference_value, cell_value) = ref_echo
                                .iter()
                                .zip(&echoed)
                                .position(|(a, b)| a != b)
                                .map(|i| (i, ref_echo[i], echoed[i]))
                                .unwrap_or((v.outputs.len() - 1, *ref_result, result));
                            let m = Mismatch::OutputDiff {
                                stage: Stage::ReferenceSemantics,
                                index,
                                virtual_value: reference_value,
                                other_value: cell_value,
                                virt: v.report.entry_register[index],
                                phys: None,
                                journey: vec![],
                            };
                            return Err((
                                policy,
                                machine,
                                router,
                                ValidationError::Mismatch(Box::new(m)),
                            ));
                        }
                    }
                }
            }
        }
    }
    // The budgeted cell: probe the frame-granularity width floor with
    // Eager, then demand Square fit under exactly that cap. The floor
    // is satisfiable by construction (the budget clamp never needs
    // more than the eager stack width), so any failure here — compile,
    // oracle mismatch, or a peak over the cap — is a real bug.
    let (machine, router) = (MachineKind::Nisq, RouterKind::Greedy);
    let floor = square_core::compile(program, &machine.config(Policy::Eager))
        .map_err(|e| (Policy::Eager, machine, router, ValidationError::Compile(e)))?
        .peak_active;
    let cfg = machine
        .config_with(Policy::Square, router)
        .with_budget(Some(floor));
    let v = validate(program, inputs, &cfg).map_err(|e| (Policy::Square, machine, router, e))?;
    stats.cells += 1;
    stats.gates += v.report.gates;
    stats.swaps += v.report.swaps;
    if v.report.peak_active > floor {
        let e = ValidationError::BudgetExceeded {
            budget: floor,
            peak: v.report.peak_active,
        };
        return Err((Policy::Square, machine, router, e));
    }
    // The MBU cell: the same program with measurement-based
    // uncomputation enabled, under Eager — the policy that reclaims
    // every frame, so any MBU-eligible slice actually gets the
    // measure-and-correct lowering and the classical side channel is
    // exercised through all three oracles.
    let cfg = machine.config_with(Policy::Eager, router).with_mbu(true);
    let v = validate(program, inputs, &cfg).map_err(|e| (Policy::Eager, machine, router, e))?;
    stats.cells += 1;
    stats.gates += v.report.gates;
    stats.swaps += v.report.swaps;
    Ok(())
}

/// Runs one case: the *free* program through per-cell translation
/// validation (free programs may legitimately be policy-divergent, so
/// no cross-cell check), then the *disciplined* sibling — same seed,
/// same shape — through per-cell validation plus the cross-policy
/// differential check.
///
/// A generation error is a failure too: the fuzzer's contract is that
/// every generated program validates.
///
/// # Errors
///
/// The first failing cell, boxed with its case.
pub fn run_case(case: &FuzzCase) -> Result<CaseStats, Box<FuzzFailure>> {
    let mut stats = CaseStats::default();
    for disciplined in [false, true] {
        let fail = |policy, machine, router, error| {
            Box::new(FuzzFailure {
                case: case.clone(),
                policy,
                machine,
                router,
                disciplined,
                error,
            })
        };
        let generated = if disciplined {
            synthesize_disciplined(&case.params)
        } else {
            synthesize(&case.params)
        };
        let program = match generated {
            Ok(p) => p,
            Err(e) => {
                return Err(fail(
                    Policy::Lazy,
                    MachineKind::Nisq,
                    RouterKind::Greedy,
                    ValidationError::Compile(e.into()),
                ))
            }
        };
        // Frontend coverage for free: every generated program must
        // survive the `.sq` pretty → parse round trip unchanged
        // before it enters the semantic cells.
        if let Err(e) = square_lang::check_roundtrip(&program) {
            return Err(fail(
                Policy::Lazy,
                MachineKind::Nisq,
                RouterKind::Greedy,
                ValidationError::RoundTrip(e.to_string()),
            ));
        }
        if let Err((policy, machine, router, error)) =
            run_program(&program, &case.inputs, disciplined, &mut stats)
        {
            return Err(fail(policy, machine, router, error));
        }
    }
    Ok(stats)
}

/// Candidate one-step reductions of a case, largest-first.
fn reductions(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut FuzzCase)| {
        let mut c = case.clone();
        f(&mut c);
        if c.params != case.params || c.inputs != case.inputs {
            out.push(c);
        }
    };
    push(&|c| c.params.levels = (c.params.levels.saturating_sub(1)).max(1));
    push(&|c| c.params.max_callees = (c.params.max_callees.saturating_sub(1)).max(1));
    push(&|c| c.params.max_gates = (c.params.max_gates / 2).max(1));
    push(&|c| c.params.max_gates = (c.params.max_gates.saturating_sub(1)).max(1));
    push(&|c| c.params.max_ancilla = (c.params.max_ancilla.saturating_sub(1)).max(1));
    push(&|c| {
        c.params.inputs_per_fn = (c.params.inputs_per_fn.saturating_sub(1)).max(2);
        // Keep the case structurally valid: the entry register only
        // holds `inputs_per_fn` input cells, and over-long inputs
        // would fail as TooManyInputs instead of the bug being shrunk.
        let cap = c.params.inputs_per_fn.max(2);
        c.inputs.truncate(cap);
    });
    push(&|c| {
        for b in &mut c.inputs {
            *b = false;
        }
    });
    push(&|c| {
        let n = c.inputs.len();
        c.inputs.truncate(n.saturating_sub(1));
    });
    out
}

/// Coarse failure class used to keep shrinking on-topic: a candidate
/// only counts as "still failing" when it fails the same way as the
/// original (otherwise a reduction that merely trips a *different*
/// error — a compile failure, say — would hijack the reproducer).
fn failure_class(e: &ValidationError) -> &'static str {
    match e {
        ValidationError::Compile(_) => "compile",
        ValidationError::Sem(_) => "sem",
        ValidationError::RoundTrip(_) => "round-trip",
        ValidationError::BudgetExceeded { .. } => "budget",
        ValidationError::Mismatch(m) => match **m {
            Mismatch::DoubleAlloc { .. } => "double-alloc",
            Mismatch::UseAfterFree { .. } => "use-after-free",
            Mismatch::DirtyFree { .. } => "dirty-free",
            Mismatch::DecisionDrift { .. } => "decision-drift",
            Mismatch::OutputDiff { .. } => "output-diff",
            Mismatch::ScheduleInconsistent { .. } => "schedule",
            Mismatch::ClbitMismatch { .. } => "clbit",
        },
    }
}

/// Greedily shrinks a failing case: repeatedly applies the first
/// single-knob reduction that still fails *in the same way*, until
/// none does. Returns the shrunk case and its failure.
pub fn shrink(case: &FuzzCase) -> (FuzzCase, Box<FuzzFailure>) {
    let mut best = case.clone();
    let mut failure = run_case(&best).expect_err("shrink called on a passing case");
    let class = failure_class(&failure.error);
    loop {
        let mut improved = false;
        for candidate in reductions(&best) {
            match run_case(&candidate) {
                Err(f) if failure_class(&f.error) == class => {
                    best = candidate;
                    failure = f;
                    improved = true;
                    break;
                }
                _ => {}
            }
        }
        if !improved {
            return (best, failure);
        }
    }
}

// -------------------------------------------------------------------
// Stdlib-composition mode: random entry modules assembled from
// `lib/std.sq` calls, checked differentially against the flattened
// single-file form.

/// The standard library shipped at `lib/std.sq`, compiled in so
/// stdlib-composition cases need no filesystem.
pub const STDLIB_SOURCE: &str = include_str!("../../../lib/std.sq");

/// Domain separator for stdlib-case derivation.
const STDLIB_SEED_SALT: u64 = 0x5147_5344_4C49_B001;

/// Composable stdlib routines: (name, arity, leading input bits
/// eligible for X-prep — the remaining args are outputs and start
/// |0⟩). `fpmul4` pulls `mul4` and `add8` in transitively, so the
/// roster covers the whole arithmetic layer.
const STDLIB_ROSTER: &[(&str, usize, usize)] = &[
    ("add4", 13, 8),
    ("cla4", 13, 8),
    ("eq4", 9, 8),
    ("lt4", 9, 8),
    ("fpmul4", 12, 8),
    ("and4", 5, 4),
    ("or4", 5, 4),
    ("parity4", 5, 4),
    ("mark5", 5, 4),
];

/// One stdlib-composition case: a deterministic random entry module
/// over `import std;`, each call on its own ancilla region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdlibCase {
    /// Meta-seed the case derives from.
    pub seed: u64,
    /// The generated root-file source (starts with `import std;`).
    pub source: String,
}

impl StdlibCase {
    /// Derives the case for a meta-seed: 1–3 roster calls, disjoint
    /// ancilla regions, random X-prep over each call's input bits.
    pub fn from_seed(seed: u64) -> StdlibCase {
        let mut rng = StdRng::seed_from_u64(seed ^ STDLIB_SEED_SALT);
        let calls = rng.gen_range(1..=3usize);
        let mut preps = String::new();
        let mut body = String::new();
        let mut base = 0usize;
        for _ in 0..calls {
            let (name, arity, inputs) = STDLIB_ROSTER[rng.gen_range(0..STDLIB_ROSTER.len())];
            for i in 0..inputs {
                if rng.gen::<bool>() {
                    preps.push_str(&format!("    x a{};\n", base + i));
                }
            }
            let args: Vec<String> = (base..base + arity).map(|i| format!("a{i}")).collect();
            body.push_str(&format!("    call {name}({});\n", args.join(", ")));
            base += arity;
        }
        let source = format!(
            "import std;\nentry module main(0 params, {base} ancilla) {{\n  compute {{\n{preps}{body}  }}\n}}\n"
        );
        StdlibCase { seed, source }
    }
}

/// A failing stdlib-composition case: the seed reproduces it
/// (`fuzz_pipeline --stdlib --start SEED --count 1`), and the
/// generated source is carried for the reproducer artifact.
#[derive(Debug)]
pub struct StdlibFailure {
    /// The failing case (seed + generated source).
    pub case: StdlibCase,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for StdlibFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stdlib seed {}: {}", self.case.seed, self.detail)
    }
}

/// Runs one stdlib-composition case:
///
/// 1. the generated root resolves against the compiled-in stdlib
///    through the real multi-file pass ([`square_lang::parse_files`]
///    over a [`square_lang::MapLoader`]), and must round-trip;
/// 2. the program validates over the full machine × policy × router
///    product (plus the budgeted and MBU cells), like any fuzz case;
/// 3. differentially, the import path must agree bit-for-bit with the
///    *flattened* single-file form (entry concatenated with the whole
///    stdlib — module pruning and import resolution must not change
///    observable semantics) under both Square and Eager.
///
/// # Errors
///
/// The failing case with a one-line reason.
pub fn run_stdlib_case(case: &StdlibCase) -> Result<CaseStats, Box<StdlibFailure>> {
    let fail = |detail: String| {
        Box::new(StdlibFailure {
            case: case.clone(),
            detail,
        })
    };
    let mut loader = square_lang::MapLoader::new();
    loader.insert("std", STDLIB_SOURCE);
    let (_, parsed) = square_lang::parse_files("fuzz.sq", &case.source, &loader);
    let program = parsed.map_err(|diags| {
        let first = diags.first().map(|d| d.to_string()).unwrap_or_default();
        fail(format!("multi-file frontend rejected the case: {first}"))
    })?;
    if let Err(e) = square_lang::check_roundtrip(&program) {
        return Err(fail(format!("round trip failed: {e}")));
    }
    let flat_source = format!(
        "{}\n{STDLIB_SOURCE}",
        case.source.replacen("import std;\n", "", 1)
    );
    let flat = square_lang::parse_program(&flat_source).map_err(|diags| {
        let first = diags.first().map(|d| d.to_string()).unwrap_or_default();
        fail(format!("flattened form rejected: {first}"))
    })?;

    let mut stats = CaseStats::default();
    run_program(&program, &[], false, &mut stats).map_err(|(policy, machine, router, e)| {
        fail(format!(
            "{}/{machine}/{} failed: {e}",
            policy.cli_name(),
            router.cli_name()
        ))
    })?;
    // Import-vs-flat differential: the resolved program and the
    // flattened one must observe identical entry registers.
    for policy in [Policy::Square, Policy::Eager] {
        let config = MachineKind::Nisq.config(policy);
        let via_import = validate(&program, &[], &config)
            .map_err(|e| fail(format!("import path under {}: {e}", policy.cli_name())))?;
        let via_flat = validate(&flat, &[], &config)
            .map_err(|e| fail(format!("flattened path under {}: {e}", policy.cli_name())))?;
        stats.cells += 2;
        stats.gates += via_import.report.gates + via_flat.report.gates;
        stats.swaps += via_import.report.swaps + via_flat.report.swaps;
        if via_import.outputs != via_flat.outputs {
            return Err(fail(format!(
                "import and flattened outputs diverge under {}: {:?} vs {:?}",
                policy.cli_name(),
                via_import.outputs,
                via_flat.outputs
            )));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_derive_deterministically() {
        let a = FuzzCase::from_seed(7);
        let b = FuzzCase::from_seed(7);
        assert_eq!(a, b);
        assert_ne!(a.params, FuzzCase::from_seed(8).params);
        assert!(a.params.levels >= 1 && a.params.levels <= 4);
        assert_eq!(a.inputs.len(), a.params.inputs_per_fn.max(2));
    }

    #[test]
    fn spec_round_trips() {
        let case = FuzzCase::from_seed(1234);
        let parsed = FuzzCase::parse_spec(&case.spec()).unwrap();
        assert_eq!(parsed.params, case.params);
        assert_eq!(parsed.inputs, case.inputs);
        assert_eq!(FuzzCase::parse_spec("garbage"), None);
        assert_eq!(FuzzCase::parse_spec("levels=x"), None);
    }

    #[test]
    fn a_handful_of_seeds_validate_cleanly() {
        for seed in 0..4u64 {
            let case = FuzzCase::from_seed(seed);
            let stats = run_case(&case).unwrap_or_else(|f| panic!("{f}"));
            // 4 policies × (3 swap-chain machines × 2 routers + ft) ×
            // 2 generation modes, plus one budgeted Square cell and
            // one MBU-enabled Eager cell per generated program.
            assert_eq!(stats.cells, 60, "full machine × router product");
            assert!(stats.gates > 0);
        }
    }

    #[test]
    fn stdlib_cases_derive_deterministically() {
        let a = StdlibCase::from_seed(11);
        assert_eq!(a, StdlibCase::from_seed(11));
        assert_ne!(a.source, StdlibCase::from_seed(12).source);
        assert!(a.source.starts_with("import std;\n"));
        assert!(a.source.contains("call "));
    }

    #[test]
    fn a_handful_of_stdlib_seeds_validate_cleanly() {
        for seed in 0..3u64 {
            let case = StdlibCase::from_seed(seed);
            let stats = run_stdlib_case(&case).unwrap_or_else(|f| panic!("{f}\n{}", f.case.source));
            // One program through the full matrix (half of run_case's
            // 60, which covers two programs) plus the four
            // import-vs-flat differential cells.
            assert_eq!(stats.cells, 30 + 4, "matrix + import/flat differential");
            assert!(stats.gates > 0);
        }
    }

    #[test]
    fn reductions_strictly_simplify() {
        let case = FuzzCase::from_seed(42);
        for r in reductions(&case) {
            let sum = |c: &FuzzCase| {
                c.params.levels
                    + c.params.max_callees
                    + c.params.max_gates
                    + c.params.max_ancilla
                    + c.params.inputs_per_fn
                    + c.inputs.iter().filter(|&&b| b).count()
                    + c.inputs.len()
            };
            assert!(sum(&r) < sum(&case), "{r:?}");
        }
    }
}

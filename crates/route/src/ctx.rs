//! Per-route context and scratch arenas.
//!
//! The router redesign makes [`Router`](crate::Router) impls stateless
//! strategy objects: all mutable routing state lives in a
//! [`RouterScratch`] owned by the machine and lent to the router for
//! the duration of one `route()` call, bundled with the machine and
//! the lookahead window into a [`RoutingCtx`]. Scratch buffers (decay
//! table, BFS arrays, planned swap chains) are reused across gates, so
//! the steady-state hot path performs no allocation at all.

use square_arch::{PhysId, Topology};
use square_qir::{Gate, VirtId};

use crate::machine::Machine;

/// Reusable per-machine routing scratch: the arenas behind both
/// routers. Parked in the machine and `take`n around each route call.
#[derive(Debug, Default)]
pub struct RouterScratch {
    /// Lookahead: per-cell decay factors (≥ 1.0), reset between gates
    /// via `touched` so the cost stays proportional to swaps inserted.
    pub(crate) decay: Vec<f64>,
    /// Lookahead: cells whose decay is currently above 1.0.
    pub(crate) touched: Vec<PhysId>,
    /// Lookahead: virtual operand pairs of the window gates.
    pub(crate) pairs: Vec<(VirtId, VirtId)>,
    /// Bounded-BFS arrays for operand gathering.
    pub(crate) bfs: BfsScratch,
    /// Path / swap-chain cell buffer.
    pub(crate) chain: Vec<PhysId>,
    /// Planned swaps for the greedy plan-then-apply path.
    pub(crate) swaps: Vec<(PhysId, PhysId)>,
    /// Tracked operand positions while planning.
    pub(crate) tracked: Vec<(VirtId, PhysId)>,
}

/// Everything a stateless router needs to route one gate: the machine
/// (topology, placement, clock, sink), its scratch arenas, and the
/// upcoming-gate hint window.
pub struct RoutingCtx<'m> {
    /// The machine being routed onto.
    pub(crate) machine: &'m mut Machine,
    /// Scratch arenas, reused across gates.
    pub(crate) scratch: &'m mut RouterScratch,
    /// Upcoming-gate hints (empty unless the executor knows the
    /// router wants them).
    pub(crate) window: &'m [Gate<VirtId>],
}

impl<'m> RoutingCtx<'m> {
    /// The machine being routed onto.
    pub fn machine(&mut self) -> &mut Machine {
        self.machine
    }

    /// The upcoming-gate hint window.
    pub fn window(&self) -> &[Gate<VirtId>] {
        self.window
    }
}

/// Flat, epoch-stamped bounded-BFS state. Arrays are sized on first
/// use and never cleared: a bumped epoch invalidates all stamps in
/// O(1), so repeated gathers reuse the same memory.
#[derive(Debug, Default)]
pub struct BfsScratch {
    /// Predecessor cell index, valid only where `stamp == epoch`.
    prev: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    /// FIFO queue (head index instead of pop_front).
    queue: Vec<PhysId>,
}

impl BfsScratch {
    fn ensure(&mut self, n: usize) {
        if self.prev.len() < n {
            self.prev.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Bounded BFS from `from` to any cell satisfying `goal`, avoiding
    /// `blocked` cells, visiting the graph in exactly the order the
    /// historical `HashMap`-based search did (FIFO, neighbours in
    /// topology order, goal tested at discovery). On success writes
    /// the path — inclusive of both ends — into `path` and returns
    /// true.
    pub(crate) fn bfs_to(
        &mut self,
        topo: &dyn Topology,
        from: PhysId,
        goal: &mut dyn FnMut(PhysId) -> bool,
        blocked: &[PhysId],
        max_visits: usize,
        path: &mut Vec<PhysId>,
    ) -> bool {
        path.clear();
        if goal(from) {
            path.push(from);
            return true;
        }
        self.ensure(topo.qubit_count());
        let epoch = self.epoch;
        self.queue.clear();
        self.queue.push(from);
        self.stamp[from.index()] = epoch;
        self.prev[from.index()] = from.0;
        let mut head = 0usize;
        let mut visits = 0usize;
        let mut found: Option<PhysId> = None;
        while head < self.queue.len() && found.is_none() {
            let cur = self.queue[head];
            head += 1;
            visits += 1;
            if visits > max_visits {
                return false;
            }
            let BfsScratch {
                prev, stamp, queue, ..
            } = self;
            topo.for_each_neighbor(cur, &mut |nb| {
                if found.is_some() || stamp[nb.index()] == epoch || blocked.contains(&nb) {
                    return;
                }
                stamp[nb.index()] = epoch;
                prev[nb.index()] = cur.0;
                if goal(nb) {
                    found = Some(nb);
                    return;
                }
                queue.push(nb);
            });
        }
        let Some(nb) = found else {
            return false;
        };
        path.push(nb);
        let mut c = nb;
        while c != from {
            c = PhysId(self.prev[c.index()]);
            path.push(c);
        }
        path.reverse();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_arch::GridTopology;

    #[test]
    fn bfs_routes_around_blocked_cells() {
        let topo = GridTopology::new(3, 3);
        let mut bfs = BfsScratch::default();
        let mut path = Vec::new();
        // From (0,0) to any neighbour of (2,0)=PhysId(2), with the
        // direct row blocked at (1,0)=PhysId(1).
        let target = PhysId(2);
        let ok = bfs.bfs_to(
            &topo,
            PhysId(0),
            &mut |c| topo.are_coupled(c, target),
            &[PhysId(1), target],
            4096,
            &mut path,
        );
        assert!(ok);
        assert_eq!(path.first(), Some(&PhysId(0)));
        assert!(topo.are_coupled(*path.last().unwrap(), target));
        assert!(!path.contains(&PhysId(1)), "blocked cell avoided");
        for w in path.windows(2) {
            assert!(topo.are_coupled(w[0], w[1]));
        }
        // Scratch reuse: a second, trivial query (goal at start).
        let ok2 = bfs.bfs_to(
            &topo,
            PhysId(4),
            &mut |c| c == PhysId(4),
            &[],
            4096,
            &mut path,
        );
        assert!(ok2);
        assert_eq!(path, vec![PhysId(4)]);
    }

    #[test]
    fn bfs_respects_visit_budget() {
        let topo = GridTopology::new(10, 10);
        let mut bfs = BfsScratch::default();
        let mut path = Vec::new();
        let ok = bfs.bfs_to(
            &topo,
            PhysId(0),
            &mut |c| c == PhysId(99),
            &[],
            3,
            &mut path,
        );
        assert!(!ok, "budget of 3 visits cannot reach the far corner");
    }
}

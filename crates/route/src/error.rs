use std::fmt;

use square_arch::PhysId;
use square_qir::VirtId;

/// Errors from placement and routing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// Attempted to place a virtual qubit on an occupied physical slot.
    SlotOccupied {
        /// The contested physical qubit.
        phys: PhysId,
    },
    /// A gate or release referenced a virtual qubit with no placement.
    UnplacedQubit {
        /// The unknown virtual qubit.
        virt: VirtId,
    },
    /// Attempted to place a virtual qubit that already has a slot.
    AlreadyPlaced {
        /// The doubly placed virtual qubit.
        virt: VirtId,
    },
    /// The machine has no free physical qubit left.
    MachineFull,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::SlotOccupied { phys } => write!(f, "physical slot {phys} is occupied"),
            RouteError::UnplacedQubit { virt } => {
                write!(f, "virtual qubit {virt} has no placement")
            }
            RouteError::AlreadyPlaced { virt } => {
                write!(f, "virtual qubit {virt} is already placed")
            }
            RouteError::MachineFull => write!(f, "no free physical qubits"),
        }
    }
}

impl std::error::Error for RouteError {}

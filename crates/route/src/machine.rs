//! The machine model: placement, routing, scheduling, liveness.
//!
//! [`Machine`] is the stateful target the compile-time executor
//! drives, split into three cohesive parts it orchestrates:
//!
//! * [`Placement`] — who sits where: flat occupancy arrays and
//!   free / ever-used cell bitsets (read via [`Machine::placement`]);
//! * [`Clock`] — when: per-qubit ASAP availability and the makespan
//!   (read via [`Machine::clock`]);
//! * [`ScheduleSink`] — what came out: statistics, liveness segments,
//!   and the optional recorded circuit and placement history.
//!
//! Placing a virtual qubit binds it to a physical slot; applying a
//! gate resolves connectivity (swap chains on NISQ, braids on FT),
//! schedules it ASAP, and updates the communication statistics that
//! feed the CER heuristic's `S` factor. Releasing a qubit closes its
//! liveness segment, from which active quantum volume is computed.
//!
//! Routing strategy lives behind the stateless [`Router`] trait; the
//! machine lends each `route()` call a [`RoutingCtx`](crate::RoutingCtx)
//! carrying its scratch arenas, so the hot path allocates nothing.
//! Wide front layers of independent gates can be routed in parallel
//! with [`Machine::apply_layer`], which plans greedy swap chains on a
//! snapshot across threads and merges them deterministically.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use rayon::prelude::*;

use square_arch::{CommModel, FlatTables, PhysId, Topology};
use square_qir::{ClbitId, Gate, VirtId};

use crate::braid::BraidField;
use crate::config::RouterConfig;
use crate::ctx::{RouterScratch, RoutingCtx};
use crate::error::RouteError;
use crate::placement::Placement;
use crate::router::{self, RouterKind};
use crate::schedule::{gate_duration, ScheduledGate};
use crate::sink::ScheduleSink;
use crate::timeline::Clock;

/// Construction options for [`Machine`].
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Communication model: swap chains (NISQ) or braiding (FT).
    pub comm: CommModel,
    /// Record the full scheduled physical circuit (needed for noise
    /// simulation; costs memory on large programs).
    pub record_schedule: bool,
    /// Swap-chain routing engine options (ignored under braiding).
    pub router: RouterConfig,
}

impl MachineConfig {
    /// NISQ defaults: swap chains, greedy router, schedule recording
    /// off.
    pub fn nisq() -> Self {
        MachineConfig {
            comm: CommModel::SwapChains,
            record_schedule: false,
            router: RouterConfig::default(),
        }
    }

    /// FT defaults: braiding, schedule recording off.
    pub fn ft() -> Self {
        MachineConfig {
            comm: CommModel::Braiding,
            record_schedule: false,
            router: RouterConfig::default(),
        }
    }

    /// Enables schedule recording.
    pub fn with_schedule(mut self) -> Self {
        self.record_schedule = true;
        self
    }

    /// Selects the swap-chain routing options (a bare
    /// [`RouterKind`] converts, keeping the other knobs default).
    pub fn with_router(mut self, router: impl Into<RouterConfig>) -> Self {
        self.router = router.into();
        self
    }
}

/// Communication / scheduling statistics, accumulated online.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Program gates scheduled (excludes routing swaps).
    pub program_gates: u64,
    /// Multi-qubit program gates (denominator of the swap `S` factor).
    pub multi_qubit_gates: u64,
    /// SWAP gates inserted by routing.
    pub swaps: u64,
    /// Braids committed (FT machines).
    pub braids: u64,
    /// Braid conflicts that forced queuing (FT machines).
    pub braid_conflicts: u64,
    /// Toffoli operand-gathering passes that needed a retry.
    pub gather_retries: u64,
    /// Toffoli gathers that gave up before reaching full adjacency.
    pub gather_failures: u64,
}

/// One event in a machine's placement history: where a virtual qubit
/// was bound, every cell routing moved it through, and where it was
/// released. Recorded only when schedule recording is on (same knob,
/// same memory rationale), and consumed by the translation validator
/// to explain *how* a mismatching qubit reached its final cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementEvent {
    /// The qubit was bound to a physical cell.
    Place {
        /// The virtual qubit.
        virt: VirtId,
        /// The cell it was bound to.
        phys: PhysId,
    },
    /// A routing swap carried the qubit between adjacent cells.
    Move {
        /// The virtual qubit.
        virt: VirtId,
        /// Cell it left.
        from: PhysId,
        /// Cell it arrived in.
        to: PhysId,
    },
    /// The qubit was released; its cell returned to the free pool.
    Release {
        /// The virtual qubit.
        virt: VirtId,
        /// The cell it vacated.
        phys: PhysId,
    },
}

impl PlacementEvent {
    /// The virtual qubit this event concerns.
    pub fn virt(&self) -> VirtId {
        match self {
            PlacementEvent::Place { virt, .. }
            | PlacementEvent::Move { virt, .. }
            | PlacementEvent::Release { virt, .. } => *virt,
        }
    }
}

/// The sequence of physical cells `virt` occupied, in order, extracted
/// from a placement history (first entry is the initial placement).
pub fn journey_of(history: &[PlacementEvent], virt: VirtId) -> Vec<PhysId> {
    let mut cells = Vec::new();
    for ev in history {
        match ev {
            PlacementEvent::Place { virt: v, phys } if *v == virt => cells.push(*phys),
            PlacementEvent::Move { virt: v, to, .. } if *v == virt => cells.push(*to),
            _ => {}
        }
    }
    cells
}

/// One closed liveness interval of a virtual qubit: from its first
/// gate to the end of its last gate (or to program end for qubits
/// never reclaimed). Heap time — after `Free`, before reuse — is
/// excluded by construction, matching the paper's AQV definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessSegment {
    /// The virtual qubit.
    pub virt: VirtId,
    /// Physical slot it occupied when released.
    pub phys: PhysId,
    /// First cycle the qubit was touched by a gate.
    pub start: u64,
    /// Cycle after its last gate (or program end if never reclaimed).
    pub end: u64,
}

impl LivenessSegment {
    /// Segment duration in cycles.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// Final output of a machine run.
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// Circuit makespan in cycles.
    pub depth: u64,
    /// Communication statistics.
    pub stats: CommStats,
    /// Closed liveness segments of every virtual qubit that was used.
    pub segments: Vec<LivenessSegment>,
    /// The scheduled physical circuit (if recording was enabled).
    pub schedule: Option<Vec<ScheduledGate>>,
    /// Peak number of simultaneously placed qubits.
    pub peak_active: usize,
    /// Physical qubits that ever *held* a program qubit (excludes
    /// cells merely traversed by swap chains).
    pub footprint: usize,
    /// Final placement of still-live virtual qubits.
    pub final_placement: HashMap<VirtId, PhysId>,
    /// Full placement history (if recording was enabled): every bind,
    /// routing move, and release, in machine order.
    pub placement_history: Option<Vec<PlacementEvent>>,
    /// Which swap-chain router produced this schedule.
    pub router: RouterKind,
}

/// Distance acceleration mode, resolved once at construction: the
/// routing hot path answers distance/adjacency queries from cached
/// coordinates or flat tables instead of virtual calls where it can.
#[derive(Debug, Clone)]
enum DistAccel {
    /// Hop distance equals Manhattan distance on the cached embedding
    /// (grid, line).
    Manhattan,
    /// Graph-backed layout with shared flat all-pairs tables
    /// (heavy-hex).
    Tables(FlatTables),
    /// Fall through to the topology's own (closed-form) answers.
    Virtual,
}

/// A machine being scheduled onto: topology + placement + clock.
pub struct Machine {
    /// Shared so a long-running compile service can hand many
    /// concurrent machines the same topology (and its lazily-built
    /// distance/next-hop tables) without rebuilding per compile.
    topo: Arc<dyn Topology>,
    comm: CommModel,
    config: RouterConfig,
    accel: DistAccel,
    /// Upcoming-gate hint window for lookahead routers, filled by the
    /// executor before each gate.
    lookahead: Vec<Gate<VirtId>>,
    clock: Clock,
    placement: Placement,
    sink: ScheduleSink,
    braid_field: BraidField,
    /// Router scratch arenas; parked in an `Option` so they can be
    /// taken out while routing borrows the machine mutably.
    scratch: Option<RouterScratch>,
    /// Reusable physical-operand buffer for gate scheduling.
    phys_buf: Vec<PhysId>,
    /// Classical guard for the program gate currently being applied
    /// (set by [`Machine::apply_guarded`], consumed at record time;
    /// routing swaps stay unconditional).
    pending_guard: Option<ClbitId>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("topology", &self.topo.name())
            .field("comm", &self.comm)
            .field("qubits", &self.topo.qubit_count())
            .field("active", &self.placement.active_count())
            .field("depth", &self.clock.depth())
            .finish()
    }
}

impl Machine {
    /// Creates a machine over `topo` with the given configuration.
    pub fn new(topo: Box<dyn Topology>, config: MachineConfig) -> Self {
        Self::with_shared(Arc::from(topo), config)
    }

    /// Creates a machine over a *shared* topology: several machines
    /// (concurrent compiles) may hold the same `Arc`, reusing its
    /// cached distance/next-hop tables. The machine never mutates the
    /// topology.
    pub fn with_shared(topo: Arc<dyn Topology>, config: MachineConfig) -> Self {
        let accel = if topo.manhattan_distance() {
            DistAccel::Manhattan
        } else if let Some(tables) = topo.flat_tables() {
            DistAccel::Tables(tables)
        } else {
            DistAccel::Virtual
        };
        Machine {
            clock: Clock::new(topo.qubit_count()),
            placement: Placement::new(topo.as_ref()),
            sink: ScheduleSink::new(config.record_schedule),
            braid_field: BraidField::new(),
            comm: config.comm,
            config: config.router,
            accel,
            lookahead: Vec::new(),
            scratch: Some(RouterScratch::default()),
            phys_buf: Vec::new(),
            pending_guard: None,
            topo,
        }
    }

    /// The machine's topology.
    pub fn topo(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// The communication model in effect.
    pub fn comm(&self) -> CommModel {
        self.comm
    }

    /// Total physical qubits.
    pub fn qubit_count(&self) -> usize {
        self.placement.qubit_count()
    }

    /// The placement state: occupancy, free cells, centroids.
    #[inline]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The scheduling clock: per-qubit availability and the makespan.
    #[inline]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Coupling-graph distance, answered from the acceleration mode
    /// resolved at construction (cached coordinates, flat tables, or
    /// the topology's closed form) — same values as `topo().distance`.
    #[inline]
    pub fn distance(&self, a: PhysId, b: PhysId) -> u32 {
        match &self.accel {
            DistAccel::Manhattan => {
                let (ax, ay) = self.placement.coord(a);
                let (bx, by) = self.placement.coord(b);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            DistAccel::Tables(t) => t.distance(a, b),
            DistAccel::Virtual => self.topo.distance(a, b),
        }
    }

    /// True if a two-qubit gate can act directly on `a` and `b`
    /// (equivalent to `topo().are_coupled`, via [`Machine::distance`]).
    #[inline]
    pub fn coupled(&self, a: PhysId, b: PhysId) -> bool {
        self.distance(a, b) == 1
    }

    /// First hop of a shortest `a → b` path (equivalent to
    /// `topo().next_hop`, table-accelerated where available).
    #[inline]
    pub fn hop(&self, a: PhysId, b: PhysId) -> Option<PhysId> {
        match &self.accel {
            DistAccel::Tables(t) => t.next_hop(a, b),
            _ => self.topo.next_hop(a, b),
        }
    }

    /// Earliest start for a gate over the given virtual qubits.
    pub fn ready_time(&self, virts: &[VirtId]) -> u64 {
        virts
            .iter()
            .filter_map(|v| self.placement.phys_of(*v))
            .map(|p| self.clock.avail(p))
            .max()
            .unwrap_or(0)
    }

    /// Drains the free-slot relocations caused by routing swaps since
    /// the last call: a swap through a free cell moves that cell's |0⟩
    /// to the cell the data qubit vacated. Callers holding pools of
    /// free slots (the ancilla heap) must apply these renames.
    pub fn drain_relocations(&mut self) -> Vec<(PhysId, PhysId)> {
        self.placement.drain_relocations()
    }

    /// The free slot nearest `center`. With `require_fresh`, only
    /// never-used slots qualify (a "brand new" qubit in the paper's
    /// allocation algorithm).
    pub fn nearest_free(&self, center: (i32, i32), require_fresh: bool) -> Option<PhysId> {
        if require_fresh {
            // Once every cell has been touched, a fresh-only scan can
            // only fail — skip the ring walk outright.
            if self.placement.fresh_count() == 0 {
                return None;
            }
            // Never-used cells are necessarily free, so the occupancy
            // check can be dropped from the fresh predicate.
            return self
                .topo
                .ring_find(center, &mut |p| !self.placement.was_ever_used(p));
        }
        self.topo
            .ring_find(center, &mut |p| self.placement.is_free(p))
    }

    /// Places virtual qubit `v` on slot `p`.
    ///
    /// # Errors
    ///
    /// [`RouteError::SlotOccupied`] / [`RouteError::AlreadyPlaced`].
    pub fn place_at(&mut self, v: VirtId, p: PhysId) -> Result<(), RouteError> {
        self.placement.bind(v, p)?;
        self.sink.event(PlacementEvent::Place { virt: v, phys: p });
        Ok(())
    }

    /// Releases virtual qubit `v`, closing its liveness segment, and
    /// returns the physical slot it held (now free for reuse).
    ///
    /// # Errors
    ///
    /// [`RouteError::UnplacedQubit`] if `v` is not placed.
    pub fn release(&mut self, v: VirtId) -> Result<PhysId, RouteError> {
        let p = self.placement.unbind(v)?;
        self.sink
            .event(PlacementEvent::Release { virt: v, phys: p });
        if let Some((first, last)) = self.sink.take_usage(v) {
            self.sink.push_segment(LivenessSegment {
                virt: v,
                phys: p,
                start: first,
                end: last,
            });
        }
        Ok(p)
    }

    /// The running communication factor `S` (Section IV-D): average
    /// swap-chain length per multi-qubit gate on NISQ machines, average
    /// braid conflicts per braid on FT machines.
    pub fn comm_factor(&self) -> f64 {
        match self.comm {
            CommModel::SwapChains => {
                let stats = self.sink.stats();
                if stats.multi_qubit_gates == 0 {
                    0.0
                } else {
                    stats.swaps as f64 / stats.multi_qubit_gates as f64
                }
            }
            CommModel::Braiding => self.braid_field.avg_conflicts(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CommStats {
        self.sink.stats()
    }

    /// The routing engine configuration.
    pub fn router_config(&self) -> RouterConfig {
        self.config
    }

    /// The routing strategy in effect.
    pub fn router_kind(&self) -> RouterKind {
        self.config.kind
    }

    /// True when the active router consumes the lookahead window —
    /// callers skip building the window otherwise.
    pub fn wants_lookahead(&self) -> bool {
        self.comm == CommModel::SwapChains && self.config.kind.wants_lookahead()
    }

    /// The upcoming-gate hint window the router sees on the next
    /// [`Machine::apply`]. Callers clear and refill it per gate; a
    /// stale window only degrades routing scores, never correctness.
    pub fn lookahead_mut(&mut self) -> &mut Vec<Gate<VirtId>> {
        &mut self.lookahead
    }

    /// Records a Toffoli operand-gathering retry (router bookkeeping).
    pub(crate) fn note_gather_retry(&mut self) {
        self.sink.stats.gather_retries += 1;
    }

    /// Records a Toffoli gather that gave up before full adjacency.
    pub(crate) fn note_gather_failure(&mut self) {
        self.sink.stats.gather_failures += 1;
    }

    /// Folds a planned gather's bookkeeping into the statistics.
    pub(crate) fn bump_gather(&mut self, retries: u64, failed: bool) {
        self.sink.stats.gather_retries += retries;
        if failed {
            self.sink.stats.gather_failures += 1;
        }
    }

    /// Swaps the contents of two adjacent physical cells (a routing
    /// SWAP: three CNOT cycles), updating placements, liveness,
    /// free-cell relocations, and the placement history. This is the
    /// only mutation [`Router`](crate::Router) implementations
    /// perform.
    pub fn swap_cells(&mut self, p: PhysId, q: PhysId) {
        debug_assert!(self.topo.are_coupled(p, q), "swap of non-coupled cells");
        let start = self.clock.occupy_pair_asap(p, q, 3);
        let (vp, vq) = self.placement.swap_occupants(p, q);
        if let Some(v) = vp {
            self.sink.note_usage(v, start, start + 3);
            self.sink.event(PlacementEvent::Move {
                virt: v,
                from: p,
                to: q,
            });
        }
        if let Some(v) = vq {
            self.sink.note_usage(v, start, start + 3);
            self.sink.event(PlacementEvent::Move {
                virt: v,
                from: q,
                to: p,
            });
        }
        self.sink.stats.swaps += 1;
        self.sink.record(Gate::Swap { a: p, b: q }, start, 3, true);
    }

    /// Applies a program gate: resolves connectivity, schedules ASAP,
    /// updates statistics and liveness. Returns the start cycle.
    ///
    /// # Errors
    ///
    /// [`RouteError::UnplacedQubit`] if an operand has no placement.
    pub fn apply(&mut self, gate: &Gate<VirtId>) -> Result<u64, RouteError> {
        match self.comm {
            CommModel::SwapChains => self.apply_swapchain(gate),
            CommModel::Braiding => self.apply_braided(gate),
        }
    }

    /// Schedules a mid-circuit measurement of `v` into `clbit`: the
    /// qubit's cell is occupied for one cycle, the event counts as a
    /// program gate, and the recorded schedule (when on) carries the
    /// classical destination so simulators and validators can replay
    /// the feedback. No routing is needed — measurement is local.
    ///
    /// # Errors
    ///
    /// [`RouteError::UnplacedQubit`] if `v` has no placement.
    pub fn measure(&mut self, v: VirtId, clbit: ClbitId) -> Result<u64, RouteError> {
        let p = self
            .placement
            .phys_of(v)
            .ok_or(RouteError::UnplacedQubit { virt: v })?;
        let start = self.clock.occupy_asap(&[p], 1);
        self.sink.note_usage(v, start, start + 1);
        self.sink.stats.program_gates += 1;
        if self.sink.records_schedule() {
            self.sink
                .record_classical(Gate::X { target: p }, start, 1, false, None, Some(clbit));
        }
        Ok(start)
    }

    /// Applies a classically controlled program gate: routed and
    /// scheduled exactly like the bare gate (its cell is occupied
    /// whether or not the guard fires at runtime), recorded with the
    /// guarding classical bit. Routing swaps the gate may need stay
    /// unconditional — they move data, not outcomes.
    ///
    /// # Errors
    ///
    /// [`RouteError::UnplacedQubit`] if an operand has no placement.
    pub fn apply_guarded(
        &mut self,
        gate: &Gate<VirtId>,
        clbit: ClbitId,
    ) -> Result<u64, RouteError> {
        self.pending_guard = Some(clbit);
        let result = self.apply(gate);
        self.pending_guard = None;
        result
    }

    /// Applies a *front layer* of program gates, in order. Under the
    /// greedy swap-chain router, layers at least
    /// [`RouterConfig::parallel_min_layer`] multi-qubit gates wide
    /// have their swap chains planned in parallel (rayon) from a
    /// placement snapshot, then merged deterministically: each plan is
    /// replayed in program order if its operands still sit where the
    /// snapshot saw them, and re-planned serially otherwise — so the
    /// schedule is bit-identical to gate-at-a-time routing.
    ///
    /// # Errors
    ///
    /// [`RouteError::UnplacedQubit`] if an operand has no placement.
    pub fn apply_layer(&mut self, gates: &[Gate<VirtId>]) -> Result<(), RouteError> {
        let threshold = self.config.parallel_min_layer;
        let eligible = self.comm == CommModel::SwapChains
            && self.config.kind == RouterKind::Greedy
            && threshold != usize::MAX
            && gates.iter().filter(|g| g.arity() >= 2).count() >= threshold;
        if !eligible {
            for gate in gates {
                self.apply(gate)?;
            }
            return Ok(());
        }
        // Partition the batch into contiguous *waves* of
        // operand-disjoint gates. Gates that share a qubit are routed
        // one after another anyway (the second plan would be stale the
        // moment the first one moves the shared operand), so planning
        // them on one snapshot wastes the fork-join; only genuinely
        // independent runs are worth threads. Dependent arithmetic
        // chains therefore degenerate to the serial path with nothing
        // but this O(batch) partition as overhead.
        let mut seen: Vec<VirtId> = Vec::new();
        let mut start = 0;
        while start < gates.len() {
            seen.clear();
            let mut end = start;
            let mut wide = 0usize;
            'grow: while end < gates.len() {
                let gate = &gates[end];
                let mut overlaps = false;
                gate.for_each_qubit(|q| overlaps |= seen.contains(q));
                if overlaps {
                    break 'grow;
                }
                gate.for_each_qubit(|q| seen.push(*q));
                wide += usize::from(gate.arity() >= 2);
                end += 1;
            }
            let wave = &gates[start..end];
            if wide >= threshold {
                self.apply_wave(wave)?;
            } else {
                for gate in wave {
                    self.apply(gate)?;
                }
            }
            start = end;
        }
        Ok(())
    }

    /// Routes one operand-disjoint wave: greedy plans are computed on
    /// a placement snapshot across threads, then merged in order.
    fn apply_wave(&mut self, wave: &[Gate<VirtId>]) -> Result<(), RouteError> {
        let snapshot: &Machine = self;
        let plans: Vec<_> = wave
            .par_iter()
            .map(|gate| router::plan_layer_gate(snapshot, gate))
            .collect();
        for (gate, plan) in wave.iter().zip(plans) {
            match plan {
                Some(plan) if plan.still_valid(self) => {
                    for &(u, v) in &plan.swaps {
                        self.swap_cells(u, v);
                    }
                    self.bump_gather(plan.retries, plan.failed);
                    self.schedule_program_gate(gate)?;
                }
                // Stale plan (an earlier chain in the wave crossed an
                // operand), unplanned gate (1-qubit), or a planning
                // error: fall back to the serial path.
                _ => {
                    self.apply(gate)?;
                }
            }
        }
        Ok(())
    }

    fn phys_operands(&self, gate: &Gate<VirtId>) -> Result<Vec<PhysId>, RouteError> {
        let mut out = Vec::with_capacity(gate.arity());
        let mut missing = None;
        gate.for_each_qubit(|v| match self.placement.phys_of(*v) {
            Some(p) => out.push(p),
            None => missing = Some(*v),
        });
        match missing {
            Some(v) => Err(RouteError::UnplacedQubit { virt: v }),
            None => Ok(out),
        }
    }

    /// Placement of an operand that routing already verified.
    fn phys_must(&self, v: VirtId) -> PhysId {
        self.placement.phys_of(v).expect("operand placed")
    }

    /// Schedules an already-routed program gate ASAP and updates
    /// statistics, liveness, and the recorded circuit.
    fn schedule_program_gate(&mut self, gate: &Gate<VirtId>) -> Result<u64, RouteError> {
        let mut buf = std::mem::take(&mut self.phys_buf);
        buf.clear();
        let mut missing = None;
        gate.for_each_qubit(|v| match self.placement.phys_of(*v) {
            Some(p) => buf.push(p),
            None => missing = Some(*v),
        });
        if let Some(v) = missing {
            self.phys_buf = buf;
            return Err(RouteError::UnplacedQubit { virt: v });
        }
        let dur = gate_duration(gate);
        let start = self.clock.occupy_asap(&buf, dur);
        self.phys_buf = buf;
        let sink = &mut self.sink;
        gate.for_each_qubit(|v| sink.note_usage(*v, start, start + dur));
        sink.stats.program_gates += 1;
        if gate.arity() >= 2 {
            sink.stats.multi_qubit_gates += 1;
        }
        let guard = self.pending_guard;
        if self.sink.records_schedule() {
            let phys_gate = gate.map(|v| self.phys_must(*v));
            self.sink
                .record_classical(phys_gate, start, dur, false, guard, None);
        }
        Ok(start)
    }

    fn apply_swapchain(&mut self, gate: &Gate<VirtId>) -> Result<u64, RouteError> {
        // The scratch arenas and window are parked in the machine so
        // the stateless router can borrow all three disjointly.
        let router = self.config.kind.instance();
        let window = std::mem::take(&mut self.lookahead);
        let mut scratch = self.scratch.take().expect("scratch parked in place");
        let routed = {
            let mut ctx = RoutingCtx {
                machine: self,
                scratch: &mut scratch,
                window: &window,
            };
            router.route(&mut ctx, gate)
        };
        self.scratch = Some(scratch);
        self.lookahead = window;
        routed?;
        self.schedule_program_gate(gate)
    }

    fn apply_braided(&mut self, gate: &Gate<VirtId>) -> Result<u64, RouteError> {
        let phys = self.phys_operands(gate)?;
        match gate {
            Gate::X { .. } => {
                let start = self.clock.occupy_asap(&phys, 1);
                self.note_braided_gate(gate, start, 1);
                Ok(start)
            }
            Gate::Cx { .. } | Gate::Swap { .. } => {
                let dur = if matches!(gate, Gate::Swap { .. }) {
                    3
                } else {
                    1
                };
                let start = self.braid_pair(phys[0], phys[1], dur);
                self.note_braided_gate(gate, start, dur);
                Ok(start)
            }
            Gate::Ccx { .. } => {
                // Three sequential pairwise braids of two cycles each —
                // the braided Toffoli of the magic-state literature.
                let s1 = self.braid_pair(phys[0], phys[2], 2);
                let s2 = self.braid_pair(phys[1], phys[2], 2);
                let s3 = self.braid_pair(phys[0], phys[1], 2);
                let start = s1.min(s2).min(s3);
                let end = (s1 + 2).max(s2 + 2).max(s3 + 2);
                self.note_braided_gate(gate, start, end - start);
                Ok(start)
            }
            Gate::Mcx { controls, target } => {
                // Chain of pairwise braids (for completeness; lowered
                // programs do not produce k ≥ 3).
                let pt = self.phys_must(*target);
                let mut start = u64::MAX;
                let mut end = 0u64;
                for c in controls {
                    let pc = self.phys_must(*c);
                    let s = self.braid_pair(pc, pt, 2);
                    start = start.min(s);
                    end = end.max(s + 2);
                }
                if controls.is_empty() {
                    let s = self.clock.occupy_asap(&phys, 1);
                    start = s;
                    end = s + 1;
                }
                self.note_braided_gate(gate, start, end - start);
                Ok(start)
            }
        }
    }

    /// Liveness/stats/record bookkeeping shared by the braided paths.
    fn note_braided_gate(&mut self, gate: &Gate<VirtId>, start: u64, dur: u64) {
        let sink = &mut self.sink;
        gate.for_each_qubit(|v| sink.note_usage(*v, start, start + dur));
        sink.stats.program_gates += 1;
        if gate.arity() >= 2 {
            sink.stats.multi_qubit_gates += 1;
        }
        let guard = self.pending_guard;
        if self.sink.records_schedule() {
            let phys_gate = gate.map(|v| self.phys_must(*v));
            self.sink
                .record_classical(phys_gate, start, dur, false, guard, None);
        }
    }

    /// Schedules one braid between two placed qubits; returns start.
    fn braid_pair(&mut self, a: PhysId, b: PhysId, dur: u64) -> u64 {
        let ready = self.clock.ready_at(&[a, b]);
        let ca = self.topo.coord(a);
        let cb = self.topo.coord(b);
        let before = self.braid_field.conflicts();
        let start = self.braid_field.route(ca, cb, ready, dur);
        self.sink.stats.braids += 1;
        self.sink.stats.braid_conflicts += self.braid_field.conflicts() - before;
        self.clock.occupy(&[a, b], start, dur);
        start
    }

    /// Finishes the run: closes open liveness segments at the final
    /// makespan and returns the report.
    pub fn finish(self) -> RouteReport {
        let depth = self.clock.depth();
        let final_placement = self.placement.final_placement();
        let footprint = self.placement.footprint();
        let peak_active = self.placement.peak_active();
        let (stats, schedule, history, mut segments, open) = self.sink.into_parts();
        for (v, (first, last)) in open {
            // Still-live qubits (outputs, garbage never reclaimed)
            // stay exposed until program end.
            let phys = final_placement.get(&v).copied().unwrap_or(PhysId(0));
            segments.push(LivenessSegment {
                virt: v,
                phys,
                start: first,
                end: depth.max(last),
            });
        }
        RouteReport {
            depth,
            stats,
            segments,
            schedule,
            peak_active,
            footprint,
            final_placement,
            placement_history: history,
            router: self.config.kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_arch::{FullTopology, GridTopology};

    fn grid_machine(w: u32, h: u32) -> Machine {
        Machine::new(
            Box::new(GridTopology::new(w, h)),
            MachineConfig::nisq().with_schedule(),
        )
    }

    #[test]
    fn place_and_release_round_trip() {
        let mut m = grid_machine(3, 3);
        m.place_at(VirtId(0), PhysId(4)).unwrap();
        assert_eq!(m.placement().active_count(), 1);
        assert!(!m.placement().is_free(PhysId(4)));
        assert!(m.placement().was_ever_used(PhysId(4)));
        let p = m.release(VirtId(0)).unwrap();
        assert_eq!(p, PhysId(4));
        assert!(m.placement().is_free(PhysId(4)));
        assert!(
            m.placement().was_ever_used(PhysId(4)),
            "fresh vs reused distinction"
        );
    }

    #[test]
    fn double_place_and_bad_release_error() {
        let mut m = grid_machine(2, 2);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        assert!(matches!(
            m.place_at(VirtId(0), PhysId(1)),
            Err(RouteError::AlreadyPlaced { .. })
        ));
        assert!(matches!(
            m.place_at(VirtId(1), PhysId(0)),
            Err(RouteError::SlotOccupied { .. })
        ));
        assert!(matches!(
            m.release(VirtId(9)),
            Err(RouteError::UnplacedQubit { .. })
        ));
    }

    #[test]
    fn distant_cnot_inserts_swaps() {
        let mut m = grid_machine(5, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(4)).unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        // distance 4 → 3 swaps to become adjacent.
        assert_eq!(m.stats().swaps, 3);
        // control moved next to target
        assert_eq!(m.placement().phys_of(VirtId(0)), Some(PhysId(3)));
        assert!(m.comm_factor() > 0.0);
    }

    #[test]
    fn adjacent_cnot_needs_no_swaps() {
        let mut m = grid_machine(2, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(1)).unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        assert_eq!(m.stats().swaps, 0);
        assert_eq!(m.comm_factor(), 0.0);
    }

    #[test]
    fn toffoli_gathers_operands() {
        let mut m = grid_machine(5, 5);
        m.place_at(VirtId(0), PhysId(0)).unwrap(); // (0,0)
        m.place_at(VirtId(1), PhysId(24)).unwrap(); // (4,4)
        m.place_at(VirtId(2), PhysId(12)).unwrap(); // (2,2) target
        m.apply(&Gate::Ccx {
            c0: VirtId(0),
            c1: VirtId(1),
            target: VirtId(2),
        })
        .unwrap();
        let pt = m.placement().phys_of(VirtId(2)).unwrap();
        let p0 = m.placement().phys_of(VirtId(0)).unwrap();
        let p1 = m.placement().phys_of(VirtId(1)).unwrap();
        assert!(m.topo().are_coupled(p0, pt));
        assert!(m.topo().are_coupled(p1, pt));
        assert_eq!(m.stats().gather_failures, 0);
    }

    #[test]
    fn full_topology_never_swaps() {
        let mut m = Machine::new(Box::new(FullTopology::new(8)), MachineConfig::nisq());
        for i in 0..8 {
            m.place_at(VirtId(i), PhysId(i)).unwrap();
        }
        for i in 0..7u32 {
            m.apply(&Gate::Cx {
                control: VirtId(i),
                target: VirtId(i + 1),
            })
            .unwrap();
        }
        m.apply(&Gate::Ccx {
            c0: VirtId(0),
            c1: VirtId(4),
            target: VirtId(7),
        })
        .unwrap();
        assert_eq!(m.stats().swaps, 0);
    }

    #[test]
    fn braided_machine_counts_conflicts() {
        let mut m = Machine::new(Box::new(GridTopology::new(6, 6)), MachineConfig::ft());
        // Two crossing long braids on fresh qubits.
        m.place_at(VirtId(0), PhysId(6)).unwrap(); // (0,1)
        m.place_at(VirtId(1), PhysId(11)).unwrap(); // (5,1)
        m.place_at(VirtId(2), PhysId(2)).unwrap(); // (2,0)
        m.place_at(VirtId(3), PhysId(26)).unwrap(); // (2,4)
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(2),
            target: VirtId(3),
        })
        .unwrap();
        assert_eq!(m.stats().swaps, 0, "braiding inserts no swaps");
        assert_eq!(m.stats().braids, 2);
        // Both L-orientations of the second braid cross the first; it
        // must have queued.
        assert!(m.clock().depth() >= 2);
    }

    #[test]
    fn liveness_segments_cover_usage() {
        let mut m = grid_machine(3, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(1)).unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        m.release(VirtId(1)).unwrap();
        let report = m.finish();
        assert_eq!(report.segments.len(), 2);
        let seg1 = report
            .segments
            .iter()
            .find(|s| s.virt == VirtId(1))
            .unwrap();
        assert_eq!((seg1.start, seg1.end), (0, 1));
        // VirtId(0) never released: closed at program end.
        let seg0 = report
            .segments
            .iter()
            .find(|s| s.virt == VirtId(0))
            .unwrap();
        assert_eq!(seg0.end, report.depth);
        assert_eq!(report.peak_active, 2);
        assert_eq!(report.footprint, 2);
        assert_eq!(report.schedule.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn placement_history_tracks_routing_moves() {
        let mut m = grid_machine(5, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(4)).unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        m.release(VirtId(1)).unwrap();
        let report = m.finish();
        let history = report.placement_history.expect("recording on");
        // VirtId(0) journeyed 0 → 1 → 2 → 3 chasing its target.
        assert_eq!(
            journey_of(&history, VirtId(0)),
            vec![PhysId(0), PhysId(1), PhysId(2), PhysId(3)]
        );
        assert_eq!(journey_of(&history, VirtId(1)), vec![PhysId(4)]);
        assert!(history.contains(&PlacementEvent::Release {
            virt: VirtId(1),
            phys: PhysId(4)
        }));
        assert!(history.iter().all(|ev| ev.virt().0 <= 1));
    }

    #[test]
    fn history_off_by_default() {
        let mut m = Machine::new(Box::new(GridTopology::new(2, 2)), MachineConfig::nisq());
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        assert!(m.finish().placement_history.is_none());
    }

    #[test]
    fn measure_and_guarded_gate_record_their_clbit() {
        let mut m = grid_machine(2, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        let s0 = m.measure(VirtId(0), ClbitId(5)).unwrap();
        let s1 = m
            .apply_guarded(&Gate::X { target: VirtId(0) }, ClbitId(5))
            .unwrap();
        assert_eq!((s0, s1), (0, 1), "measurement occupies its cell");
        assert_eq!(m.stats().program_gates, 2);
        assert_eq!(m.stats().swaps, 0);
        let report = m.finish();
        let sched = report.schedule.unwrap();
        assert_eq!(sched.len(), 2);
        assert_eq!(sched[0].measure, Some(ClbitId(5)));
        assert_eq!(sched[0].guard, None);
        assert_eq!(sched[1].guard, Some(ClbitId(5)));
        assert_eq!(sched[1].measure, None);
        assert_eq!(sched[1].gate, Gate::X { target: PhysId(0) });
    }

    #[test]
    fn guard_does_not_leak_to_later_gates_or_swaps() {
        let mut m = grid_machine(5, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(4)).unwrap();
        // A guarded distant CNOT: the inserted routing swaps must stay
        // unconditional, and a following bare gate must be unguarded.
        m.apply_guarded(
            &Gate::Cx {
                control: VirtId(0),
                target: VirtId(1),
            },
            ClbitId(0),
        )
        .unwrap();
        m.apply(&Gate::X { target: VirtId(1) }).unwrap();
        let sched = m.finish().schedule.unwrap();
        let guarded: Vec<_> = sched.iter().filter(|g| g.guard.is_some()).collect();
        assert_eq!(guarded.len(), 1);
        assert!(matches!(guarded[0].gate, Gate::Cx { .. }));
        assert!(sched
            .iter()
            .filter(|g| g.is_comm)
            .all(|g| g.guard.is_none()));
        assert!(sched.last().unwrap().guard.is_none());
    }

    #[test]
    fn unplaced_operand_is_an_error() {
        let mut m = grid_machine(2, 2);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        let err = m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(9),
        });
        assert!(matches!(err, Err(RouteError::UnplacedQubit { .. })));
    }

    #[test]
    fn nearest_free_respects_freshness() {
        let mut m = grid_machine(3, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.release(VirtId(0)).unwrap();
        // Slot 0 is free but used; slot 1 is fresh.
        assert_eq!(m.nearest_free((0, 0), false), Some(PhysId(0)));
        assert_eq!(m.nearest_free((0, 0), true), Some(PhysId(1)));
    }

    /// The parallel layer path must be bit-identical to gate-at-a-time
    /// routing: same swaps, depth, liveness, history, and schedule.
    #[test]
    fn parallel_layer_routing_matches_serial() {
        let gates: Vec<Gate<VirtId>> = (0..12u32)
            .map(|i| Gate::Cx {
                control: VirtId(i),
                target: VirtId((i + 7) % 16),
            })
            .chain([
                Gate::Ccx {
                    c0: VirtId(0),
                    c1: VirtId(15),
                    target: VirtId(8),
                },
                Gate::X { target: VirtId(3) },
                Gate::Cx {
                    control: VirtId(3),
                    target: VirtId(0),
                },
            ])
            .collect();
        let build = |parallel_min: usize| {
            let mut m = Machine::new(
                Box::new(GridTopology::new(8, 8)),
                MachineConfig::nisq()
                    .with_router(
                        RouterConfig::new(RouterKind::Greedy).with_parallel_min_layer(parallel_min),
                    )
                    .with_schedule(),
            );
            for i in 0..16u32 {
                // Spread operands so routing has real work.
                m.place_at(VirtId(i), PhysId(i * 4)).unwrap();
            }
            m
        };
        let mut serial = build(usize::MAX);
        for g in &gates {
            serial.apply(g).unwrap();
        }
        let mut layered = build(1);
        layered.apply_layer(&gates).unwrap();
        let (a, b) = (serial.finish(), layered.finish());
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.swaps > 0, "scenario must actually route");
        assert_eq!(a.depth, b.depth);
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.final_placement, b.final_placement);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.placement_history, b.placement_history);
    }
}

//! The machine model: placement, routing, scheduling, liveness.
//!
//! [`Machine`] is the stateful target the compile-time executor drives.
//! Placing a virtual qubit binds it to a physical slot; applying a gate
//! resolves connectivity (swap chains on NISQ, braids on FT), schedules
//! it ASAP, and updates the communication statistics that feed the
//! CER heuristic's `S` factor. Releasing a qubit closes its liveness
//! segment, from which active quantum volume is computed.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use square_arch::{CommModel, PhysId, Topology};
use square_qir::{Gate, VirtId};

use crate::braid::BraidField;
use crate::error::RouteError;
use crate::router::{Router, RouterKind};
use crate::schedule::{gate_duration, ScheduledGate};
use crate::timeline::Timeline;

/// Construction options for [`Machine`].
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Communication model: swap chains (NISQ) or braiding (FT).
    pub comm: CommModel,
    /// Record the full scheduled physical circuit (needed for noise
    /// simulation; costs memory on large programs).
    pub record_schedule: bool,
    /// Swap-chain router (ignored under braiding).
    pub router: RouterKind,
}

impl MachineConfig {
    /// NISQ defaults: swap chains, greedy router, schedule recording
    /// off.
    pub fn nisq() -> Self {
        MachineConfig {
            comm: CommModel::SwapChains,
            record_schedule: false,
            router: RouterKind::Greedy,
        }
    }

    /// FT defaults: braiding, schedule recording off.
    pub fn ft() -> Self {
        MachineConfig {
            comm: CommModel::Braiding,
            record_schedule: false,
            router: RouterKind::Greedy,
        }
    }

    /// Enables schedule recording.
    pub fn with_schedule(mut self) -> Self {
        self.record_schedule = true;
        self
    }

    /// Selects the swap-chain router.
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }
}

/// Communication / scheduling statistics, accumulated online.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Program gates scheduled (excludes routing swaps).
    pub program_gates: u64,
    /// Multi-qubit program gates (denominator of the swap `S` factor).
    pub multi_qubit_gates: u64,
    /// SWAP gates inserted by routing.
    pub swaps: u64,
    /// Braids committed (FT machines).
    pub braids: u64,
    /// Braid conflicts that forced queuing (FT machines).
    pub braid_conflicts: u64,
    /// Toffoli operand-gathering passes that needed a retry.
    pub gather_retries: u64,
    /// Toffoli gathers that gave up before reaching full adjacency.
    pub gather_failures: u64,
}

/// One event in a machine's placement history: where a virtual qubit
/// was bound, every cell routing moved it through, and where it was
/// released. Recorded only when schedule recording is on (same knob,
/// same memory rationale), and consumed by the translation validator
/// to explain *how* a mismatching qubit reached its final cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementEvent {
    /// The qubit was bound to a physical cell.
    Place {
        /// The virtual qubit.
        virt: VirtId,
        /// The cell it was bound to.
        phys: PhysId,
    },
    /// A routing swap carried the qubit between adjacent cells.
    Move {
        /// The virtual qubit.
        virt: VirtId,
        /// Cell it left.
        from: PhysId,
        /// Cell it arrived in.
        to: PhysId,
    },
    /// The qubit was released; its cell returned to the free pool.
    Release {
        /// The virtual qubit.
        virt: VirtId,
        /// The cell it vacated.
        phys: PhysId,
    },
}

impl PlacementEvent {
    /// The virtual qubit this event concerns.
    pub fn virt(&self) -> VirtId {
        match self {
            PlacementEvent::Place { virt, .. }
            | PlacementEvent::Move { virt, .. }
            | PlacementEvent::Release { virt, .. } => *virt,
        }
    }
}

/// The sequence of physical cells `virt` occupied, in order, extracted
/// from a placement history (first entry is the initial placement).
pub fn journey_of(history: &[PlacementEvent], virt: VirtId) -> Vec<PhysId> {
    let mut cells = Vec::new();
    for ev in history {
        match ev {
            PlacementEvent::Place { virt: v, phys } if *v == virt => cells.push(*phys),
            PlacementEvent::Move { virt: v, to, .. } if *v == virt => cells.push(*to),
            _ => {}
        }
    }
    cells
}

/// One closed liveness interval of a virtual qubit: from its first
/// gate to the end of its last gate (or to program end for qubits
/// never reclaimed). Heap time — after `Free`, before reuse — is
/// excluded by construction, matching the paper's AQV definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessSegment {
    /// The virtual qubit.
    pub virt: VirtId,
    /// Physical slot it occupied when released.
    pub phys: PhysId,
    /// First cycle the qubit was touched by a gate.
    pub start: u64,
    /// Cycle after its last gate (or program end if never reclaimed).
    pub end: u64,
}

impl LivenessSegment {
    /// Segment duration in cycles.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// Final output of a machine run.
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// Circuit makespan in cycles.
    pub depth: u64,
    /// Communication statistics.
    pub stats: CommStats,
    /// Closed liveness segments of every virtual qubit that was used.
    pub segments: Vec<LivenessSegment>,
    /// The scheduled physical circuit (if recording was enabled).
    pub schedule: Option<Vec<ScheduledGate>>,
    /// Peak number of simultaneously placed qubits.
    pub peak_active: usize,
    /// Physical qubits that ever *held* a program qubit (excludes
    /// cells merely traversed by swap chains).
    pub footprint: usize,
    /// Final placement of still-live virtual qubits.
    pub final_placement: HashMap<VirtId, PhysId>,
    /// Full placement history (if recording was enabled): every bind,
    /// routing move, and release, in machine order.
    pub placement_history: Option<Vec<PlacementEvent>>,
    /// Which swap-chain router produced this schedule.
    pub router: RouterKind,
}

/// A machine being scheduled onto: topology + placement + timeline.
pub struct Machine {
    /// Shared so a long-running compile service can hand many
    /// concurrent machines the same topology (and its lazily-built
    /// distance/next-hop tables) without rebuilding per compile.
    topo: Arc<dyn Topology>,
    comm: CommModel,
    /// Swap-chain router; parked in an `Option` so it can be taken
    /// out while routing borrows the machine mutably.
    router: Option<Box<dyn Router>>,
    router_kind: RouterKind,
    /// Upcoming-gate hint window for lookahead routers, filled by the
    /// executor before each gate.
    lookahead: Vec<Gate<VirtId>>,
    timeline: Timeline,
    occupant: Vec<Option<VirtId>>,
    ever_used: Vec<bool>,
    ever_placed: Vec<bool>,
    place: HashMap<VirtId, PhysId>,
    usage: HashMap<VirtId, (u64, u64)>,
    segments: Vec<LivenessSegment>,
    braid_field: BraidField,
    stats: CommStats,
    schedule: Option<Vec<ScheduledGate>>,
    history: Option<Vec<PlacementEvent>>,
    active: usize,
    peak_active: usize,
    coord_sum: (i64, i64),
    relocations: Vec<(PhysId, PhysId)>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("topology", &self.topo.name())
            .field("comm", &self.comm)
            .field("qubits", &self.topo.qubit_count())
            .field("active", &self.active)
            .field("depth", &self.timeline.depth())
            .finish()
    }
}

impl Machine {
    /// Creates a machine over `topo` with the given configuration.
    pub fn new(topo: Box<dyn Topology>, config: MachineConfig) -> Self {
        Self::with_shared(Arc::from(topo), config)
    }

    /// Creates a machine over a *shared* topology: several machines
    /// (concurrent compiles) may hold the same `Arc`, reusing its
    /// cached distance/next-hop tables. The machine never mutates the
    /// topology.
    pub fn with_shared(topo: Arc<dyn Topology>, config: MachineConfig) -> Self {
        let n = topo.qubit_count();
        Machine {
            timeline: Timeline::new(n),
            occupant: vec![None; n],
            ever_used: vec![false; n],
            ever_placed: vec![false; n],
            place: HashMap::new(),
            usage: HashMap::new(),
            segments: Vec::new(),
            braid_field: BraidField::new(),
            stats: CommStats::default(),
            schedule: config.record_schedule.then(Vec::new),
            history: config.record_schedule.then(Vec::new),
            active: 0,
            peak_active: 0,
            coord_sum: (0, 0),
            relocations: Vec::new(),
            comm: config.comm,
            router: Some(config.router.build()),
            router_kind: config.router,
            lookahead: Vec::new(),
            topo,
        }
    }

    /// The machine's topology.
    pub fn topo(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// The communication model in effect.
    pub fn comm(&self) -> CommModel {
        self.comm
    }

    /// Total physical qubits.
    pub fn qubit_count(&self) -> usize {
        self.occupant.len()
    }

    /// Currently placed virtual qubits.
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Free physical slots.
    pub fn free_count(&self) -> usize {
        self.qubit_count() - self.active
    }

    /// True if the slot holds no virtual qubit.
    pub fn is_free(&self, p: PhysId) -> bool {
        self.occupant[p.index()].is_none()
    }

    /// True if the slot has ever held a qubit (so it is "reused"
    /// rather than "fresh" from the allocator's perspective).
    pub fn was_ever_used(&self, p: PhysId) -> bool {
        self.ever_used[p.index()]
    }

    /// Current placement of a virtual qubit.
    pub fn phys_of(&self, v: VirtId) -> Option<PhysId> {
        self.place.get(&v).copied()
    }

    /// Availability time of a physical slot (for serialization
    /// penalties in the LAA score).
    pub fn avail_of(&self, p: PhysId) -> u64 {
        self.timeline.avail(p)
    }

    /// Earliest start for a gate over the given virtual qubits.
    pub fn ready_time(&self, virts: &[VirtId]) -> u64 {
        virts
            .iter()
            .filter_map(|v| self.phys_of(*v))
            .map(|p| self.timeline.avail(p))
            .max()
            .unwrap_or(0)
    }

    /// Geometric centroid of the given (placed) virtual qubits; `None`
    /// if none are placed yet.
    pub fn centroid_of(&self, virts: &[VirtId]) -> Option<(i32, i32)> {
        let coords: Vec<(i32, i32)> = virts
            .iter()
            .filter_map(|v| self.phys_of(*v))
            .map(|p| self.topo.coord(p))
            .collect();
        if coords.is_empty() {
            return None;
        }
        let (sx, sy) = coords.iter().fold((0i64, 0i64), |(sx, sy), (x, y)| {
            (sx + *x as i64, sy + *y as i64)
        });
        let n = coords.len() as i64;
        Some(((sx / n) as i32, (sy / n) as i32))
    }

    /// Drains the free-slot relocations caused by routing swaps since
    /// the last call: a swap through a free cell moves that cell's |0⟩
    /// to the cell the data qubit vacated. Callers holding pools of
    /// free slots (the ancilla heap) must apply these renames.
    pub fn drain_relocations(&mut self) -> Vec<(PhysId, PhysId)> {
        std::mem::take(&mut self.relocations)
    }

    /// Centroid of all currently placed qubits (maintained
    /// incrementally; O(1)). `None` when nothing is placed.
    pub fn active_centroid(&self) -> Option<(i32, i32)> {
        if self.active == 0 {
            return None;
        }
        let n = self.active as i64;
        Some(((self.coord_sum.0 / n) as i32, (self.coord_sum.1 / n) as i32))
    }

    /// The free slot nearest `center`. With `require_fresh`, only
    /// never-used slots qualify (a "brand new" qubit in the paper's
    /// allocation algorithm).
    pub fn nearest_free(&self, center: (i32, i32), require_fresh: bool) -> Option<PhysId> {
        self.topo
            .ring_iter(center)
            .find(|&p| self.is_free(p) && (!require_fresh || !self.ever_used[p.index()]))
    }

    /// Places virtual qubit `v` on slot `p`.
    ///
    /// # Errors
    ///
    /// [`RouteError::SlotOccupied`] / [`RouteError::AlreadyPlaced`].
    pub fn place_at(&mut self, v: VirtId, p: PhysId) -> Result<(), RouteError> {
        if self.place.contains_key(&v) {
            return Err(RouteError::AlreadyPlaced { virt: v });
        }
        if !self.is_free(p) {
            return Err(RouteError::SlotOccupied { phys: p });
        }
        self.occupant[p.index()] = Some(v);
        self.ever_used[p.index()] = true;
        self.ever_placed[p.index()] = true;
        self.place.insert(v, p);
        if let Some(h) = &mut self.history {
            h.push(PlacementEvent::Place { virt: v, phys: p });
        }
        self.active += 1;
        self.peak_active = self.peak_active.max(self.active);
        let (x, y) = self.topo.coord(p);
        self.coord_sum.0 += x as i64;
        self.coord_sum.1 += y as i64;
        Ok(())
    }

    /// Releases virtual qubit `v`, closing its liveness segment, and
    /// returns the physical slot it held (now free for reuse).
    ///
    /// # Errors
    ///
    /// [`RouteError::UnplacedQubit`] if `v` is not placed.
    pub fn release(&mut self, v: VirtId) -> Result<PhysId, RouteError> {
        let p = self
            .place
            .remove(&v)
            .ok_or(RouteError::UnplacedQubit { virt: v })?;
        self.occupant[p.index()] = None;
        self.active -= 1;
        if let Some(h) = &mut self.history {
            h.push(PlacementEvent::Release { virt: v, phys: p });
        }
        let (x, y) = self.topo.coord(p);
        self.coord_sum.0 -= x as i64;
        self.coord_sum.1 -= y as i64;
        if let Some((first, last)) = self.usage.remove(&v) {
            self.segments.push(LivenessSegment {
                virt: v,
                phys: p,
                start: first,
                end: last,
            });
        }
        Ok(p)
    }

    /// The running communication factor `S` (Section IV-D): average
    /// swap-chain length per multi-qubit gate on NISQ machines, average
    /// braid conflicts per braid on FT machines.
    pub fn comm_factor(&self) -> f64 {
        match self.comm {
            CommModel::SwapChains => {
                if self.stats.multi_qubit_gates == 0 {
                    0.0
                } else {
                    self.stats.swaps as f64 / self.stats.multi_qubit_gates as f64
                }
            }
            CommModel::Braiding => self.braid_field.avg_conflicts(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Current makespan.
    pub fn depth(&self) -> u64 {
        self.timeline.depth()
    }

    fn note_usage(&mut self, v: VirtId, start: u64, end: u64) {
        let e = self.usage.entry(v).or_insert((start, end));
        e.0 = e.0.min(start);
        e.1 = e.1.max(end);
    }

    fn record(&mut self, gate: Gate<PhysId>, start: u64, dur: u64, is_comm: bool) {
        if let Some(s) = &mut self.schedule {
            s.push(ScheduledGate {
                gate,
                start,
                dur,
                is_comm,
            });
        }
    }

    /// The communication model's router selection.
    pub fn router_kind(&self) -> RouterKind {
        self.router_kind
    }

    /// True when the active router consumes the lookahead window —
    /// callers skip building the window otherwise.
    pub fn wants_lookahead(&self) -> bool {
        self.comm == CommModel::SwapChains && self.router_kind.wants_lookahead()
    }

    /// The upcoming-gate hint window the router sees on the next
    /// [`Machine::apply`]. Callers clear and refill it per gate; a
    /// stale window only degrades routing scores, never correctness.
    pub fn lookahead_mut(&mut self) -> &mut Vec<Gate<VirtId>> {
        &mut self.lookahead
    }

    /// Records a Toffoli operand-gathering retry (router bookkeeping).
    pub(crate) fn note_gather_retry(&mut self) {
        self.stats.gather_retries += 1;
    }

    /// Records a Toffoli gather that gave up before full adjacency.
    pub(crate) fn note_gather_failure(&mut self) {
        self.stats.gather_failures += 1;
    }

    /// Swaps the contents of two adjacent physical cells (a routing
    /// SWAP: three CNOT cycles), updating placements, liveness,
    /// free-cell relocations, and the placement history. This is the
    /// only mutation [`Router`] implementations perform.
    pub fn swap_cells(&mut self, p: PhysId, q: PhysId) {
        debug_assert!(self.topo.are_coupled(p, q), "swap of non-coupled cells");
        let start = self.timeline.occupy_asap(&[p, q], 3);
        let vp = self.occupant[p.index()];
        let vq = self.occupant[q.index()];
        self.occupant[p.index()] = vq;
        self.occupant[q.index()] = vp;
        let (px, py) = self.topo.coord(p);
        let (qx, qy) = self.topo.coord(q);
        if vp.is_some() != vq.is_some() {
            // one occupant moved between the cells: shift the centroid sum
            let sign = if vp.is_some() { 1 } else { -1 };
            self.coord_sum.0 += sign * (qx as i64 - px as i64);
            self.coord_sum.1 += sign * (qy as i64 - py as i64);
            // The |0⟩ of the free cell relocated to the other cell:
            // report it so pooled-qubit bookkeeping can follow.
            if vp.is_some() {
                self.relocations.push((q, p));
            } else {
                self.relocations.push((p, q));
            }
        }
        if let Some(v) = vp {
            self.place.insert(v, q);
            self.note_usage(v, start, start + 3);
            if let Some(h) = &mut self.history {
                h.push(PlacementEvent::Move {
                    virt: v,
                    from: p,
                    to: q,
                });
            }
        }
        if let Some(v) = vq {
            self.place.insert(v, p);
            self.note_usage(v, start, start + 3);
            if let Some(h) = &mut self.history {
                h.push(PlacementEvent::Move {
                    virt: v,
                    from: q,
                    to: p,
                });
            }
        }
        self.ever_used[p.index()] = true;
        self.ever_used[q.index()] = true;
        self.stats.swaps += 1;
        self.record(Gate::Swap { a: p, b: q }, start, 3, true);
    }

    /// Applies a program gate: resolves connectivity, schedules ASAP,
    /// updates statistics and liveness. Returns the start cycle.
    ///
    /// # Errors
    ///
    /// [`RouteError::UnplacedQubit`] if an operand has no placement.
    pub fn apply(&mut self, gate: &Gate<VirtId>) -> Result<u64, RouteError> {
        match self.comm {
            CommModel::SwapChains => self.apply_swapchain(gate),
            CommModel::Braiding => self.apply_braided(gate),
        }
    }

    fn phys_operands(&self, gate: &Gate<VirtId>) -> Result<Vec<PhysId>, RouteError> {
        let mut out = Vec::with_capacity(gate.arity());
        let mut missing = None;
        gate.for_each_qubit(|v| match self.phys_of(*v) {
            Some(p) => out.push(p),
            None => missing = Some(*v),
        });
        match missing {
            Some(v) => Err(RouteError::UnplacedQubit { virt: v }),
            None => Ok(out),
        }
    }

    fn note_gate(&mut self, gate: &Gate<VirtId>, start: u64, dur: u64) {
        gate.for_each_qubit(|v| {
            // borrow: collect first
            let _ = v;
        });
        let mut virts = Vec::with_capacity(gate.arity());
        gate.for_each_qubit(|v| virts.push(*v));
        for v in virts {
            self.note_usage(v, start, start + dur);
        }
        self.stats.program_gates += 1;
        if gate.arity() >= 2 {
            self.stats.multi_qubit_gates += 1;
        }
    }

    fn apply_swapchain(&mut self, gate: &Gate<VirtId>) -> Result<u64, RouteError> {
        // The router is parked in an Option so it can borrow the
        // machine mutably while routing; the window rides along the
        // same way (it is read-only to the router).
        let mut router = self.router.take().expect("router parked in place");
        let window = std::mem::take(&mut self.lookahead);
        let routed = router.route_gate(self, gate, &window);
        self.lookahead = window;
        self.router = Some(router);
        routed?;
        let phys = self.phys_operands(gate)?;
        let phys_gate = gate.map(|v| self.place[v]);
        let dur = gate_duration(&phys_gate);
        let start = self.timeline.occupy_asap(&phys, dur);
        self.note_gate(gate, start, dur);
        self.record(phys_gate, start, dur, false);
        Ok(start)
    }

    fn apply_braided(&mut self, gate: &Gate<VirtId>) -> Result<u64, RouteError> {
        let phys = self.phys_operands(gate)?;
        match gate {
            Gate::X { .. } => {
                let start = self.timeline.occupy_asap(&phys, 1);
                self.note_gate(gate, start, 1);
                self.record(gate.map(|v| self.place[v]), start, 1, false);
                Ok(start)
            }
            Gate::Cx { .. } | Gate::Swap { .. } => {
                let dur = if matches!(gate, Gate::Swap { .. }) {
                    3
                } else {
                    1
                };
                let start = self.braid_pair(phys[0], phys[1], dur);
                self.note_gate(gate, start, dur);
                self.record(gate.map(|v| self.place[v]), start, dur, false);
                Ok(start)
            }
            Gate::Ccx { .. } => {
                // Three sequential pairwise braids of two cycles each —
                // the braided Toffoli of the magic-state literature.
                let s1 = self.braid_pair(phys[0], phys[2], 2);
                let s2 = self.braid_pair(phys[1], phys[2], 2);
                let s3 = self.braid_pair(phys[0], phys[1], 2);
                let start = s1.min(s2).min(s3);
                let end = (s1 + 2).max(s2 + 2).max(s3 + 2);
                self.note_gate(gate, start, end - start);
                self.record(gate.map(|v| self.place[v]), start, end - start, false);
                Ok(start)
            }
            Gate::Mcx { controls, target } => {
                // Chain of pairwise braids (for completeness; lowered
                // programs do not produce k ≥ 3).
                let pt = self.place[target];
                let mut start = u64::MAX;
                let mut end = 0u64;
                for c in controls {
                    let pc = self.place[c];
                    let s = self.braid_pair(pc, pt, 2);
                    start = start.min(s);
                    end = end.max(s + 2);
                }
                if controls.is_empty() {
                    let s = self.timeline.occupy_asap(&phys, 1);
                    start = s;
                    end = s + 1;
                }
                self.note_gate(gate, start, end - start);
                self.record(gate.map(|v| self.place[v]), start, end - start, false);
                Ok(start)
            }
        }
    }

    /// Schedules one braid between two placed qubits; returns start.
    fn braid_pair(&mut self, a: PhysId, b: PhysId, dur: u64) -> u64 {
        let ready = self.timeline.ready_at(&[a, b]);
        let ca = self.topo.coord(a);
        let cb = self.topo.coord(b);
        let before = self.braid_field.conflicts();
        let start = self.braid_field.route(ca, cb, ready, dur);
        self.stats.braids += 1;
        self.stats.braid_conflicts += self.braid_field.conflicts() - before;
        self.timeline.occupy(&[a, b], start, dur);
        start
    }

    /// Finishes the run: closes open liveness segments at the final
    /// makespan and returns the report.
    pub fn finish(mut self) -> RouteReport {
        let depth = self.timeline.depth();
        let final_placement = self.place.clone();
        let mut segments = std::mem::take(&mut self.segments);
        for (v, (first, last)) in self.usage.drain() {
            // Still-live qubits (outputs, garbage never reclaimed)
            // stay exposed until program end.
            let phys = final_placement.get(&v).copied().unwrap_or(PhysId(0));
            segments.push(LivenessSegment {
                virt: v,
                phys,
                start: first,
                end: depth.max(last),
            });
        }
        let footprint = self.ever_placed.iter().filter(|&&b| b).count();
        RouteReport {
            depth,
            stats: self.stats,
            segments,
            schedule: self.schedule,
            peak_active: self.peak_active,
            footprint,
            final_placement,
            placement_history: self.history,
            router: self.router_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_arch::{FullTopology, GridTopology};

    fn grid_machine(w: u32, h: u32) -> Machine {
        Machine::new(
            Box::new(GridTopology::new(w, h)),
            MachineConfig::nisq().with_schedule(),
        )
    }

    #[test]
    fn place_and_release_round_trip() {
        let mut m = grid_machine(3, 3);
        m.place_at(VirtId(0), PhysId(4)).unwrap();
        assert_eq!(m.active_count(), 1);
        assert!(!m.is_free(PhysId(4)));
        assert!(m.was_ever_used(PhysId(4)));
        let p = m.release(VirtId(0)).unwrap();
        assert_eq!(p, PhysId(4));
        assert!(m.is_free(PhysId(4)));
        assert!(m.was_ever_used(PhysId(4)), "fresh vs reused distinction");
    }

    #[test]
    fn double_place_and_bad_release_error() {
        let mut m = grid_machine(2, 2);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        assert!(matches!(
            m.place_at(VirtId(0), PhysId(1)),
            Err(RouteError::AlreadyPlaced { .. })
        ));
        assert!(matches!(
            m.place_at(VirtId(1), PhysId(0)),
            Err(RouteError::SlotOccupied { .. })
        ));
        assert!(matches!(
            m.release(VirtId(9)),
            Err(RouteError::UnplacedQubit { .. })
        ));
    }

    #[test]
    fn distant_cnot_inserts_swaps() {
        let mut m = grid_machine(5, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(4)).unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        // distance 4 → 3 swaps to become adjacent.
        assert_eq!(m.stats().swaps, 3);
        // control moved next to target
        assert_eq!(m.phys_of(VirtId(0)), Some(PhysId(3)));
        assert!(m.comm_factor() > 0.0);
    }

    #[test]
    fn adjacent_cnot_needs_no_swaps() {
        let mut m = grid_machine(2, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(1)).unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        assert_eq!(m.stats().swaps, 0);
        assert_eq!(m.comm_factor(), 0.0);
    }

    #[test]
    fn toffoli_gathers_operands() {
        let mut m = grid_machine(5, 5);
        m.place_at(VirtId(0), PhysId(0)).unwrap(); // (0,0)
        m.place_at(VirtId(1), PhysId(24)).unwrap(); // (4,4)
        m.place_at(VirtId(2), PhysId(12)).unwrap(); // (2,2) target
        m.apply(&Gate::Ccx {
            c0: VirtId(0),
            c1: VirtId(1),
            target: VirtId(2),
        })
        .unwrap();
        let pt = m.phys_of(VirtId(2)).unwrap();
        let p0 = m.phys_of(VirtId(0)).unwrap();
        let p1 = m.phys_of(VirtId(1)).unwrap();
        assert!(m.topo().are_coupled(p0, pt));
        assert!(m.topo().are_coupled(p1, pt));
        assert_eq!(m.stats().gather_failures, 0);
    }

    #[test]
    fn full_topology_never_swaps() {
        let mut m = Machine::new(Box::new(FullTopology::new(8)), MachineConfig::nisq());
        for i in 0..8 {
            m.place_at(VirtId(i), PhysId(i)).unwrap();
        }
        for i in 0..7u32 {
            m.apply(&Gate::Cx {
                control: VirtId(i),
                target: VirtId(i + 1),
            })
            .unwrap();
        }
        m.apply(&Gate::Ccx {
            c0: VirtId(0),
            c1: VirtId(4),
            target: VirtId(7),
        })
        .unwrap();
        assert_eq!(m.stats().swaps, 0);
    }

    #[test]
    fn braided_machine_counts_conflicts() {
        let mut m = Machine::new(Box::new(GridTopology::new(6, 6)), MachineConfig::ft());
        // Two crossing long braids on fresh qubits.
        m.place_at(VirtId(0), PhysId(6)).unwrap(); // (0,1)
        m.place_at(VirtId(1), PhysId(11)).unwrap(); // (5,1)
        m.place_at(VirtId(2), PhysId(2)).unwrap(); // (2,0)
        m.place_at(VirtId(3), PhysId(26)).unwrap(); // (2,4)
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(2),
            target: VirtId(3),
        })
        .unwrap();
        assert_eq!(m.stats().swaps, 0, "braiding inserts no swaps");
        assert_eq!(m.stats().braids, 2);
        // Both L-orientations of the second braid cross the first; it
        // must have queued.
        assert!(m.depth() >= 2);
    }

    #[test]
    fn liveness_segments_cover_usage() {
        let mut m = grid_machine(3, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(1)).unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        m.release(VirtId(1)).unwrap();
        let report = m.finish();
        assert_eq!(report.segments.len(), 2);
        let seg1 = report
            .segments
            .iter()
            .find(|s| s.virt == VirtId(1))
            .unwrap();
        assert_eq!((seg1.start, seg1.end), (0, 1));
        // VirtId(0) never released: closed at program end.
        let seg0 = report
            .segments
            .iter()
            .find(|s| s.virt == VirtId(0))
            .unwrap();
        assert_eq!(seg0.end, report.depth);
        assert_eq!(report.peak_active, 2);
        assert_eq!(report.footprint, 2);
        assert_eq!(report.schedule.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn placement_history_tracks_routing_moves() {
        let mut m = grid_machine(5, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(4)).unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        m.release(VirtId(1)).unwrap();
        let report = m.finish();
        let history = report.placement_history.expect("recording on");
        // VirtId(0) journeyed 0 → 1 → 2 → 3 chasing its target.
        assert_eq!(
            journey_of(&history, VirtId(0)),
            vec![PhysId(0), PhysId(1), PhysId(2), PhysId(3)]
        );
        assert_eq!(journey_of(&history, VirtId(1)), vec![PhysId(4)]);
        assert!(history.contains(&PlacementEvent::Release {
            virt: VirtId(1),
            phys: PhysId(4)
        }));
        assert!(history.iter().all(|ev| ev.virt().0 <= 1));
    }

    #[test]
    fn history_off_by_default() {
        let mut m = Machine::new(Box::new(GridTopology::new(2, 2)), MachineConfig::nisq());
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        assert!(m.finish().placement_history.is_none());
    }

    #[test]
    fn unplaced_operand_is_an_error() {
        let mut m = grid_machine(2, 2);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        let err = m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(9),
        });
        assert!(matches!(err, Err(RouteError::UnplacedQubit { .. })));
    }

    #[test]
    fn nearest_free_respects_freshness() {
        let mut m = grid_machine(3, 1);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.release(VirtId(0)).unwrap();
        // Slot 0 is free but used; slot 1 is fresh.
        assert_eq!(m.nearest_free((0, 0), false), Some(PhysId(0)));
        assert_eq!(m.nearest_free((0, 0), true), Some(PhysId(1)));
    }
}

//! Pluggable swap-chain routers.
//!
//! Routing — deciding which SWAP chains bring a gate's operands into
//! coupled positions — sits behind the [`Router`] trait. Routers are
//! *stateless strategy objects*: `route()` takes `&self` and a
//! [`RoutingCtx`] lending the machine, the reusable scratch arenas, and
//! the lookahead window, so one `&'static` instance per kind (from
//! [`RouterKind::instance`]) serves every machine concurrently and the
//! hot path allocates nothing. Two implementations:
//!
//! * [`GreedyRouter`]: the original per-gate shortest-path swapper,
//!   kept *bit-compatible* with the historical inlined code (same
//!   shortest-path walks, same bounded-BFS operand gathering, same
//!   swap order) — the correctness anchor every regression suite pins
//!   against. Greedy decisions depend only on operand positions and
//!   the topology, so the router first *plans* the swap chain against
//!   tracked positions, then applies it — the same planner
//!   ([`plan_layer_gate`]) lets [`Machine::apply_layer`] route wide
//!   front layers on worker threads from a placement snapshot.
//! * [`LookaheadRouter`]: a SABRE-style scorer (Li, Ding & Xie,
//!   ASPLOS 2019). Each candidate swap on an edge incident to the
//!   current gate's operands is scored against the *front* (the gate
//!   being routed) plus an *extended set* — a sliding window of
//!   upcoming multi-qubit gates supplied by the compile-time executor
//!   — with a decay factor penalizing cells swapped moments ago (the
//!   anti-ping-pong term). Distances come from the machine's
//!   acceleration tables and are carried *incrementally*: the winning
//!   candidate's post-swap distance becomes the next iteration's
//!   baseline, halving the distance queries per swap.
//!
//! Routers only *move* qubits (via [`Machine::swap_cells`]); gate
//! scheduling, statistics, and liveness stay in the machine. Braided
//! (FT) communication does not route through swap chains and is
//! unaffected by the router choice.

use std::fmt;

use square_qir::{Gate, VirtId};

use square_arch::PhysId;

use crate::ctx::{BfsScratch, RouterScratch, RoutingCtx};
use crate::error::RouteError;
use crate::machine::Machine;

/// Which swap-chain router a machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterKind {
    /// Per-gate shortest-path swapper (the historical router).
    Greedy,
    /// SABRE-style lookahead scorer over a window of upcoming gates.
    Lookahead,
}

impl RouterKind {
    /// Both routers, greedy first.
    pub const ALL: [RouterKind; 2] = [RouterKind::Greedy, RouterKind::Lookahead];

    /// Parses a CLI-style router name, case-insensitively: `greedy`,
    /// `lookahead` (alias `sabre`).
    pub fn parse(name: &str) -> Option<RouterKind> {
        match name.to_ascii_lowercase().as_str() {
            "greedy" => Some(RouterKind::Greedy),
            "lookahead" | "sabre" => Some(RouterKind::Lookahead),
            _ => None,
        }
    }

    /// The CLI name accepted back by [`RouterKind::parse`].
    pub fn cli_name(&self) -> &'static str {
        match self {
            RouterKind::Greedy => "greedy",
            RouterKind::Lookahead => "lookahead",
        }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            RouterKind::Greedy => "GREEDY",
            RouterKind::Lookahead => "LOOKAHEAD",
        }
    }

    /// True if this router consumes the executor's lookahead window
    /// (callers skip building the window otherwise).
    pub fn wants_lookahead(&self) -> bool {
        matches!(self, RouterKind::Lookahead)
    }

    /// The shared router instance for this kind. Routers are
    /// stateless (all mutable state lives in the machine's
    /// [`RouterScratch`]), so every machine — across threads — uses
    /// the same `&'static` object; nothing is boxed per compile.
    pub fn instance(self) -> &'static dyn Router {
        match self {
            RouterKind::Greedy => &GreedyRouter,
            RouterKind::Lookahead => &LookaheadRouter,
        }
    }
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A swap-chain routing strategy.
///
/// `route` must leave every multi-qubit operand pair the gate needs
/// coupled (or give up the way the greedy gatherer does, which is
/// recorded as a gather failure); it moves qubits exclusively through
/// [`Machine::swap_cells`], which keeps placement, liveness,
/// relocation, and history bookkeeping consistent. Implementations
/// are stateless — per-route mutable state lives in the context's
/// scratch arenas — so one instance may serve many machines at once.
pub trait Router: Send + Sync {
    /// Which kind this router is.
    fn kind(&self) -> RouterKind;

    /// Routes one program gate: inserts whatever swaps make the
    /// gate's operands adjacent, using the machine, scratch, and
    /// lookahead window in `ctx`.
    ///
    /// # Errors
    ///
    /// [`RouteError::UnplacedQubit`] if an operand has no placement.
    fn route(&self, ctx: &mut RoutingCtx<'_>, gate: &Gate<VirtId>) -> Result<(), RouteError>;
}

// ---------------------------------------------------------------------------
// Greedy planning (position-pure: no machine mutation)
// ---------------------------------------------------------------------------
//
// Every greedy decision is a pure function of the gate's operand
// positions and the topology — never of occupancy or the clock. The
// planner exploits that: it walks *tracked* operand positions and
// records the swap chain, and the caller replays the chain through
// `swap_cells`. Serially this is bit-identical to the historical
// mutate-as-you-go code; it also makes plans computable on worker
// threads from an immutable machine snapshot (`plan_layer_gate`).

/// Tracked position of `v` (operands are distinct, so first match).
#[inline]
fn tpos(tracked: &[(VirtId, PhysId)], v: VirtId) -> PhysId {
    tracked
        .iter()
        .find(|&&(tv, _)| tv == v)
        .map(|&(_, p)| p)
        .expect("operand resolved")
}

/// Mirrors a `swap_cells(u, v)` on the tracked positions.
#[inline]
fn tswap(tracked: &mut [(VirtId, PhysId)], u: PhysId, v: PhysId) {
    for (_, p) in tracked.iter_mut() {
        if *p == u {
            *p = v;
        } else if *p == v {
            *p = u;
        }
    }
}

/// Resolves a gate's operands to `(virt, phys)` pairs, in the order
/// the historical router read them (so single-unplaced-operand errors
/// name the same qubit): `Ccx`/`Mcx` read the target first.
fn resolve_operands(
    m: &Machine,
    gate: &Gate<VirtId>,
    out: &mut Vec<(VirtId, PhysId)>,
) -> Result<(), RouteError> {
    out.clear();
    let mut push = |v: VirtId| -> Result<(), RouteError> {
        let p = m
            .placement()
            .phys_of(v)
            .ok_or(RouteError::UnplacedQubit { virt: v })?;
        out.push((v, p));
        Ok(())
    };
    match gate {
        Gate::X { target } => push(*target),
        Gate::Cx { control, target } => {
            push(*control)?;
            push(*target)
        }
        Gate::Swap { a, b } => {
            push(*a)?;
            push(*b)
        }
        Gate::Ccx { c0, c1, target } => {
            push(*target)?;
            push(*c0)?;
            push(*c1)
        }
        Gate::Mcx { controls, target } => {
            push(*target)?;
            for c in controls {
                push(*c)?;
            }
            Ok(())
        }
    }
}

/// Plans the historical greedy chain walk: `mover` hops along a
/// shortest path until coupled to `anchor` (the last hop — onto the
/// anchor's own cell — is never taken).
fn plan_chain(
    m: &Machine,
    tracked: &mut [(VirtId, PhysId)],
    swaps: &mut Vec<(PhysId, PhysId)>,
    mover: VirtId,
    anchor: VirtId,
) {
    let mut pm = tpos(tracked, mover);
    let pa = tpos(tracked, anchor);
    if pm == pa || m.coupled(pm, pa) {
        return;
    }
    loop {
        let hop = m.hop(pm, pa).expect("connected fabric");
        if hop == pa {
            break;
        }
        swaps.push((pm, hop));
        tswap(tracked, pm, hop);
        pm = hop;
    }
}

/// Plans the historical Toffoli gather: bring both controls adjacent
/// to the target, trying not to displace already-gathered operands.
/// Returns `(retries, gave_up)` for the caller's statistics.
// Two scratch arenas and three operands are the function's whole job;
// bundling them into a struct would only rename the argument list.
#[allow(clippy::too_many_arguments)]
fn plan_gather(
    m: &Machine,
    tracked: &mut [(VirtId, PhysId)],
    swaps: &mut Vec<(PhysId, PhysId)>,
    bfs: &mut BfsScratch,
    path: &mut Vec<PhysId>,
    c0: VirtId,
    c1: VirtId,
    t: VirtId,
) -> (u64, bool) {
    let mut retries = 0u64;
    for attempt in 0..4 {
        let pt = tpos(tracked, t);
        let p0 = tpos(tracked, c0);
        let p1 = tpos(tracked, c1);
        let ok0 = m.coupled(p0, pt);
        let ok1 = m.coupled(p1, pt);
        if ok0 && ok1 {
            return (retries, false);
        }
        if attempt > 0 {
            retries += 1;
        }
        if !ok0 {
            plan_chain(m, tracked, swaps, c0, t);
            continue;
        }
        // c0 is in place; bring c1 next to t without crossing c0/t.
        let found = bfs.bfs_to(
            m.topo(),
            p1,
            &mut |cell| m.coupled(cell, pt) && cell != p0,
            &[pt, p0],
            4096,
            path,
        );
        if found {
            for i in 0..path.len().saturating_sub(1) {
                let (a, b) = (path[i], path[i + 1]);
                swaps.push((a, b));
                tswap(tracked, a, b);
            }
        } else {
            // No avoiding route (e.g. a line topology cut); route
            // plainly and let the next attempt repair c0.
            plan_chain(m, tracked, swaps, c1, t);
        }
    }
    (retries, true)
}

/// Plans the full greedy treatment of one gate. Dispatch mirrors the
/// historical `route_gate` exactly.
fn plan_greedy(
    m: &Machine,
    gate: &Gate<VirtId>,
    tracked: &mut [(VirtId, PhysId)],
    swaps: &mut Vec<(PhysId, PhysId)>,
    bfs: &mut BfsScratch,
    path: &mut Vec<PhysId>,
) -> (u64, bool) {
    match gate {
        Gate::X { .. } => (0, false),
        Gate::Cx { control, target } => {
            plan_chain(m, tracked, swaps, *control, *target);
            (0, false)
        }
        Gate::Swap { a, b } => {
            plan_chain(m, tracked, swaps, *a, *b);
            (0, false)
        }
        Gate::Ccx { c0, c1, target } => {
            plan_gather(m, tracked, swaps, bfs, path, *c0, *c1, *target)
        }
        Gate::Mcx { controls, target } => {
            // Lowered programs never reach here with ≥ 3 controls;
            // handle small cases for completeness.
            match controls.len() {
                0 => (0, false),
                1 => {
                    plan_chain(m, tracked, swaps, controls[0], *target);
                    (0, false)
                }
                _ => {
                    let (retries, failed) = plan_gather(
                        m,
                        tracked,
                        swaps,
                        bfs,
                        path,
                        controls[0],
                        controls[1],
                        *target,
                    );
                    for c in &controls[2..] {
                        plan_chain(m, tracked, swaps, *c, *target);
                    }
                    (retries, failed)
                }
            }
        }
    }
}

/// A greedy swap chain planned off-thread for one layer gate, plus
/// the operand positions it assumed. [`Machine::apply_layer`] replays
/// it only if [`LayerPlan::still_valid`] — an earlier gate in the
/// layer may have moved an operand, in which case the gate re-routes
/// serially and the result stays bit-identical either way.
pub(crate) struct LayerPlan {
    /// Operand positions the plan was computed against.
    ops: Vec<(VirtId, PhysId)>,
    pub(crate) swaps: Vec<(PhysId, PhysId)>,
    pub(crate) retries: u64,
    pub(crate) failed: bool,
}

impl LayerPlan {
    /// True if every assumed operand position still holds.
    pub(crate) fn still_valid(&self, m: &Machine) -> bool {
        self.ops
            .iter()
            .all(|&(v, p)| m.placement().phys_of(v) == Some(p))
    }
}

/// Plans the greedy swap chain for one gate of a front layer against
/// an immutable machine snapshot. `None` for gates with nothing to
/// route (arity < 2) or an unplaced operand (the serial path will
/// surface the error in order).
pub(crate) fn plan_layer_gate(m: &Machine, gate: &Gate<VirtId>) -> Option<LayerPlan> {
    if gate.arity() < 2 {
        return None;
    }
    let mut tracked = Vec::new();
    resolve_operands(m, gate, &mut tracked).ok()?;
    let ops = tracked.clone();
    let mut swaps = Vec::new();
    let mut bfs = BfsScratch::default();
    let mut path = Vec::new();
    let (retries, failed) = plan_greedy(m, gate, &mut tracked, &mut swaps, &mut bfs, &mut path);
    Some(LayerPlan {
        ops,
        swaps,
        retries,
        failed,
    })
}

// ---------------------------------------------------------------------------
// GreedyRouter
// ---------------------------------------------------------------------------

/// The original per-gate shortest-path router. Stateless; swap
/// sequences are bit-identical to the pre-trait inlined code on every
/// topology.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyRouter;

impl Router for GreedyRouter {
    fn kind(&self) -> RouterKind {
        RouterKind::Greedy
    }

    fn route(&self, ctx: &mut RoutingCtx<'_>, gate: &Gate<VirtId>) -> Result<(), RouteError> {
        if gate.arity() < 2 {
            return Ok(());
        }
        let m = &mut *ctx.machine;
        let s = &mut *ctx.scratch;
        resolve_operands(m, gate, &mut s.tracked)?;
        s.swaps.clear();
        let (retries, failed) = {
            let RouterScratch {
                tracked,
                swaps,
                bfs,
                chain,
                ..
            } = &mut *s;
            plan_greedy(m, gate, tracked, swaps, bfs, chain)
        };
        for i in 0..s.swaps.len() {
            let (u, v) = s.swaps[i];
            m.swap_cells(u, v);
        }
        m.bump_gather(retries, failed);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// LookaheadRouter
// ---------------------------------------------------------------------------

/// Weight of the extended set (upcoming-gate window) relative to the
/// front gate in the swap score. SABRE's W.
const EXT_WEIGHT: f64 = 0.5;
/// Decay added to a cell each time a swap touches it while routing
/// one gate; discourages undoing a swap just made.
const DECAY_BUMP: f64 = 0.1;
/// Consecutive non-improving swaps tolerated before falling back to
/// the guaranteed-terminating greedy walk.
const STALL_LIMIT: u32 = 3;

/// SABRE-style lookahead router: scores candidate swaps on edges
/// incident to the current gate's operands against the front gate and
/// a decayed window of upcoming multi-qubit gates. Stateless — the
/// decay table and window pairs live in the machine's scratch.
#[derive(Debug, Default, Clone, Copy)]
pub struct LookaheadRouter;

fn la_reset_decay(s: &mut RouterScratch, n: usize) {
    if s.decay.len() != n {
        s.decay = vec![1.0; n];
        s.touched.clear();
        return;
    }
    for p in s.touched.drain(..) {
        s.decay[p.index()] = 1.0;
    }
}

fn la_bump_decay(s: &mut RouterScratch, p: PhysId) {
    if s.decay[p.index()] == 1.0 {
        s.touched.push(p);
    }
    s.decay[p.index()] += DECAY_BUMP;
}

fn la_collect_pairs(s: &mut RouterScratch, window: &[Gate<VirtId>]) {
    s.pairs.clear();
    for g in window {
        match g {
            Gate::X { .. } => {}
            Gate::Cx { control, target } => s.pairs.push((*control, *target)),
            Gate::Swap { a, b } => s.pairs.push((*a, *b)),
            Gate::Ccx { c0, c1, target } => {
                s.pairs.push((*c0, *target));
                s.pairs.push((*c1, *target));
            }
            Gate::Mcx { controls, target } => {
                for c in controls {
                    s.pairs.push((*c, *target));
                }
            }
        }
    }
}

/// Scores swapping cells `u`/`v`: front-pair distance after the
/// hypothetical swap, plus the decayed average over the window pairs.
/// Lower is better.
fn la_score_swap(
    m: &Machine,
    s: &RouterScratch,
    u: PhysId,
    v: PhysId,
    front: (PhysId, PhysId),
) -> f64 {
    let adj = |p: PhysId| {
        if p == u {
            v
        } else if p == v {
            u
        } else {
            p
        }
    };
    let d_front = m.distance(adj(front.0), adj(front.1)) as f64;
    let mut ext = 0.0;
    let mut ext_n = 0usize;
    for &(a, b) in &s.pairs {
        if let (Some(pa), Some(pb)) = (m.placement().phys_of(a), m.placement().phys_of(b)) {
            ext += m.distance(adj(pa), adj(pb)) as f64;
            ext_n += 1;
        }
    }
    let base = d_front
        + if ext_n > 0 {
            EXT_WEIGHT * ext / ext_n as f64
        } else {
            0.0
        };
    base * s.decay[u.index()].max(s.decay[v.index()])
}

/// Routes one virtual pair until coupled, one scored swap at a time.
/// Candidate swaps may never *increase* the front distance (streaming
/// window hints are too weak to justify detours — on low-degree
/// fabrics like heavy-hex they systematically mislead). With
/// `move_anchor` false only `a`'s side moves, which is how Toffoli
/// gathering keeps the target parked. Falls back to the greedy
/// next-hop walk after [`STALL_LIMIT`] consecutive
/// distance-preserving swaps, which guarantees termination. The front
/// distance is carried incrementally: the winning candidate's exact
/// post-swap distance seeds the next iteration's baseline.
fn la_route_pair(
    m: &mut Machine,
    s: &mut RouterScratch,
    a: VirtId,
    b: VirtId,
    move_anchor: bool,
) -> Result<(), RouteError> {
    let mut pa = m
        .placement()
        .phys_of(a)
        .ok_or(RouteError::UnplacedQubit { virt: a })?;
    let mut pb = m
        .placement()
        .phys_of(b)
        .ok_or(RouteError::UnplacedQubit { virt: b })?;
    la_reset_decay(s, m.qubit_count());
    let mut stall = 0u32;
    let mut dist = m.distance(pa, pb);
    loop {
        if pa == pb || dist == 1 {
            return Ok(());
        }
        let before = dist;
        // Candidate swaps: every edge incident to a movable endpoint
        // that keeps the front distance from growing.
        let ends_buf = [pa, pb];
        let ends: &[PhysId] = if move_anchor {
            &ends_buf
        } else {
            &ends_buf[..1]
        };
        let mut best: Option<(f64, PhysId, PhysId, u32)> = None;
        {
            let mm: &Machine = m;
            let sc: &RouterScratch = s;
            for &end in ends {
                mm.topo().for_each_neighbor(end, &mut |nb| {
                    let adj = |p: PhysId| {
                        if p == end {
                            nb
                        } else if p == nb {
                            end
                        } else {
                            p
                        }
                    };
                    let after = mm.distance(adj(pa), adj(pb));
                    if after > before {
                        return;
                    }
                    let score = la_score_swap(mm, sc, end, nb, (pa, pb));
                    if best.is_none_or(|(bs, be, bn, _)| (score, end.0, nb.0) < (bs, be.0, bn.0)) {
                        best = Some((score, end, nb, after));
                    }
                });
            }
        }
        let Some((_, u, v, after)) = best else {
            // No distance-preserving edge at all (cannot happen on a
            // connected fabric, where the next hop qualifies) — walk
            // the guaranteed-progress chain.
            return la_greedy_walk(m, a, b);
        };
        m.swap_cells(u, v);
        la_bump_decay(s, u);
        la_bump_decay(s, v);
        pa = m.placement().phys_of(a).expect("still placed");
        pb = m.placement().phys_of(b).expect("still placed");
        dist = after;
        if after >= before {
            stall += 1;
            if stall >= STALL_LIMIT {
                return la_greedy_walk(m, a, b);
            }
        } else {
            stall = 0;
        }
    }
}

/// Deterministic escape hatch: walk `a` toward `b` along cached next
/// hops (each swap shrinks the distance by one, so this always
/// terminates).
fn la_greedy_walk(m: &mut Machine, a: VirtId, b: VirtId) -> Result<(), RouteError> {
    let mut pa = m
        .placement()
        .phys_of(a)
        .ok_or(RouteError::UnplacedQubit { virt: a })?;
    let mut pb = m
        .placement()
        .phys_of(b)
        .ok_or(RouteError::UnplacedQubit { virt: b })?;
    while pa != pb && !m.coupled(pa, pb) {
        let hop = m.hop(pa, pb).expect("connected fabric");
        m.swap_cells(pa, hop);
        pa = hop;
        pb = m.placement().phys_of(b).expect("still placed");
    }
    Ok(())
}

/// Moves `mover` along cached next hops until coupled to `anchor` —
/// the historical greedy chain walk, applied live (the lookahead
/// gatherer's last-resort fallback).
fn route_adjacent_live(m: &mut Machine, mover: VirtId, anchor: VirtId) -> Result<(), RouteError> {
    let mut pm = m
        .placement()
        .phys_of(mover)
        .ok_or(RouteError::UnplacedQubit { virt: mover })?;
    let pa = m
        .placement()
        .phys_of(anchor)
        .ok_or(RouteError::UnplacedQubit { virt: anchor })?;
    if pm == pa || m.coupled(pm, pa) {
        return Ok(());
    }
    loop {
        let hop = m.hop(pm, pa).expect("connected fabric");
        if hop == pa {
            break;
        }
        m.swap_cells(pm, hop);
        pm = hop;
    }
    Ok(())
}

/// Gathers a Toffoli: lookahead-routes `c0` to the target, then
/// steers `c1` to the cheapest free neighbour of the target along
/// cached next hops, side-stepping the cells holding `t`/`c0`.
fn la_gather(
    m: &mut Machine,
    s: &mut RouterScratch,
    c0: VirtId,
    c1: VirtId,
    t: VirtId,
) -> Result<(), RouteError> {
    for attempt in 0..4 {
        let pt = m
            .placement()
            .phys_of(t)
            .ok_or(RouteError::UnplacedQubit { virt: t })?;
        let p0 = m
            .placement()
            .phys_of(c0)
            .ok_or(RouteError::UnplacedQubit { virt: c0 })?;
        let p1 = m
            .placement()
            .phys_of(c1)
            .ok_or(RouteError::UnplacedQubit { virt: c1 })?;
        let ok0 = m.coupled(p0, pt);
        let ok1 = m.coupled(p1, pt);
        if ok0 && ok1 {
            return Ok(());
        }
        if attempt > 0 {
            m.note_gather_retry();
        }
        if !ok0 {
            la_route_pair(m, s, c0, t, true)?;
            continue;
        }
        // c0 is in place: pick the goal cell for c1 — the
        // target-adjacent cell nearest c1 that is not c0's — and walk
        // next hops toward it, side-stepping t/c0.
        let mut goal_key: Option<(u32, u32)> = None;
        {
            let mm: &Machine = m;
            mm.topo().for_each_neighbor(pt, &mut |nb| {
                if nb == p0 {
                    return;
                }
                let key = (mm.distance(p1, nb), nb.0);
                if goal_key.is_none_or(|g| key < g) {
                    goal_key = Some(key);
                }
            });
        }
        let Some((_, goal)) = goal_key else {
            // Degree-1 target (line end): plain routing, and let the
            // next attempt repair whatever it displaced.
            la_route_pair(m, s, c1, t, false)?;
            continue;
        };
        let goal = PhysId(goal);
        // Walk cached next hops toward the goal while the path is
        // clean; each hop strictly shrinks the table distance, so the
        // walk terminates. Detouring *around* a blocked cell hop by
        // hop loses badly on low-degree fabrics (it circles hexagon
        // faces), so the moment the path runs into t/c0 we hand the
        // remainder to the greedy bounded BFS instead.
        let mut cur = p1;
        while cur != goal {
            let hop = m.hop(cur, goal).expect("connected fabric");
            if hop == pt || hop == p0 {
                break;
            }
            m.swap_cells(cur, hop);
            cur = hop;
        }
        if cur != goal {
            let found = {
                let RouterScratch { bfs, chain, .. } = &mut *s;
                let mm: &Machine = m;
                bfs.bfs_to(
                    mm.topo(),
                    cur,
                    &mut |cell| mm.coupled(cell, pt) && cell != p0,
                    &[pt, p0],
                    4096,
                    chain,
                )
            };
            if found {
                for i in 0..s.chain.len().saturating_sub(1) {
                    let (x, y) = (s.chain[i], s.chain[i + 1]);
                    m.swap_cells(x, y);
                }
            } else {
                route_adjacent_live(m, c1, t)?;
            }
        }
    }
    m.note_gather_failure();
    Ok(())
}

impl Router for LookaheadRouter {
    fn kind(&self) -> RouterKind {
        RouterKind::Lookahead
    }

    fn route(&self, ctx: &mut RoutingCtx<'_>, gate: &Gate<VirtId>) -> Result<(), RouteError> {
        if gate.arity() < 2 {
            return Ok(()); // nothing to route; don't touch the window
        }
        let m = &mut *ctx.machine;
        let s = &mut *ctx.scratch;
        la_collect_pairs(s, ctx.window);
        match gate {
            Gate::X { .. } => Ok(()),
            Gate::Cx { control, target } => la_route_pair(m, s, *control, *target, true),
            Gate::Swap { a, b } => la_route_pair(m, s, *a, *b, true),
            Gate::Ccx { c0, c1, target } => la_gather(m, s, *c0, *c1, *target),
            Gate::Mcx { controls, target } => match controls.len() {
                0 => Ok(()),
                1 => la_route_pair(m, s, controls[0], *target, true),
                _ => {
                    la_gather(m, s, controls[0], controls[1], *target)?;
                    for c in &controls[2..] {
                        la_route_pair(m, s, *c, *target, false)?;
                    }
                    Ok(())
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use square_arch::{GridTopology, LineTopology, RingTopology};

    fn machine(topo: Box<dyn square_arch::Topology>, router: RouterKind) -> Machine {
        Machine::new(topo, MachineConfig::nisq().with_router(router))
    }

    #[test]
    fn router_kind_parses_and_round_trips() {
        for kind in RouterKind::ALL {
            assert_eq!(RouterKind::parse(kind.cli_name()), Some(kind));
            assert_eq!(
                RouterKind::parse(&kind.cli_name().to_uppercase()),
                Some(kind)
            );
            assert_eq!(kind.instance().kind(), kind, "shared instance kind");
        }
        assert_eq!(RouterKind::parse("sabre"), Some(RouterKind::Lookahead));
        assert_eq!(RouterKind::parse("nope"), None);
        assert!(RouterKind::Lookahead.wants_lookahead());
        assert!(!RouterKind::Greedy.wants_lookahead());
    }

    #[test]
    fn both_routers_make_distant_cnot_operands_adjacent() {
        for kind in RouterKind::ALL {
            let mut m = machine(Box::new(GridTopology::new(6, 6)), kind);
            m.place_at(VirtId(0), PhysId(0)).unwrap();
            m.place_at(VirtId(1), PhysId(35)).unwrap();
            m.apply(&Gate::Cx {
                control: VirtId(0),
                target: VirtId(1),
            })
            .unwrap();
            let p0 = m.placement().phys_of(VirtId(0)).unwrap();
            let p1 = m.placement().phys_of(VirtId(1)).unwrap();
            assert!(m.topo().are_coupled(p0, p1), "{kind}: not adjacent");
            assert!(m.stats().swaps > 0, "{kind}: distance 10 needs swaps");
        }
    }

    #[test]
    fn both_routers_gather_toffolis_on_a_ring() {
        for kind in RouterKind::ALL {
            let mut m = machine(Box::new(RingTopology::new(12)), kind);
            m.place_at(VirtId(0), PhysId(0)).unwrap();
            m.place_at(VirtId(1), PhysId(6)).unwrap();
            m.place_at(VirtId(2), PhysId(3)).unwrap();
            m.apply(&Gate::Ccx {
                c0: VirtId(0),
                c1: VirtId(1),
                target: VirtId(2),
            })
            .unwrap();
            let pt = m.placement().phys_of(VirtId(2)).unwrap();
            for v in [VirtId(0), VirtId(1)] {
                let p = m.placement().phys_of(v).unwrap();
                assert!(m.topo().are_coupled(p, pt), "{kind}: {v} not gathered");
            }
            assert_eq!(m.stats().gather_failures, 0, "{kind}");
        }
    }

    #[test]
    fn lookahead_window_steers_toward_upcoming_gates() {
        // Front: (0 ↔ 2) on a line, with 1 sitting between them at
        // cell 2. Upcoming window says qubit 0 next talks to qubit 3
        // at cell 4 — the scored route moves 0 rightward (toward both
        // goals) rather than dragging 2 leftward.
        let mut m = machine(Box::new(LineTopology::new(6)), RouterKind::Lookahead);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(2)).unwrap();
        m.place_at(VirtId(2), PhysId(3)).unwrap();
        m.place_at(VirtId(3), PhysId(5)).unwrap();
        m.lookahead_mut().push(Gate::Cx {
            control: VirtId(0),
            target: VirtId(3),
        });
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(2),
        })
        .unwrap();
        let p0 = m.placement().phys_of(VirtId(0)).unwrap();
        let p2 = m.placement().phys_of(VirtId(2)).unwrap();
        assert!(m.topo().are_coupled(p0, p2));
        assert!(
            p0 > PhysId(0),
            "qubit 0 moved toward the window's future partner"
        );
    }

    #[test]
    fn greedy_router_swap_chain_matches_historical_behaviour() {
        // The exact scenario of the historical machine test: distance
        // 4 on a 5×1 line → 3 swaps, control parked next to target.
        let mut m = machine(Box::new(GridTopology::new(5, 1)), RouterKind::Greedy);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(4)).unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        assert_eq!(m.stats().swaps, 3);
        assert_eq!(m.placement().phys_of(VirtId(0)), Some(PhysId(3)));
    }

    #[test]
    fn layer_plans_replay_and_invalidate() {
        let m = machine(Box::new(GridTopology::new(5, 1)), RouterKind::Greedy);
        let gate = Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        };
        // Unplaced operands: planning declines, serial path errors.
        assert!(plan_layer_gate(&m, &gate).is_none());
        let mut m = machine(Box::new(GridTopology::new(5, 1)), RouterKind::Greedy);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(4)).unwrap();
        assert!(plan_layer_gate(&m, &Gate::X { target: VirtId(0) }).is_none());
        let plan = plan_layer_gate(&m, &gate).expect("plannable");
        assert_eq!(
            plan.swaps,
            vec![
                (PhysId(0), PhysId(1)),
                (PhysId(1), PhysId(2)),
                (PhysId(2), PhysId(3))
            ]
        );
        assert!(plan.still_valid(&m));
        assert!(!plan.failed);
        // An interfering move invalidates the plan.
        m.swap_cells(PhysId(0), PhysId(1));
        assert!(!plan.still_valid(&m));
    }
}

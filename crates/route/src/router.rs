//! Pluggable swap-chain routers.
//!
//! Routing — deciding which SWAP chains bring a gate's operands into
//! coupled positions — was historically inlined in [`Machine`]. It is
//! now behind the [`Router`] trait with two implementations:
//!
//! * [`GreedyRouter`]: the original per-gate shortest-path swapper,
//!   kept *bit-compatible* with the inlined code (same shortest-path
//!   walks, same bounded-BFS operand gathering, same swap order) — the
//!   correctness anchor every regression suite pins against.
//! * [`LookaheadRouter`]: a SABRE-style scorer (Li, Ding & Xie,
//!   ASPLOS 2019). Each candidate swap on an edge incident to the
//!   current gate's operands is scored against the *front* (the gate
//!   being routed) plus an *extended set* — a sliding window of
//!   upcoming multi-qubit gates supplied by the compile-time executor
//!   — with a decay factor penalizing cells swapped moments ago (the
//!   anti-ping-pong term). Distances come from the topology's O(1)
//!   closed forms or the [`CouplingGraph`](square_arch::CouplingGraph)
//!   next-hop/distance tables, never from a per-gate BFS allocation.
//!
//! Routers only *move* qubits (via [`Machine::swap_cells`]); gate
//! scheduling, statistics, and liveness stay in the machine. Braided
//! (FT) communication does not route through swap chains and is
//! unaffected by the router choice.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use square_qir::{Gate, VirtId};

use square_arch::PhysId;

use crate::error::RouteError;
use crate::machine::Machine;

/// Which swap-chain router a machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterKind {
    /// Per-gate shortest-path swapper (the historical router).
    Greedy,
    /// SABRE-style lookahead scorer over a window of upcoming gates.
    Lookahead,
}

impl RouterKind {
    /// Both routers, greedy first.
    pub const ALL: [RouterKind; 2] = [RouterKind::Greedy, RouterKind::Lookahead];

    /// Parses a CLI-style router name, case-insensitively: `greedy`,
    /// `lookahead` (alias `sabre`).
    pub fn parse(name: &str) -> Option<RouterKind> {
        match name.to_ascii_lowercase().as_str() {
            "greedy" => Some(RouterKind::Greedy),
            "lookahead" | "sabre" => Some(RouterKind::Lookahead),
            _ => None,
        }
    }

    /// The CLI name accepted back by [`RouterKind::parse`].
    pub fn cli_name(&self) -> &'static str {
        match self {
            RouterKind::Greedy => "greedy",
            RouterKind::Lookahead => "lookahead",
        }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            RouterKind::Greedy => "GREEDY",
            RouterKind::Lookahead => "LOOKAHEAD",
        }
    }

    /// True if this router consumes the executor's lookahead window
    /// (callers skip building the window otherwise).
    pub fn wants_lookahead(&self) -> bool {
        matches!(self, RouterKind::Lookahead)
    }

    /// Instantiates the router.
    pub fn build(&self) -> Box<dyn Router> {
        match self {
            RouterKind::Greedy => Box::new(GreedyRouter),
            RouterKind::Lookahead => Box::new(LookaheadRouter::new()),
        }
    }
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A swap-chain routing strategy.
///
/// `route_gate` must leave every multi-qubit operand pair the gate
/// needs coupled (or give up the way the greedy gatherer does, which
/// the machine records as a gather failure); it moves qubits
/// exclusively through [`Machine::swap_cells`], which keeps placement,
/// liveness, relocation, and history bookkeeping consistent.
pub trait Router: Send {
    /// Which kind this router is.
    fn kind(&self) -> RouterKind;

    /// Routes one program gate: inserts whatever swaps make the
    /// gate's operands adjacent. `window` is the upcoming-gate hint
    /// stream (empty unless the executor knows the router wants it).
    ///
    /// # Errors
    ///
    /// [`RouteError::UnplacedQubit`] if an operand has no placement.
    fn route_gate(
        &mut self,
        machine: &mut Machine,
        gate: &Gate<VirtId>,
        window: &[Gate<VirtId>],
    ) -> Result<(), RouteError>;
}

// ---------------------------------------------------------------------------
// Shared primitives (the historical Machine routines, verbatim)
// ---------------------------------------------------------------------------

/// Moves `mover` along a shortest path until coupled to `anchor` —
/// the historical greedy chain walk, hop for hop.
fn route_adjacent(m: &mut Machine, mover: VirtId, anchor: VirtId) -> Result<(), RouteError> {
    let pm = m
        .phys_of(mover)
        .ok_or(RouteError::UnplacedQubit { virt: mover })?;
    let pa = m
        .phys_of(anchor)
        .ok_or(RouteError::UnplacedQubit { virt: anchor })?;
    if m.topo().are_coupled(pm, pa) || pm == pa {
        return Ok(());
    }
    let path = m.topo().shortest_path(pm, pa);
    for i in 0..path.len().saturating_sub(2) {
        m.swap_cells(path[i], path[i + 1]);
    }
    Ok(())
}

/// Bounded BFS from `from` to any cell satisfying `goal`, avoiding
/// `blocked` cells. Returns the path inclusive of both ends.
fn bfs_to(
    m: &Machine,
    from: PhysId,
    goal: impl Fn(PhysId) -> bool,
    blocked: &[PhysId],
    max_visits: usize,
) -> Option<Vec<PhysId>> {
    if goal(from) {
        return Some(vec![from]);
    }
    let mut prev: HashMap<PhysId, PhysId> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    prev.insert(from, from);
    let mut visits = 0usize;
    while let Some(cur) = queue.pop_front() {
        visits += 1;
        if visits > max_visits {
            return None;
        }
        for nb in m.topo().neighbors(cur) {
            if prev.contains_key(&nb) || blocked.contains(&nb) {
                continue;
            }
            prev.insert(nb, cur);
            if goal(nb) {
                let mut path = vec![nb];
                let mut c = nb;
                while c != from {
                    c = prev[&c];
                    path.push(c);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(nb);
        }
    }
    None
}

/// Brings both controls adjacent to the target for a Toffoli, trying
/// not to displace already-gathered operands (historical logic).
fn gather_three(m: &mut Machine, c0: VirtId, c1: VirtId, t: VirtId) -> Result<(), RouteError> {
    for attempt in 0..4 {
        let pt = m.phys_of(t).ok_or(RouteError::UnplacedQubit { virt: t })?;
        let p0 = m
            .phys_of(c0)
            .ok_or(RouteError::UnplacedQubit { virt: c0 })?;
        let p1 = m
            .phys_of(c1)
            .ok_or(RouteError::UnplacedQubit { virt: c1 })?;
        let ok0 = m.topo().are_coupled(p0, pt);
        let ok1 = m.topo().are_coupled(p1, pt);
        if ok0 && ok1 {
            return Ok(());
        }
        if attempt > 0 {
            m.note_gather_retry();
        }
        if !ok0 {
            route_adjacent(m, c0, t)?;
            continue;
        }
        // c0 is in place; bring c1 next to t without crossing c0/t.
        let blocked = [pt, p0];
        let goal = |cell: PhysId| m.topo().are_coupled(cell, pt) && cell != p0;
        if let Some(path) = bfs_to(m, p1, goal, &blocked, 4096) {
            for i in 0..path.len().saturating_sub(1) {
                m.swap_cells(path[i], path[i + 1]);
            }
        } else {
            // No avoiding route (e.g. a line topology cut); route
            // plainly and let the next attempt repair c0.
            route_adjacent(m, c1, t)?;
        }
    }
    m.note_gather_failure();
    Ok(())
}

// ---------------------------------------------------------------------------
// GreedyRouter
// ---------------------------------------------------------------------------

/// The original per-gate shortest-path router. Stateless; swap
/// sequences are bit-identical to the pre-trait inlined code on every
/// topology.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyRouter;

impl Router for GreedyRouter {
    fn kind(&self) -> RouterKind {
        RouterKind::Greedy
    }

    fn route_gate(
        &mut self,
        m: &mut Machine,
        gate: &Gate<VirtId>,
        _window: &[Gate<VirtId>],
    ) -> Result<(), RouteError> {
        match gate {
            Gate::X { .. } => Ok(()),
            Gate::Cx { control, target } => route_adjacent(m, *control, *target),
            Gate::Swap { a, b } => route_adjacent(m, *a, *b),
            Gate::Ccx { c0, c1, target } => gather_three(m, *c0, *c1, *target),
            Gate::Mcx { controls, target } => {
                // Lowered programs never reach here with ≥ 3 controls;
                // handle small cases for completeness.
                match controls.len() {
                    0 => Ok(()),
                    1 => route_adjacent(m, controls[0], *target),
                    _ => {
                        gather_three(m, controls[0], controls[1], *target)?;
                        for c in &controls[2..] {
                            route_adjacent(m, *c, *target)?;
                        }
                        Ok(())
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// LookaheadRouter
// ---------------------------------------------------------------------------

/// Weight of the extended set (upcoming-gate window) relative to the
/// front gate in the swap score. SABRE's W.
const EXT_WEIGHT: f64 = 0.5;
/// Decay added to a cell each time a swap touches it while routing
/// one gate; discourages undoing a swap just made.
const DECAY_BUMP: f64 = 0.1;
/// Consecutive non-improving swaps tolerated before falling back to
/// the guaranteed-terminating greedy walk.
const STALL_LIMIT: u32 = 3;

/// SABRE-style lookahead router: scores candidate swaps on edges
/// incident to the current gate's operands against the front gate and
/// a decayed window of upcoming multi-qubit gates.
#[derive(Debug, Default)]
pub struct LookaheadRouter {
    /// Per-cell decay factors (≥ 1.0); reset between gates via
    /// `touched`, so the cost stays proportional to swaps inserted.
    decay: Vec<f64>,
    /// Cells whose decay is currently above 1.0.
    touched: Vec<PhysId>,
    /// Virtual operand pairs of the window gates, refreshed per gate.
    pairs: Vec<(VirtId, VirtId)>,
}

impl LookaheadRouter {
    /// A fresh router with an empty window.
    pub fn new() -> Self {
        LookaheadRouter::default()
    }

    fn reset_decay(&mut self, n: usize) {
        if self.decay.len() != n {
            self.decay = vec![1.0; n];
            self.touched.clear();
            return;
        }
        for p in self.touched.drain(..) {
            self.decay[p.index()] = 1.0;
        }
    }

    fn bump_decay(&mut self, p: PhysId) {
        if self.decay[p.index()] == 1.0 {
            self.touched.push(p);
        }
        self.decay[p.index()] += DECAY_BUMP;
    }

    fn collect_pairs(&mut self, window: &[Gate<VirtId>]) {
        self.pairs.clear();
        for g in window {
            match g {
                Gate::X { .. } => {}
                Gate::Cx { control, target } => self.pairs.push((*control, *target)),
                Gate::Swap { a, b } => self.pairs.push((*a, *b)),
                Gate::Ccx { c0, c1, target } => {
                    self.pairs.push((*c0, *target));
                    self.pairs.push((*c1, *target));
                }
                Gate::Mcx { controls, target } => {
                    for c in controls {
                        self.pairs.push((*c, *target));
                    }
                }
            }
        }
    }

    /// Scores swapping cells `u`/`v`: front-pair distance after the
    /// hypothetical swap, plus the decayed average over the window
    /// pairs. Lower is better.
    fn score_swap(&self, m: &Machine, u: PhysId, v: PhysId, front: (PhysId, PhysId)) -> f64 {
        let adj = |p: PhysId| {
            if p == u {
                v
            } else if p == v {
                u
            } else {
                p
            }
        };
        let topo = m.topo();
        let d_front = topo.distance(adj(front.0), adj(front.1)) as f64;
        let mut ext = 0.0;
        let mut ext_n = 0usize;
        for &(a, b) in &self.pairs {
            if let (Some(pa), Some(pb)) = (m.phys_of(a), m.phys_of(b)) {
                ext += topo.distance(adj(pa), adj(pb)) as f64;
                ext_n += 1;
            }
        }
        let base = d_front
            + if ext_n > 0 {
                EXT_WEIGHT * ext / ext_n as f64
            } else {
                0.0
            };
        base * self.decay[u.index()].max(self.decay[v.index()])
    }

    /// Routes one virtual pair until coupled, one scored swap at a
    /// time. Candidate swaps may never *increase* the front distance
    /// (streaming window hints are too weak to justify detours — on
    /// low-degree fabrics like heavy-hex they systematically
    /// mislead). With `move_anchor` false only `a`'s side moves,
    /// which is how Toffoli gathering keeps the target parked. Falls
    /// back to the greedy next-hop walk after [`STALL_LIMIT`]
    /// consecutive distance-preserving swaps, which guarantees
    /// termination.
    fn route_pair(
        &mut self,
        m: &mut Machine,
        a: VirtId,
        b: VirtId,
        move_anchor: bool,
    ) -> Result<(), RouteError> {
        let mut pa = m.phys_of(a).ok_or(RouteError::UnplacedQubit { virt: a })?;
        let mut pb = m.phys_of(b).ok_or(RouteError::UnplacedQubit { virt: b })?;
        self.reset_decay(m.qubit_count());
        let mut stall = 0u32;
        loop {
            if pa == pb || m.topo().are_coupled(pa, pb) {
                return Ok(());
            }
            let before = m.topo().distance(pa, pb);
            // Candidate swaps: every edge incident to a movable
            // endpoint that keeps the front distance from growing.
            let ends: &[PhysId] = if move_anchor { &[pa, pb] } else { &[pa] };
            let mut best: Option<(f64, PhysId, PhysId)> = None;
            for &end in ends {
                for nb in m.topo().neighbors(end) {
                    let adj = |p: PhysId| {
                        if p == end {
                            nb
                        } else if p == nb {
                            end
                        } else {
                            p
                        }
                    };
                    if m.topo().distance(adj(pa), adj(pb)) > before {
                        continue;
                    }
                    let s = self.score_swap(m, end, nb, (pa, pb));
                    if best.is_none_or(|(bs, be, bn)| (s, end.0, nb.0) < (bs, be.0, bn.0)) {
                        best = Some((s, end, nb));
                    }
                }
            }
            let Some((_, u, v)) = best else {
                // No distance-preserving edge at all (cannot happen on
                // a connected fabric, where the next hop qualifies) —
                // walk the guaranteed-progress chain.
                self.greedy_walk(m, a, b)?;
                return Ok(());
            };
            m.swap_cells(u, v);
            self.bump_decay(u);
            self.bump_decay(v);
            pa = m.phys_of(a).expect("still placed");
            pb = m.phys_of(b).expect("still placed");
            if m.topo().distance(pa, pb) >= before {
                stall += 1;
                if stall >= STALL_LIMIT {
                    self.greedy_walk(m, a, b)?;
                    return Ok(());
                }
            } else {
                stall = 0;
            }
        }
    }

    /// Deterministic escape hatch: walk `a` toward `b` along cached
    /// next hops (each swap shrinks the distance by one, so this
    /// always terminates).
    fn greedy_walk(&mut self, m: &mut Machine, a: VirtId, b: VirtId) -> Result<(), RouteError> {
        let mut pa = m.phys_of(a).ok_or(RouteError::UnplacedQubit { virt: a })?;
        let mut pb = m.phys_of(b).ok_or(RouteError::UnplacedQubit { virt: b })?;
        while pa != pb && !m.topo().are_coupled(pa, pb) {
            let hop = m.topo().next_hop(pa, pb).expect("connected fabric");
            m.swap_cells(pa, hop);
            pa = hop;
            pb = m.phys_of(b).expect("still placed");
        }
        Ok(())
    }

    /// Gathers a Toffoli: lookahead-routes `c0` to the target, then
    /// steers `c1` to the cheapest free neighbour of the target along
    /// cached next hops, side-stepping the cells holding `t`/`c0`.
    fn gather(
        &mut self,
        m: &mut Machine,
        c0: VirtId,
        c1: VirtId,
        t: VirtId,
    ) -> Result<(), RouteError> {
        for attempt in 0..4 {
            let pt = m.phys_of(t).ok_or(RouteError::UnplacedQubit { virt: t })?;
            let p0 = m
                .phys_of(c0)
                .ok_or(RouteError::UnplacedQubit { virt: c0 })?;
            let p1 = m
                .phys_of(c1)
                .ok_or(RouteError::UnplacedQubit { virt: c1 })?;
            let ok0 = m.topo().are_coupled(p0, pt);
            let ok1 = m.topo().are_coupled(p1, pt);
            if ok0 && ok1 {
                return Ok(());
            }
            if attempt > 0 {
                m.note_gather_retry();
            }
            if !ok0 {
                self.route_pair(m, c0, t, true)?;
                continue;
            }
            // c0 is in place: pick the goal cell for c1 — the
            // target-adjacent cell nearest c1 that is not c0's —
            // and walk next hops toward it, side-stepping t/c0.
            let goal = m
                .topo()
                .neighbors(pt)
                .into_iter()
                .filter(|&nb| nb != p0)
                .min_by_key(|&nb| (m.topo().distance(p1, nb), nb.0));
            let Some(goal) = goal else {
                // Degree-1 target (line end): plain routing, and let
                // the next attempt repair whatever it displaced.
                self.route_pair(m, c1, t, false)?;
                continue;
            };
            // Walk cached next hops toward the goal while the path is
            // clean; each hop strictly shrinks the table distance, so
            // the walk terminates. Detouring *around* a blocked cell
            // hop by hop loses badly on low-degree fabrics (it circles
            // hexagon faces), so the moment the path runs into t/c0 we
            // hand the remainder to the greedy bounded BFS instead.
            let mut cur = p1;
            while cur != goal {
                let hop = m.topo().next_hop(cur, goal).expect("connected fabric");
                if hop == pt || hop == p0 {
                    break;
                }
                m.swap_cells(cur, hop);
                cur = hop;
            }
            if cur != goal {
                let blocked = [pt, p0];
                let bfs_goal = |cell: PhysId| m.topo().are_coupled(cell, pt) && cell != p0;
                if let Some(path) = bfs_to(m, cur, bfs_goal, &blocked, 4096) {
                    for i in 0..path.len().saturating_sub(1) {
                        m.swap_cells(path[i], path[i + 1]);
                    }
                } else {
                    route_adjacent(m, c1, t)?;
                }
            }
        }
        m.note_gather_failure();
        Ok(())
    }
}

impl Router for LookaheadRouter {
    fn kind(&self) -> RouterKind {
        RouterKind::Lookahead
    }

    fn route_gate(
        &mut self,
        m: &mut Machine,
        gate: &Gate<VirtId>,
        window: &[Gate<VirtId>],
    ) -> Result<(), RouteError> {
        if gate.arity() < 2 {
            return Ok(()); // nothing to route; don't touch the window
        }
        self.collect_pairs(window);
        match gate {
            Gate::X { .. } => Ok(()),
            Gate::Cx { control, target } => self.route_pair(m, *control, *target, true),
            Gate::Swap { a, b } => self.route_pair(m, *a, *b, true),
            Gate::Ccx { c0, c1, target } => self.gather(m, *c0, *c1, *target),
            Gate::Mcx { controls, target } => match controls.len() {
                0 => Ok(()),
                1 => self.route_pair(m, controls[0], *target, true),
                _ => {
                    self.gather(m, controls[0], controls[1], *target)?;
                    for c in &controls[2..] {
                        self.route_pair(m, *c, *target, false)?;
                    }
                    Ok(())
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use square_arch::{GridTopology, LineTopology, RingTopology};

    fn machine(topo: Box<dyn square_arch::Topology>, router: RouterKind) -> Machine {
        Machine::new(topo, MachineConfig::nisq().with_router(router))
    }

    #[test]
    fn router_kind_parses_and_round_trips() {
        for kind in RouterKind::ALL {
            assert_eq!(RouterKind::parse(kind.cli_name()), Some(kind));
            assert_eq!(
                RouterKind::parse(&kind.cli_name().to_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(RouterKind::parse("sabre"), Some(RouterKind::Lookahead));
        assert_eq!(RouterKind::parse("nope"), None);
        assert!(RouterKind::Lookahead.wants_lookahead());
        assert!(!RouterKind::Greedy.wants_lookahead());
    }

    #[test]
    fn both_routers_make_distant_cnot_operands_adjacent() {
        for kind in RouterKind::ALL {
            let mut m = machine(Box::new(GridTopology::new(6, 6)), kind);
            m.place_at(VirtId(0), PhysId(0)).unwrap();
            m.place_at(VirtId(1), PhysId(35)).unwrap();
            m.apply(&Gate::Cx {
                control: VirtId(0),
                target: VirtId(1),
            })
            .unwrap();
            let p0 = m.phys_of(VirtId(0)).unwrap();
            let p1 = m.phys_of(VirtId(1)).unwrap();
            assert!(m.topo().are_coupled(p0, p1), "{kind}: not adjacent");
            assert!(m.stats().swaps > 0, "{kind}: distance 10 needs swaps");
        }
    }

    #[test]
    fn both_routers_gather_toffolis_on_a_ring() {
        for kind in RouterKind::ALL {
            let mut m = machine(Box::new(RingTopology::new(12)), kind);
            m.place_at(VirtId(0), PhysId(0)).unwrap();
            m.place_at(VirtId(1), PhysId(6)).unwrap();
            m.place_at(VirtId(2), PhysId(3)).unwrap();
            m.apply(&Gate::Ccx {
                c0: VirtId(0),
                c1: VirtId(1),
                target: VirtId(2),
            })
            .unwrap();
            let pt = m.phys_of(VirtId(2)).unwrap();
            for v in [VirtId(0), VirtId(1)] {
                let p = m.phys_of(v).unwrap();
                assert!(m.topo().are_coupled(p, pt), "{kind}: {v} not gathered");
            }
            assert_eq!(m.stats().gather_failures, 0, "{kind}");
        }
    }

    #[test]
    fn lookahead_window_steers_toward_upcoming_gates() {
        // Front: (0 ↔ 2) on a line, with 1 sitting between them at
        // cell 2. Upcoming window says qubit 0 next talks to qubit 3
        // at cell 4 — the scored route moves 0 rightward (toward both
        // goals) rather than dragging 2 leftward.
        let mut m = machine(Box::new(LineTopology::new(6)), RouterKind::Lookahead);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(2)).unwrap();
        m.place_at(VirtId(2), PhysId(3)).unwrap();
        m.place_at(VirtId(3), PhysId(5)).unwrap();
        m.lookahead_mut().push(Gate::Cx {
            control: VirtId(0),
            target: VirtId(3),
        });
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(2),
        })
        .unwrap();
        let p0 = m.phys_of(VirtId(0)).unwrap();
        let p2 = m.phys_of(VirtId(2)).unwrap();
        assert!(m.topo().are_coupled(p0, p2));
        assert!(
            p0 > PhysId(0),
            "qubit 0 moved toward the window's future partner"
        );
    }

    #[test]
    fn greedy_router_swap_chain_matches_historical_behaviour() {
        // The exact scenario of the historical machine test: distance
        // 4 on a 5×1 line → 3 swaps, control parked next to target.
        let mut m = machine(Box::new(GridTopology::new(5, 1)), RouterKind::Greedy);
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(4)).unwrap();
        m.apply(&Gate::Cx {
            control: VirtId(0),
            target: VirtId(1),
        })
        .unwrap();
        assert_eq!(m.stats().swaps, 3);
        assert_eq!(m.phys_of(VirtId(0)), Some(PhysId(3)));
    }
}

//! # square-route — gate scheduling and communication
//!
//! The machine-facing half of the SQUARE compiler: an ASAP gate
//! scheduler with per-qubit availability tracking, a swap-chain router
//! for NISQ lattices (each SWAP costs three CNOT cycles; chain latency
//! grows with distance), and a braid router for fault-tolerant surface
//! code machines (braids complete in constant time but may not cross —
//! conflicting braids queue, Section IV-D of the paper).
//!
//! The central type is [`Machine`]: it owns the virtual→physical
//! placement ([`Placement`]), schedules every gate the compile-time
//! executor emits ([`Clock`]), accumulates communication statistics
//! (the running `S` factors the CER heuristic consumes), and records
//! per-qubit liveness segments from which `square-metrics` computes
//! the active quantum volume. Routing strategy is pluggable behind the
//! stateless [`Router`] trait, configured with a [`RouterConfig`] and
//! driven through a per-call [`RoutingCtx`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod braid;
pub mod config;
pub mod ctx;
pub mod machine;
pub mod placement;
pub mod router;
pub mod schedule;
pub mod sink;
pub mod timeline;

mod error;

pub use braid::BraidField;
pub use config::{RouterConfig, DEFAULT_LOOKAHEAD_WINDOW, DEFAULT_PARALLEL_MIN_LAYER};
pub use ctx::{BfsScratch, RouterScratch, RoutingCtx};
pub use error::RouteError;
pub use machine::{
    journey_of, CommStats, LivenessSegment, Machine, MachineConfig, PlacementEvent, RouteReport,
};
pub use placement::{CellSet, Placement};
pub use router::{GreedyRouter, LookaheadRouter, Router, RouterKind};
pub use schedule::{gate_duration, ScheduledGate};
pub use sink::ScheduleSink;
pub use timeline::Clock;

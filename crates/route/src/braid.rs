//! Braid routing for surface-code (FT) machines.
//!
//! On a braided surface-code architecture, a two-qubit gate is realized
//! by a braid: a path through the routing channels between the two
//! logical qubits. A braid of *any length* completes in constant time,
//! but two braids may not cross (Section II-C1). When a requested braid
//! conflicts with ongoing braids, it queues until its route clears —
//! this queuing is the FT communication cost, and the average number of
//! conflicts per gate is the `S` factor CER uses on FT machines
//! (Section IV-D).
//!
//! Model: logical qubits sit on integer grid points; a braid occupies
//! every tile (lattice point) along an L-shaped route between its
//! endpoints. Two braids whose time windows overlap conflict iff their
//! tile sets intersect — this captures both channel contention and
//! perpendicular crossings, abstracting the braid-spacing rules of
//! [37] at one-tile granularity. Both L-orientations are tried and the
//! one that starts earlier (fewest conflicts on a tie) wins.

use std::collections::HashSet;

/// A tile (lattice point) on the braid routing plane.
pub type Tile = (i32, i32);

/// The tiles of an L-shaped route from `a` to `b`, inclusive.
/// `x_first` selects the orientation (walk x then y, or y then x).
pub fn l_path_tiles(a: Tile, b: Tile, x_first: bool) -> Vec<Tile> {
    let mut tiles = vec![a];
    let (mut x, mut y) = a;
    if x_first {
        while x != b.0 {
            x += (b.0 - x).signum();
            tiles.push((x, y));
        }
        while y != b.1 {
            y += (b.1 - y).signum();
            tiles.push((x, y));
        }
    } else {
        while y != b.1 {
            y += (b.1 - y).signum();
            tiles.push((x, y));
        }
        while x != b.0 {
            x += (b.0 - x).signum();
            tiles.push((x, y));
        }
    }
    tiles
}

#[derive(Debug, Clone)]
struct ActiveBraid {
    start: u64,
    end: u64,
    tiles: HashSet<Tile>,
}

/// Tracks braids in flight and finds conflict-free start slots.
#[derive(Debug, Clone, Default)]
pub struct BraidField {
    active: Vec<ActiveBraid>,
    braids: u64,
    conflicts: u64,
    length_sum: u64,
}

impl BraidField {
    /// Creates an empty braid field.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of braids committed so far.
    pub fn braids(&self) -> u64 {
        self.braids
    }

    /// Total conflicts encountered (each ongoing braid that forced a
    /// delay counts once per attempt).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Average braid length in tiles traversed.
    pub fn avg_length(&self) -> f64 {
        if self.braids == 0 {
            0.0
        } else {
            self.length_sum as f64 / self.braids as f64
        }
    }

    /// Average conflicts per braid — the FT communication factor `S`.
    pub fn avg_conflicts(&self) -> f64 {
        if self.braids == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.braids as f64
        }
    }

    /// Finds the earliest start ≥ `ready` at which a braid over
    /// `tiles` can run for `dur` cycles without crossing any ongoing
    /// braid, counting the conflicts that forced delays.
    fn earliest_slot(&self, ready: u64, tiles: &HashSet<Tile>, dur: u64) -> (u64, u64) {
        let mut start = ready;
        let mut conflicts = 0u64;
        loop {
            let window_end = start + dur;
            let mut blocker_end: Option<u64> = None;
            for b in &self.active {
                if b.start < window_end && start < b.end && !b.tiles.is_disjoint(tiles) {
                    blocker_end = Some(match blocker_end {
                        None => b.end,
                        Some(e) => e.min(b.end),
                    });
                    conflicts += 1;
                }
            }
            match blocker_end {
                None => return (start, conflicts),
                Some(e) => start = e.max(start + 1),
            }
        }
    }

    /// Routes a braid between tiles `a` and `b`, trying both
    /// L-orientations, starting no earlier than `ready`, lasting `dur`
    /// cycles. Commits the braid and returns its start time.
    pub fn route(&mut self, a: Tile, b: Tile, ready: u64, dur: u64) -> u64 {
        // Braids that ended by `ready` can never conflict again.
        self.active.retain(|br| br.end > ready);

        let mut best: Option<(u64, u64, HashSet<Tile>)> = None;
        for x_first in [true, false] {
            let set: HashSet<Tile> = l_path_tiles(a, b, x_first).into_iter().collect();
            let (start, conflicts) = self.earliest_slot(ready, &set, dur);
            let better = match &best {
                None => true,
                Some((bs, bc, _)) => start < *bs || (start == *bs && conflicts < *bc),
            };
            if better {
                best = Some((start, conflicts, set));
            }
        }
        let (start, conflicts, set) = best.expect("at least one orientation");
        self.braids += 1;
        self.conflicts += conflicts;
        self.length_sum += set.len().saturating_sub(1) as u64;
        self.active.push(ActiveBraid {
            start,
            end: start + dur,
            tiles: set,
        });
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_path_has_manhattan_tile_count() {
        let t = l_path_tiles((0, 0), (3, 2), true);
        assert_eq!(t.len(), 6, "5 steps + origin");
        let t2 = l_path_tiles((0, 0), (3, 2), false);
        assert_eq!(t2.len(), 6);
        assert_ne!(
            t.iter().collect::<HashSet<_>>(),
            t2.iter().collect::<HashSet<_>>(),
            "orientations differ"
        );
    }

    #[test]
    fn zero_length_braid_for_same_point() {
        assert_eq!(l_path_tiles((2, 2), (2, 2), true), vec![(2, 2)]);
    }

    #[test]
    fn disjoint_braids_run_concurrently() {
        let mut f = BraidField::new();
        let s1 = f.route((0, 0), (0, 3), 0, 1);
        let s2 = f.route((5, 0), (5, 3), 0, 1);
        assert_eq!(s1, 0);
        assert_eq!(s2, 0, "no shared tiles, no queuing");
        assert_eq!(f.conflicts(), 0);
    }

    #[test]
    fn crossing_braids_serialize() {
        let mut f = BraidField::new();
        // Horizontal braid across x = 0..4 at y = 1.
        let s1 = f.route((0, 1), (4, 1), 0, 1);
        // Vertical braid across y = 0..3 at x = 2 crosses it at (2,1)
        // in either orientation.
        let s2 = f.route((2, 0), (2, 3), 0, 1);
        assert_eq!(s1, 0);
        assert!(s2 >= 1, "queued behind the crossing braid");
        assert!(f.conflicts() >= 1);
    }

    #[test]
    fn alternative_orientation_avoids_conflict() {
        let mut f = BraidField::new();
        // Long-lived horizontal braid over (1,0)..(3,0).
        f.route((1, 0), (3, 0), 0, 8);
        // (0,0) -> (3,3): x-first runs straight through the busy row;
        // y-first goes up column x=0 then across y=3, conflict-free.
        let s = f.route((0, 0), (3, 3), 0, 1);
        assert_eq!(s, 0, "y-first orientation is free");
    }

    #[test]
    fn conflicts_accumulate_into_average() {
        let mut f = BraidField::new();
        f.route((0, 1), (4, 1), 0, 10);
        let s = f.route((2, 0), (2, 3), 0, 1); // crosses; queues to t=10
        assert_eq!(s, 10);
        assert!(f.avg_conflicts() > 0.0);
        assert!(f.avg_length() > 0.0);
    }

    #[test]
    fn braids_after_expiry_do_not_conflict() {
        let mut f = BraidField::new();
        f.route((0, 1), (4, 1), 0, 2);
        // Ready at t=5: the old braid expired, no queuing.
        let s = f.route((2, 0), (2, 3), 5, 1);
        assert_eq!(s, 5);
        assert_eq!(f.conflicts(), 0);
    }
}

//! ASAP clock: per-qubit availability tracking.
//!
//! The paper's gate scheduler places each gate "to the earliest time
//! step possible" (Section III-C). With data dependencies carried by
//! the qubits themselves, that is exactly per-qubit availability: a
//! gate starts at the max availability of its operands and occupies
//! them for its duration.

use square_arch::PhysId;

/// Per-physical-qubit busy-until times plus the overall makespan —
/// the time half of the machine's `Placement`/`Clock`/`ScheduleSink`
/// split. Read it through [`Machine::clock`](crate::Machine::clock).
#[derive(Debug, Clone, Default)]
pub struct Clock {
    avail: Vec<u64>,
    depth: u64,
}

impl Clock {
    /// A clock for `n` physical qubits, all available at time 0.
    pub fn new(n: usize) -> Self {
        Clock {
            avail: vec![0; n],
            depth: 0,
        }
    }

    /// Earliest time a gate over `qs` can start.
    pub fn ready_at(&self, qs: &[PhysId]) -> u64 {
        qs.iter().map(|q| self.avail[q.index()]).max().unwrap_or(0)
    }

    /// Availability of a single qubit.
    #[inline]
    pub fn avail(&self, q: PhysId) -> u64 {
        self.avail[q.index()]
    }

    /// Schedules an operation over `qs` starting at `start` for `dur`
    /// cycles; returns the start time. `start` must be ≥
    /// [`Clock::ready_at`] for the same operands (callers pick the
    /// slot; braid routing may delay past readiness).
    pub fn occupy(&mut self, qs: &[PhysId], start: u64, dur: u64) -> u64 {
        debug_assert!(start >= self.ready_at(qs), "scheduling before readiness");
        let end = start + dur;
        for q in qs {
            self.avail[q.index()] = end;
        }
        self.depth = self.depth.max(end);
        start
    }

    /// Schedules ASAP: starts at readiness.
    pub fn occupy_asap(&mut self, qs: &[PhysId], dur: u64) -> u64 {
        let start = self.ready_at(qs);
        self.occupy(qs, start, dur)
    }

    /// Schedules a two-qubit operation ASAP without the slice round
    /// trip — the routing swap fast path.
    #[inline]
    pub(crate) fn occupy_pair_asap(&mut self, a: PhysId, b: PhysId, dur: u64) -> u64 {
        let ai = a.index();
        let bi = b.index();
        let start = self.avail[ai].max(self.avail[bi]);
        let end = start + dur;
        self.avail[ai] = end;
        self.avail[bi] = end;
        self.depth = self.depth.max(end);
        start
    }

    /// Overall makespan (circuit depth in cycles).
    #[inline]
    pub fn depth(&self) -> u64 {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_gates_run_in_parallel() {
        let mut t = Clock::new(4);
        let s0 = t.occupy_asap(&[PhysId(0), PhysId(1)], 1);
        let s1 = t.occupy_asap(&[PhysId(2), PhysId(3)], 1);
        assert_eq!(s0, 0);
        assert_eq!(s1, 0);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn dependent_gates_serialize() {
        let mut t = Clock::new(3);
        t.occupy_asap(&[PhysId(0), PhysId(1)], 3); // a SWAP
        let s = t.occupy_asap(&[PhysId(1), PhysId(2)], 1);
        assert_eq!(s, 3, "waits for qubit 1");
        assert_eq!(t.depth(), 4);
    }

    #[test]
    fn explicit_start_after_ready_is_honored() {
        let mut t = Clock::new(2);
        let s = t.occupy(&[PhysId(0)], 5, 2);
        assert_eq!(s, 5);
        assert_eq!(t.avail(PhysId(0)), 7);
        assert_eq!(t.avail(PhysId(1)), 0);
        assert_eq!(t.depth(), 7);
    }

    #[test]
    fn pair_fast_path_matches_slice_path() {
        let mut a = Clock::new(4);
        let mut b = Clock::new(4);
        a.occupy_asap(&[PhysId(1), PhysId(2)], 3);
        b.occupy_pair_asap(PhysId(1), PhysId(2), 3);
        let sa = a.occupy_asap(&[PhysId(2), PhysId(3)], 3);
        let sb = b.occupy_pair_asap(PhysId(2), PhysId(3), 3);
        assert_eq!(sa, sb);
        assert_eq!(a.depth(), b.depth());
        for q in 0..4 {
            assert_eq!(a.avail(PhysId(q)), b.avail(PhysId(q)));
        }
    }
}

//! Scheduled physical gates — the compiler's final output, and the
//! input to the Monte-Carlo noise simulator.

use std::fmt;

use square_arch::PhysId;
use square_qir::{ClbitId, Gate};

/// A gate placed in time on physical qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledGate {
    /// The gate, over physical qubits.
    pub gate: Gate<PhysId>,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles (1 for 1q/CNOT, 3 for SWAP, 6 for Toffoli).
    pub dur: u64,
    /// True for communication gates inserted by routing (swap chains /
    /// braid bookkeeping), false for program gates.
    pub is_comm: bool,
    /// Classical guard: the gate applies only when this bit is set
    /// (measurement-based uncomputation corrections). `None` for
    /// ordinary unconditional gates.
    pub guard: Option<ClbitId>,
    /// Mid-circuit measurement: the cell's bit is *recorded* into this
    /// classical bit and the carrier gate is **not** applied (the
    /// `gate` field merely names the measured cell). `None` for
    /// ordinary gates.
    pub measure: Option<ClbitId>,
}

impl ScheduledGate {
    /// End cycle (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.dur
    }
}

impl fmt::Display for ScheduledGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(c) = self.measure {
            let mut cell = PhysId(0);
            self.gate.for_each_qubit(|p| cell = *p);
            return write!(f, "{:>8}  measure {cell} -> {c}", self.start);
        }
        let tag = if self.is_comm { " [comm]" } else { "" };
        match self.guard {
            Some(c) => write!(f, "{:>8}  [{c}] {}{tag}", self.start, self.gate),
            None => write!(f, "{:>8}  {}{tag}", self.start, self.gate),
        }
    }
}

/// Standard durations, in scheduler cycles, of each gate kind. SWAP is
/// three back-to-back CNOTs; Toffoli is its depth in the standard
/// Clifford+T decomposition. Generic over the qubit naming: durations
/// depend only on the gate shape, so virtual and physical gates agree.
pub fn gate_duration<T>(gate: &Gate<T>) -> u64 {
    match gate {
        Gate::X { .. } => 1,
        Gate::Cx { .. } => 1,
        Gate::Swap { .. } => 3,
        Gate::Ccx { .. } => 6,
        Gate::Mcx { controls, .. } => match controls.len() {
            0 | 1 => 1,
            2 => 6,
            n => 6 * (2 * n as u64 - 3),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations() {
        assert_eq!(gate_duration(&Gate::X { target: PhysId(0) }), 1);
        assert_eq!(
            gate_duration(&Gate::Swap {
                a: PhysId(0),
                b: PhysId(1)
            }),
            3
        );
        assert_eq!(
            gate_duration(&Gate::Ccx {
                c0: PhysId(0),
                c1: PhysId(1),
                target: PhysId(2)
            }),
            6
        );
    }

    #[test]
    fn end_is_start_plus_duration() {
        let g = ScheduledGate {
            gate: Gate::X { target: PhysId(3) },
            start: 10,
            dur: 1,
            is_comm: false,
            guard: None,
            measure: None,
        };
        assert_eq!(g.end(), 11);
        assert!(g.to_string().contains("X Q3"));
    }

    #[test]
    fn classical_events_render_their_clbit() {
        let m = ScheduledGate {
            gate: Gate::X { target: PhysId(7) },
            start: 4,
            dur: 1,
            is_comm: false,
            guard: None,
            measure: Some(ClbitId(2)),
        };
        assert!(m.to_string().contains("measure Q7 -> c2"));
        let g = ScheduledGate {
            gate: Gate::X { target: PhysId(7) },
            start: 5,
            dur: 1,
            is_comm: false,
            guard: Some(ClbitId(2)),
            measure: None,
        };
        assert!(g.to_string().contains("[c2] X Q7"));
    }
}

//! Flat placement state: who sits where, tracked without hashing.
//!
//! [`Placement`] is the space half of the machine's
//! `Placement`/`Clock`/`ScheduleSink` split. Every map the old machine
//! kept in `HashMap`s or `Vec<Option<_>>`s is a dense array here:
//! occupancy and the virtual→physical binding are `u32` arrays with a
//! `u32::MAX` sentinel, and the free / ever-used / ever-placed cell
//! sets are `u64`-word bitsets indexed by `PhysId`. The routing hot
//! loop touches nothing but these arrays, so a swap costs a handful of
//! indexed reads and writes — no hashing, no per-gate allocation.

use std::collections::HashMap;

use square_arch::{PhysId, Topology};
use square_qir::VirtId;

use crate::error::RouteError;

/// Sentinel for "no binding" in the flat occupancy/placement arrays.
const NONE: u32 = u32::MAX;

/// A dense bitset over physical cell indices.
#[derive(Debug, Clone, Default)]
pub struct CellSet {
    words: Vec<u64>,
}

impl CellSet {
    /// An empty set sized for `n` cells.
    pub fn empty(n: usize) -> Self {
        CellSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// A set containing every cell in `0..n`.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Adds cell `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
    }

    /// Removes cell `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        self.words[i >> 6] &= !(1 << (i & 63));
    }

    /// Number of cells in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no cell is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Calls `f` for every index in `0..n` *not* in the set, ascending.
    pub fn for_each_clear(&self, n: usize, f: &mut impl FnMut(usize)) {
        for (wi, &w) in self.words.iter().enumerate() {
            let base = wi * 64;
            if base >= n {
                break;
            }
            let mut inv = !w;
            if n - base < 64 {
                inv &= (1u64 << (n - base)) - 1;
            }
            while inv != 0 {
                f(base + inv.trailing_zeros() as usize);
                inv &= inv - 1;
            }
        }
    }
}

/// The virtual→physical binding state of a machine: occupancy, the
/// free pool, reuse tracking, and the incremental centroid — all as
/// flat arrays and bitsets.
///
/// Obtained read-only from [`Machine::placement`](crate::Machine::placement);
/// mutation goes through the machine so liveness and history stay
/// consistent.
#[derive(Debug, Clone)]
pub struct Placement {
    /// `occupant[p]` = virtual qubit held by cell `p` (`NONE` if free).
    occupant: Vec<u32>,
    /// `place[v]` = cell holding virtual qubit `v` (`NONE` if
    /// unplaced); grows as higher `VirtId`s appear.
    place: Vec<u32>,
    /// Free cells (cells with `occupant == NONE`), as a bitset.
    free: CellSet,
    /// Cells that ever held *or were traversed by* a program qubit.
    ever_used: CellSet,
    /// Cells that ever held a program qubit (the footprint).
    ever_placed: CellSet,
    /// Cached geometric embedding (`topo.coord` per cell).
    coords: Vec<(i32, i32)>,
    active: usize,
    peak_active: usize,
    /// Cells not in `ever_used` — the allocator's remaining "fresh"
    /// candidates. Maintained so `nearest_free(_, fresh)` can skip the
    /// ring scan entirely once the fabric's fresh supply is exhausted
    /// (which is most of a large compile).
    fresh: usize,
    coord_sum: (i64, i64),
    relocations: Vec<(PhysId, PhysId)>,
}

impl Placement {
    /// Empty placement over every cell of `topo`.
    pub fn new(topo: &dyn Topology) -> Self {
        let n = topo.qubit_count();
        let coords = (0..n).map(|i| topo.coord(PhysId(i as u32))).collect();
        Placement {
            occupant: vec![NONE; n],
            place: Vec::new(),
            free: CellSet::full(n),
            ever_used: CellSet::empty(n),
            ever_placed: CellSet::empty(n),
            coords,
            active: 0,
            peak_active: 0,
            fresh: n,
            coord_sum: (0, 0),
            relocations: Vec::new(),
        }
    }

    /// Total physical cells.
    #[inline]
    pub fn qubit_count(&self) -> usize {
        self.occupant.len()
    }

    /// Currently placed virtual qubits.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Peak number of simultaneously placed qubits so far.
    pub fn peak_active(&self) -> usize {
        self.peak_active
    }

    /// Free physical cells.
    #[inline]
    pub fn free_count(&self) -> usize {
        self.qubit_count() - self.active
    }

    /// True if the cell holds no virtual qubit.
    #[inline]
    pub fn is_free(&self, p: PhysId) -> bool {
        self.free.contains(p.index())
    }

    /// True if the cell has ever held a qubit (so it is "reused"
    /// rather than "fresh" from the allocator's perspective).
    #[inline]
    pub fn was_ever_used(&self, p: PhysId) -> bool {
        self.ever_used.contains(p.index())
    }

    /// Number of cells never used by any qubit (never held one and
    /// never traversed by a swap). O(1).
    #[inline]
    pub fn fresh_count(&self) -> usize {
        self.fresh
    }

    /// Calls `f` for every fresh (never-used) cell, ascending.
    pub fn for_each_fresh(&self, f: &mut impl FnMut(PhysId)) {
        self.ever_used
            .for_each_clear(self.occupant.len(), &mut |i| f(PhysId(i as u32)));
    }

    /// Marks a cell used, keeping the fresh counter in sync.
    #[inline]
    fn mark_used(&mut self, pi: usize) {
        if !self.ever_used.contains(pi) {
            self.ever_used.insert(pi);
            self.fresh -= 1;
        }
    }

    /// Current placement of a virtual qubit.
    #[inline]
    pub fn phys_of(&self, v: VirtId) -> Option<PhysId> {
        match self.place.get(v.index()) {
            Some(&p) if p != NONE => Some(PhysId(p)),
            _ => None,
        }
    }

    /// The virtual qubit held by a cell, if any.
    #[inline]
    pub fn occupant_of(&self, p: PhysId) -> Option<VirtId> {
        match self.occupant[p.index()] {
            NONE => None,
            v => Some(VirtId(v)),
        }
    }

    /// Cached geometric position of a cell (same values as
    /// `topo.coord`, without the virtual call).
    #[inline]
    pub fn coord(&self, p: PhysId) -> (i32, i32) {
        self.coords[p.index()]
    }

    /// Geometric centroid of the given (placed) virtual qubits; `None`
    /// if none are placed yet.
    pub fn centroid_of(&self, virts: &[VirtId]) -> Option<(i32, i32)> {
        let mut n = 0i64;
        let (mut sx, mut sy) = (0i64, 0i64);
        for v in virts {
            if let Some(p) = self.phys_of(*v) {
                let (x, y) = self.coord(p);
                sx += x as i64;
                sy += y as i64;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        Some(((sx / n) as i32, (sy / n) as i32))
    }

    /// Centroid of all currently placed qubits (maintained
    /// incrementally; O(1)). `None` when nothing is placed.
    pub fn active_centroid(&self) -> Option<(i32, i32)> {
        if self.active == 0 {
            return None;
        }
        let n = self.active as i64;
        Some(((self.coord_sum.0 / n) as i32, (self.coord_sum.1 / n) as i32))
    }

    /// Binds `v` to cell `p`.
    pub(crate) fn bind(&mut self, v: VirtId, p: PhysId) -> Result<(), RouteError> {
        if self.phys_of(v).is_some() {
            return Err(RouteError::AlreadyPlaced { virt: v });
        }
        if !self.is_free(p) {
            return Err(RouteError::SlotOccupied { phys: p });
        }
        if self.place.len() <= v.index() {
            self.place.resize(v.index() + 1, NONE);
        }
        self.place[v.index()] = p.0;
        let pi = p.index();
        self.occupant[pi] = v.0;
        self.free.remove(pi);
        self.mark_used(pi);
        self.ever_placed.insert(pi);
        self.active += 1;
        self.peak_active = self.peak_active.max(self.active);
        let (x, y) = self.coords[pi];
        self.coord_sum.0 += x as i64;
        self.coord_sum.1 += y as i64;
        Ok(())
    }

    /// Unbinds `v`, returning the cell it held.
    pub(crate) fn unbind(&mut self, v: VirtId) -> Result<PhysId, RouteError> {
        let p = self
            .phys_of(v)
            .ok_or(RouteError::UnplacedQubit { virt: v })?;
        self.place[v.index()] = NONE;
        let pi = p.index();
        self.occupant[pi] = NONE;
        self.free.insert(pi);
        self.active -= 1;
        let (x, y) = self.coords[pi];
        self.coord_sum.0 -= x as i64;
        self.coord_sum.1 -= y as i64;
        Ok(p)
    }

    /// Exchanges the occupants of two cells (a routing SWAP's effect
    /// on placement state), maintaining the free set, reuse tracking,
    /// incremental centroid, and free-cell relocations. Returns the
    /// previous occupants `(of p, of q)` so the machine can update
    /// liveness and history.
    pub(crate) fn swap_occupants(
        &mut self,
        p: PhysId,
        q: PhysId,
    ) -> (Option<VirtId>, Option<VirtId>) {
        let pi = p.index();
        let qi = q.index();
        let vp = self.occupant[pi];
        let vq = self.occupant[qi];
        self.occupant[pi] = vq;
        self.occupant[qi] = vp;
        if (vp == NONE) != (vq == NONE) {
            // one occupant moved between the cells: shift the centroid
            // sum, and report that the free cell's |0⟩ relocated so
            // pooled-qubit bookkeeping (the ancilla heap) can follow.
            let (px, py) = self.coords[pi];
            let (qx, qy) = self.coords[qi];
            let sign = if vp != NONE { 1 } else { -1 };
            self.coord_sum.0 += sign * (qx as i64 - px as i64);
            self.coord_sum.1 += sign * (qy as i64 - py as i64);
            if vp != NONE {
                self.relocations.push((q, p));
                self.free.remove(qi);
                self.free.insert(pi);
            } else {
                self.relocations.push((p, q));
                self.free.remove(pi);
                self.free.insert(qi);
            }
        }
        if vp != NONE {
            self.place[vp as usize] = q.0;
        }
        if vq != NONE {
            self.place[vq as usize] = p.0;
        }
        self.mark_used(pi);
        self.mark_used(qi);
        (
            (vp != NONE).then_some(VirtId(vp)),
            (vq != NONE).then_some(VirtId(vq)),
        )
    }

    /// Drains the free-cell relocations recorded since the last call.
    pub(crate) fn drain_relocations(&mut self) -> Vec<(PhysId, PhysId)> {
        std::mem::take(&mut self.relocations)
    }

    /// Number of cells that ever held a program qubit.
    pub(crate) fn footprint(&self) -> usize {
        self.ever_placed.len()
    }

    /// The current binding as a map (ascending `VirtId` insertion).
    pub(crate) fn final_placement(&self) -> HashMap<VirtId, PhysId> {
        let mut map = HashMap::new();
        for (v, &p) in self.place.iter().enumerate() {
            if p != NONE {
                map.insert(VirtId(v as u32), PhysId(p));
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_arch::GridTopology;

    #[test]
    fn cellset_round_trips() {
        let mut s = CellSet::empty(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(63) && !s.contains(128));
        assert_eq!(s.len(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert_eq!(CellSet::full(130).len(), 130);
    }

    #[test]
    fn bind_swap_unbind_keep_state_consistent() {
        let topo = GridTopology::new(3, 1);
        let mut pl = Placement::new(&topo);
        pl.bind(VirtId(7), PhysId(0)).unwrap();
        assert_eq!(pl.phys_of(VirtId(7)), Some(PhysId(0)));
        assert_eq!(pl.occupant_of(PhysId(0)), Some(VirtId(7)));
        assert_eq!(pl.active_count(), 1);
        assert_eq!(pl.free_count(), 2);
        assert!(!pl.is_free(PhysId(0)));
        // Swap into the free middle cell: relocation (1 → 0) reported.
        let (vp, vq) = pl.swap_occupants(PhysId(0), PhysId(1));
        assert_eq!((vp, vq), (Some(VirtId(7)), None));
        assert_eq!(pl.phys_of(VirtId(7)), Some(PhysId(1)));
        assert!(pl.is_free(PhysId(0)) && !pl.is_free(PhysId(1)));
        assert_eq!(pl.drain_relocations(), vec![(PhysId(1), PhysId(0))]);
        assert!(pl.was_ever_used(PhysId(0)) && pl.was_ever_used(PhysId(1)));
        let p = pl.unbind(VirtId(7)).unwrap();
        assert_eq!(p, PhysId(1));
        assert_eq!(pl.active_count(), 0);
        assert_eq!(pl.footprint(), 1, "only cell 0 ever *held* a qubit");
        assert_eq!(pl.peak_active(), 1);
    }

    #[test]
    fn centroids_track_placements() {
        let topo = GridTopology::new(3, 3);
        let mut pl = Placement::new(&topo);
        assert_eq!(pl.active_centroid(), None);
        assert_eq!(pl.centroid_of(&[VirtId(0)]), None);
        pl.bind(VirtId(0), PhysId(0)).unwrap(); // (0,0)
        pl.bind(VirtId(1), PhysId(8)).unwrap(); // (2,2)
        assert_eq!(pl.active_centroid(), Some((1, 1)));
        assert_eq!(pl.centroid_of(&[VirtId(0), VirtId(1)]), Some((1, 1)));
        assert_eq!(pl.centroid_of(&[VirtId(1)]), Some((2, 2)));
    }

    #[test]
    fn bind_errors_match_machine_contract() {
        let topo = GridTopology::new(2, 1);
        let mut pl = Placement::new(&topo);
        pl.bind(VirtId(0), PhysId(0)).unwrap();
        assert!(matches!(
            pl.bind(VirtId(0), PhysId(1)),
            Err(RouteError::AlreadyPlaced { .. })
        ));
        assert!(matches!(
            pl.bind(VirtId(1), PhysId(0)),
            Err(RouteError::SlotOccupied { .. })
        ));
        assert!(matches!(
            pl.unbind(VirtId(9)),
            Err(RouteError::UnplacedQubit { .. })
        ));
    }
}

//! The schedule sink: everything a machine run *emits*.
//!
//! [`ScheduleSink`] is the output half of the machine's
//! `Placement`/`Clock`/`ScheduleSink` split: communication statistics,
//! the optional recorded physical circuit and placement history, and
//! per-qubit liveness. Liveness intervals are a flat `Vec` indexed by
//! `VirtId` (sentinel-tagged) instead of the old `HashMap`, so the
//! per-gate `note_usage` on the routing hot path is two array writes.

use square_arch::PhysId;
use square_qir::{ClbitId, VirtId};

use crate::machine::{CommStats, LivenessSegment, PlacementEvent};
use crate::schedule::ScheduledGate;

/// Sentinel `(first, last)` for a qubit with no recorded usage.
const UNUSED: (u64, u64) = (u64::MAX, 0);

/// Collects the outputs of a machine run: stats, recorded schedule and
/// placement history (when enabled), liveness segments, and the open
/// per-qubit usage intervals that become segments on release/finish.
#[derive(Debug, Clone)]
pub struct ScheduleSink {
    pub(crate) stats: CommStats,
    schedule: Option<Vec<ScheduledGate>>,
    history: Option<Vec<PlacementEvent>>,
    segments: Vec<LivenessSegment>,
    /// `usage[v]` = (first cycle touched, cycle after last gate), or
    /// [`UNUSED`]; grows as higher `VirtId`s appear.
    usage: Vec<(u64, u64)>,
}

impl ScheduleSink {
    /// A fresh sink; `record` enables schedule + history capture.
    pub fn new(record: bool) -> Self {
        ScheduleSink {
            stats: CommStats::default(),
            schedule: record.then(Vec::new),
            history: record.then(Vec::new),
            segments: Vec::new(),
            usage: Vec::new(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// True when the sink captures the physical schedule (and the
    /// placement history — same knob, same memory rationale).
    #[inline]
    pub fn records_schedule(&self) -> bool {
        self.schedule.is_some()
    }

    /// Widens `v`'s liveness interval to cover `[start, end)`.
    #[inline]
    pub(crate) fn note_usage(&mut self, v: VirtId, start: u64, end: u64) {
        if self.usage.len() <= v.index() {
            self.usage.resize(v.index() + 1, UNUSED);
        }
        let e = &mut self.usage[v.index()];
        e.0 = e.0.min(start);
        e.1 = e.1.max(end);
    }

    /// Takes `v`'s open usage interval (if any), resetting it.
    pub(crate) fn take_usage(&mut self, v: VirtId) -> Option<(u64, u64)> {
        let e = self.usage.get_mut(v.index())?;
        if e.0 == u64::MAX {
            return None;
        }
        Some(std::mem::replace(e, UNUSED))
    }

    /// Appends a closed liveness segment.
    pub(crate) fn push_segment(&mut self, seg: LivenessSegment) {
        self.segments.push(seg);
    }

    /// Records a placement event (no-op unless recording).
    #[inline]
    pub(crate) fn event(&mut self, ev: PlacementEvent) {
        if let Some(h) = &mut self.history {
            h.push(ev);
        }
    }

    /// Records a scheduled gate (no-op unless recording).
    #[inline]
    pub(crate) fn record(
        &mut self,
        gate: square_qir::Gate<PhysId>,
        start: u64,
        dur: u64,
        is_comm: bool,
    ) {
        self.record_classical(gate, start, dur, is_comm, None, None);
    }

    /// Records a scheduled gate carrying classical-bit annotations: a
    /// guard (classically controlled gate) or a measurement target
    /// (no-op unless recording).
    #[inline]
    pub(crate) fn record_classical(
        &mut self,
        gate: square_qir::Gate<PhysId>,
        start: u64,
        dur: u64,
        is_comm: bool,
        guard: Option<ClbitId>,
        measure: Option<ClbitId>,
    ) {
        if let Some(s) = &mut self.schedule {
            s.push(ScheduledGate {
                gate,
                start,
                dur,
                is_comm,
                guard,
                measure,
            });
        }
    }

    /// Decomposes the sink for `Machine::finish`: stats, recorded
    /// outputs, closed segments, and the still-open usage intervals in
    /// ascending `VirtId` order.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        CommStats,
        Option<Vec<ScheduledGate>>,
        Option<Vec<PlacementEvent>>,
        Vec<LivenessSegment>,
        Vec<(VirtId, (u64, u64))>,
    ) {
        let open = self
            .usage
            .into_iter()
            .enumerate()
            .filter(|&(_, e)| e.0 != u64::MAX)
            .map(|(v, e)| (VirtId(v as u32), e))
            .collect();
        (self.stats, self.schedule, self.history, self.segments, open)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_merges_and_takes() {
        let mut s = ScheduleSink::new(false);
        assert!(!s.records_schedule());
        s.note_usage(VirtId(3), 5, 8);
        s.note_usage(VirtId(3), 2, 6);
        assert_eq!(s.take_usage(VirtId(3)), Some((2, 8)));
        assert_eq!(s.take_usage(VirtId(3)), None, "taken entries reset");
        assert_eq!(s.take_usage(VirtId(99)), None, "never-used entries");
    }

    #[test]
    fn into_parts_lists_open_usage_in_virt_order() {
        let mut s = ScheduleSink::new(true);
        assert!(s.records_schedule());
        s.note_usage(VirtId(4), 1, 2);
        s.note_usage(VirtId(1), 0, 3);
        let (_, schedule, history, segments, open) = s.into_parts();
        assert!(schedule.is_some() && history.is_some());
        assert!(segments.is_empty());
        assert_eq!(open, vec![(VirtId(1), (0, 3)), (VirtId(4), (1, 2))]);
    }
}

//! Router configuration: one builder-style options struct shared by
//! every entry point (compiler config, machine config, sweep grids,
//! the compile service, `squarec`, and fuzzing) instead of scattered
//! per-caller knobs.

use crate::router::RouterKind;

/// Options for the swap-chain routing engine.
///
/// Converts from a bare [`RouterKind`] (all other knobs at their
/// defaults), so call sites that only pick a strategy stay terse:
/// `config.with_router(RouterKind::Lookahead)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Routing strategy.
    pub kind: RouterKind,
    /// Upcoming-gate hint window depth the executor feeds a
    /// lookahead router (ignored by greedy).
    pub lookahead_window: usize,
    /// Minimum number of multi-qubit gates in one operand-disjoint
    /// wave of a gate batch before the greedy engine plans their swap
    /// chains in parallel (`usize::MAX` forces fully serial routing).
    /// Batches are partitioned into waves first, so dependent gate
    /// chains never pay fork-join overhead regardless of batch size.
    pub parallel_min_layer: usize,
}

/// Default depth of the lookahead hint window.
pub const DEFAULT_LOOKAHEAD_WINDOW: usize = 16;

/// Default minimum wave width for parallel swap planning.
pub const DEFAULT_PARALLEL_MIN_LAYER: usize = 16;

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            kind: RouterKind::Greedy,
            lookahead_window: DEFAULT_LOOKAHEAD_WINDOW,
            parallel_min_layer: DEFAULT_PARALLEL_MIN_LAYER,
        }
    }
}

impl From<RouterKind> for RouterConfig {
    fn from(kind: RouterKind) -> Self {
        RouterConfig {
            kind,
            ..RouterConfig::default()
        }
    }
}

impl RouterConfig {
    /// Config for the given strategy with default knobs.
    pub fn new(kind: RouterKind) -> Self {
        kind.into()
    }

    /// Sets the lookahead hint-window depth.
    pub fn with_lookahead_window(mut self, window: usize) -> Self {
        self.lookahead_window = window;
        self
    }

    /// Sets the parallel-planning threshold.
    pub fn with_parallel_min_layer(mut self, layer: usize) -> Self {
        self.parallel_min_layer = layer;
        self
    }

    /// Disables parallel swap planning entirely.
    pub fn serial(mut self) -> Self {
        self.parallel_min_layer = usize::MAX;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let d = RouterConfig::default();
        assert_eq!(d.kind, RouterKind::Greedy);
        assert_eq!(d.lookahead_window, DEFAULT_LOOKAHEAD_WINDOW);
        assert_eq!(d.parallel_min_layer, DEFAULT_PARALLEL_MIN_LAYER);
        let c: RouterConfig = RouterKind::Lookahead.into();
        assert_eq!(c.kind, RouterKind::Lookahead);
        assert_eq!(c.lookahead_window, d.lookahead_window);
        let c = RouterConfig::new(RouterKind::Greedy)
            .with_lookahead_window(4)
            .with_parallel_min_layer(8);
        assert_eq!((c.lookahead_window, c.parallel_min_layer), (4, 8));
        assert_eq!(c.serial().parallel_min_layer, usize::MAX);
    }
}

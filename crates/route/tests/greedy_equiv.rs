//! Pins the routing-engine API redesign to the paper's original
//! semantics: random programs are routed twice — once through
//! [`Machine::apply`] (the `RoutingCtx`-based greedy router) and once
//! through an independent reimplementation of the *historical* greedy
//! algorithm (hop-walk chains, 4-attempt avoid-BFS gather) that keeps
//! its own placement in hash maps, the way the pre-redesign code did.
//! The full scheduled gate sequence, swap counts, gather statistics,
//! and final placements must agree **exactly**, on all five topology
//! families.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use proptest::prelude::*;
use square_arch::{
    FullTopology, GridTopology, HeavyHexTopology, LineTopology, PhysId, RingTopology, Topology,
};
use square_qir::{Gate, VirtId};
use square_route::{Machine, MachineConfig};

/// The historical greedy router, reimplemented from the paper's
/// description with none of the flat-state machinery: placement in
/// hash maps, per-gate path vectors, a `VecDeque` BFS. Deliberately
/// naive — its only job is to disagree if the rewrite changed
/// semantics.
struct HistoricalGreedy<'t> {
    topo: &'t dyn Topology,
    pos: HashMap<VirtId, PhysId>,
    occ: HashMap<PhysId, VirtId>,
    /// `(gate, is_comm)` in emission order — the mirror of the
    /// machine's recorded schedule.
    schedule: Vec<(Gate<PhysId>, bool)>,
    swaps: u64,
    gather_retries: u64,
    gather_failures: u64,
}

impl<'t> HistoricalGreedy<'t> {
    fn new(topo: &'t dyn Topology) -> Self {
        Self {
            topo,
            pos: HashMap::new(),
            occ: HashMap::new(),
            schedule: Vec::new(),
            swaps: 0,
            gather_retries: 0,
            gather_failures: 0,
        }
    }

    fn place(&mut self, v: VirtId, p: PhysId) {
        assert!(self.occ.insert(p, v).is_none(), "model placement clash");
        self.pos.insert(v, p);
    }

    fn swap(&mut self, p: PhysId, q: PhysId) {
        let vp = self.occ.remove(&p);
        let vq = self.occ.remove(&q);
        if let Some(v) = vp {
            self.occ.insert(q, v);
            self.pos.insert(v, q);
        }
        if let Some(v) = vq {
            self.occ.insert(p, v);
            self.pos.insert(v, p);
        }
        self.swaps += 1;
        self.schedule.push((Gate::Swap { a: p, b: q }, true));
    }

    fn coupled(&self, a: PhysId, b: PhysId) -> bool {
        self.topo.distance(a, b) == 1
    }

    /// Historical chain walk: `mover` hops along shortest paths until
    /// coupled to `anchor`; the hop onto the anchor is never taken.
    fn chain(&mut self, mover: VirtId, anchor: VirtId) {
        let mut pm = self.pos[&mover];
        let pa = self.pos[&anchor];
        if pm == pa || self.coupled(pm, pa) {
            return;
        }
        loop {
            let hop = self.topo.next_hop(pm, pa).expect("connected fabric");
            if hop == pa {
                break;
            }
            self.swap(pm, hop);
            pm = hop;
        }
    }

    /// Historical avoid-BFS: shortest path from `from` to any cell
    /// coupled to `pt` other than `p0`, never crossing `pt` or `p0`,
    /// goal-tested at discovery, 4096-visit budget.
    fn bfs_avoiding(&self, from: PhysId, pt: PhysId, p0: PhysId) -> Option<Vec<PhysId>> {
        let goal = |c: PhysId| self.coupled(c, pt) && c != p0;
        if goal(from) {
            return Some(vec![from]);
        }
        let n = self.topo.qubit_count();
        let mut prev: Vec<Option<PhysId>> = vec![None; n];
        let mut queue = VecDeque::new();
        queue.push_back(from);
        prev[from.index()] = Some(from);
        let mut visits = 0usize;
        while let Some(cur) = queue.pop_front() {
            visits += 1;
            if visits > 4096 {
                return None;
            }
            let mut found = None;
            self.topo.for_each_neighbor(cur, &mut |nb| {
                if found.is_some() || prev[nb.index()].is_some() || nb == pt || nb == p0 {
                    return;
                }
                prev[nb.index()] = Some(cur);
                if goal(nb) {
                    found = Some(nb);
                    return;
                }
                queue.push_back(nb);
            });
            if let Some(nb) = found {
                let mut path = vec![nb];
                let mut c = nb;
                while c != from {
                    c = prev[c.index()].expect("walked cells have parents");
                    path.push(c);
                }
                path.reverse();
                return Some(path);
            }
        }
        None
    }

    /// Historical Toffoli gather: up to four repair attempts bringing
    /// both controls adjacent to the target.
    fn gather(&mut self, c0: VirtId, c1: VirtId, t: VirtId) {
        for attempt in 0..4 {
            let pt = self.pos[&t];
            let p0 = self.pos[&c0];
            let p1 = self.pos[&c1];
            let ok0 = self.coupled(p0, pt);
            let ok1 = self.coupled(p1, pt);
            if ok0 && ok1 {
                return;
            }
            if attempt > 0 {
                self.gather_retries += 1;
            }
            if !ok0 {
                self.chain(c0, t);
                continue;
            }
            match self.bfs_avoiding(p1, pt, p0) {
                Some(path) => {
                    for w in path.windows(2) {
                        self.swap(w[0], w[1]);
                    }
                }
                None => self.chain(c1, t),
            }
        }
        self.gather_failures += 1;
    }

    fn route_gate(&mut self, gate: &Gate<VirtId>) {
        match gate {
            Gate::X { .. } => {}
            Gate::Cx { control, target } => self.chain(*control, *target),
            Gate::Swap { a, b } => self.chain(*a, *b),
            Gate::Ccx { c0, c1, target } => self.gather(*c0, *c1, *target),
            Gate::Mcx { controls, target } => match controls.len() {
                0 => {}
                1 => self.chain(controls[0], *target),
                _ => {
                    self.gather(controls[0], controls[1], *target);
                    for c in &controls[2..] {
                        self.chain(*c, *target);
                    }
                }
            },
        }
        self.schedule.push((gate.map(|v| self.pos[v]), false));
    }
}

/// One topology per family, small enough for fast cases but large
/// enough that chains, gathers and avoid-BFS all fire.
fn fabrics() -> Vec<(&'static str, Box<dyn Topology>)> {
    vec![
        (
            "grid",
            Box::new(GridTopology::new(4, 3)) as Box<dyn Topology>,
        ),
        ("full", Box::new(FullTopology::new(10))),
        ("line", Box::new(LineTopology::new(10))),
        ("heavyhex", Box::new(HeavyHexTopology::new(3))),
        ("ring", Box::new(RingTopology::new(10))),
    ]
}

/// Decodes one raw script entry into a gate over `k` live qubits,
/// skipping degenerate operand collisions.
fn decode_gate(op: u8, x: u8, y: u8, z: u8, k: u32) -> Option<Gate<VirtId>> {
    let q = |raw: u8| VirtId(u32::from(raw) % k);
    let (a, b, c) = (q(x), q(y), q(z));
    match op % 6 {
        0 => Some(Gate::X { target: a }),
        1 if a != b => Some(Gate::Cx {
            control: a,
            target: b,
        }),
        2 if a != b => Some(Gate::Swap { a, b }),
        3 if a != b && a != c && b != c => Some(Gate::Ccx {
            c0: a,
            c1: b,
            target: c,
        }),
        4 if a != b => Some(Gate::Mcx {
            controls: vec![a],
            target: b,
        }),
        5 if a != b && a != c && b != c => Some(Gate::Mcx {
            controls: vec![a, b],
            target: c,
        }),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn routing_ctx_greedy_matches_historical_greedy(
        k in 3u32..7,
        seeds in proptest::collection::vec(any::<u16>(), 8),
        script in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            0..32,
        ),
    ) {
        for (name, topo) in fabrics() {
            let n = topo.qubit_count();
            assert!(n >= k as usize, "fabric too small for the script");
            let topo: Arc<dyn Topology> = Arc::from(topo);
            let mut m =
                Machine::with_shared(Arc::clone(&topo), MachineConfig::nisq().with_schedule());
            let mut model = HistoricalGreedy::new(&*topo);

            // Deterministic scattered placement: seed-probed cells,
            // linear-probing past collisions.
            for v in 0..k {
                let mut cell = usize::from(seeds[v as usize % seeds.len()]) % n;
                while model.occ.contains_key(&PhysId(cell as u32)) {
                    cell = (cell + 1) % n;
                }
                let p = PhysId(cell as u32);
                m.place_at(VirtId(v), p).expect("probed cell is free");
                model.place(VirtId(v), p);
            }

            for &(op, x, y, z) in &script {
                let Some(gate) = decode_gate(op, x, y, z, k) else {
                    continue;
                };
                m.apply(&gate).expect("routable");
                model.route_gate(&gate);
            }

            // The machine and the model must have emitted the exact
            // same physical gate sequence...
            let report = m.finish();
            prop_assert_eq!(report.stats.swaps, model.swaps, "swap count ({name})");
            prop_assert_eq!(
                report.stats.gather_retries, model.gather_retries,
                "gather retries ({name})"
            );
            prop_assert_eq!(
                report.stats.gather_failures, model.gather_failures,
                "gather failures ({name})"
            );
            let schedule = report.schedule.as_ref().expect("recording enabled");
            prop_assert_eq!(schedule.len(), model.schedule.len(), "schedule length ({name})");
            for (got, want) in schedule.iter().zip(&model.schedule) {
                prop_assert_eq!(&got.gate, &want.0, "gate mismatch ({name})");
                prop_assert_eq!(got.is_comm, want.1, "comm flag mismatch ({name})");
            }
            // ...and agree on where every qubit ended up.
            prop_assert_eq!(
                report.final_placement, model.pos,
                "final placement diverged ({name})"
            );
        }
    }
}

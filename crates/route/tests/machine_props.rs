//! Property tests for the machine model: a byte script drives
//! [`Machine`] and a naive lock-step model through random placements,
//! releases, and routed gates on small grids, checking after every
//! operation that
//!
//! * no two live virtual qubits ever share a physical cell, and the
//!   occupancy bookkeeping (`is_free` / `phys_of` / `active_count` on [`Placement`])
//!   stays mutually consistent;
//! * `clock().avail` is monotone per qubit — the ASAP timeline never
//!   travels backwards;
//! * `drain_relocations` round-trips placement: a mirrored pool of
//!   released cells, updated only by the reported relocations, always
//!   names genuinely free cells — so pool-driven re-placement (what
//!   the compiler's ancilla heap does) can never collide with a live
//!   qubit.

use proptest::prelude::*;
use square_arch::{GridTopology, PhysId};
use square_qir::{Gate, VirtId};
use square_route::{Machine, MachineConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn machine_matches_naive_model(
        width in 2u32..6,
        height in 2u32..6,
        script in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>()),
            0..160,
        ),
    ) {
        let n = (width * height) as usize;
        let mut m = Machine::new(
            Box::new(GridTopology::new(width, height)),
            MachineConfig::nisq().with_schedule(),
        );
        // Naive model state.
        let mut live: Vec<VirtId> = Vec::new();
        let mut pool: Vec<PhysId> = Vec::new(); // released cells, relocation-tracked
        let mut next_virt = 0u32;
        let mut avail_before: Vec<u64> = (0..n).map(|i| m.clock().avail(PhysId(i as u32))).collect();

        for (op, x, y) in script {
            match op % 4 {
                // Place a fresh virtual qubit: alternately from the
                // mirrored pool (the heap path) and from a fresh scan
                // (the expansion path).
                0 => {
                    if live.len() == n {
                        continue;
                    }
                    let v = VirtId(next_virt);
                    next_virt += 1;
                    let slot = if !pool.is_empty() && x % 2 == 0 {
                        pool.remove(usize::from(y) % pool.len())
                    } else {
                        let center = (i32::from(x % 8), i32::from(y % 8));
                        match m.nearest_free(center, false) {
                            Some(p) => p,
                            None => continue,
                        }
                    };
                    // If relocations were mis-reported, a pooled slot
                    // could be occupied and this would error.
                    m.place_at(v, slot).expect("pool/scan slots are free");
                    pool.retain(|p| *p != slot);
                    live.push(v);
                }
                // Release a live qubit into the mirrored pool.
                1 => {
                    if live.is_empty() {
                        continue;
                    }
                    let v = live.remove(usize::from(x) % live.len());
                    let p = m.release(v).expect("live qubits release");
                    prop_assert!(!pool.contains(&p), "released cell already pooled");
                    pool.push(p);
                }
                // Apply a CNOT between two live qubits (drives swap
                // chains, which is what relocates pooled cells).
                2 => {
                    if live.len() < 2 {
                        continue;
                    }
                    let a = live[usize::from(x) % live.len()];
                    let b = live[usize::from(y) % live.len()];
                    if a == b {
                        continue;
                    }
                    m.apply(&Gate::Cx { control: a, target: b }).expect("routable");
                }
                // Apply a Toffoli over three live qubits.
                _ => {
                    if live.len() < 3 {
                        continue;
                    }
                    let c0 = live[usize::from(x) % live.len()];
                    let c1 = live[usize::from(y) % live.len()];
                    let t = live[usize::from(x ^ y) % live.len()];
                    if c0 == c1 || c0 == t || c1 == t {
                        continue;
                    }
                    m.apply(&Gate::Ccx { c0, c1, target: t }).expect("routable");
                }
            }

            // Routing swaps move pooled |0⟩ cells: apply the reported
            // renames to the mirror *in order*, exactly as the
            // compiler's heap does. (Within one swap chain a cell can
            // receive a |0⟩ and hand it on again, so only the final
            // pool state — invariant 3 below — is checkable.)
            for (from, to) in m.drain_relocations() {
                if let Some(slot) = pool.iter_mut().find(|p| **p == from) {
                    *slot = to;
                }
            }

            // 1. Occupancy: live virtuals sit on distinct free-marked
            //    cells; counts agree.
            let mut cells: Vec<PhysId> = Vec::with_capacity(live.len());
            for v in &live {
                let p = m.placement().phys_of(*v).expect("live qubit is placed");
                prop_assert!(!m.placement().is_free(p), "cell of live {v} reads free");
                cells.push(p);
            }
            cells.sort_unstable();
            let distinct = cells.windows(2).all(|w| w[0] != w[1]);
            prop_assert!(distinct, "two live virtuals share a cell");
            prop_assert_eq!(m.placement().active_count(), live.len());
            prop_assert_eq!(m.placement().free_count(), n - live.len());

            // 2. Timeline monotonicity.
            for (i, before) in avail_before.iter_mut().enumerate() {
                let now = m.clock().avail(PhysId(i as u32));
                prop_assert!(
                    now >= *before,
                    "avail of Q{i} went backwards: {before} -> {now}"
                );
                *before = now;
            }

            // 3. Relocation round-trip: every pooled cell is free on
            //    the machine (pooled cells are exactly the released,
            //    relocation-tracked |0⟩ slots).
            for p in &pool {
                prop_assert!(
                    m.placement().is_free(*p),
                    "pooled cell {p} is occupied — relocations lost track"
                );
            }
        }

        // Liveness closure: the final report closes one segment per
        // virtual qubit that ever carried a gate or release.
        let report = m.finish();
        prop_assert_eq!(report.stats.program_gates + report.stats.swaps,
            report.schedule.as_ref().expect("recorded").len() as u64);
        for seg in &report.segments {
            prop_assert!(seg.end >= seg.start, "segment runs backwards");
            prop_assert!(seg.end <= report.depth, "segment outlives the circuit");
        }
    }
}

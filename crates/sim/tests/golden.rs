//! Golden determinism tests for the simulator on *real* compiled
//! schedules: fixed seeds must reproduce histograms bit-for-bit across
//! runs, and the ideal (noiseless) execution of a routed catalog
//! benchmark must agree with the reference bit-level semantics.

use square_arch::NoiseParams;
use square_core::{compile_with_inputs, CompileReport, CompilerConfig, Policy};
use square_qir::lower_mcx;
use square_qir::sem::RecordedDecisions;
use square_sim::{run_ideal, run_noisy, sample_histogram, NoiseModel, TrajectoryConfig};
use square_workloads::{build, Benchmark};

fn compiled(bench: Benchmark, policy: Policy) -> (CompileReport, Vec<bool>) {
    let program = build(bench).expect("benchmark builds");
    let inputs: Vec<bool> = (0..bench.input_qubits()).map(|i| i % 3 == 0).collect();
    let cfg = CompilerConfig::nisq(policy).with_schedule();
    let report = compile_with_inputs(&program, &inputs, &cfg).expect("compiles");
    (report, inputs)
}

#[test]
fn fixed_seed_histograms_are_identical_across_runs() {
    let (report, _) = compiled(Benchmark::Rd53, Policy::Square);
    let schedule = report.schedule.as_deref().expect("recorded");
    let noise = NoiseModel::new(NoiseParams::paper_simulation());
    let cfg = TrajectoryConfig {
        shots: 512,
        seed: 0xD5EED,
    };
    let measure = report.measure_map();
    let h1 = sample_histogram(schedule, report.machine_qubits, &measure, &noise, &cfg);
    let h2 = sample_histogram(schedule, report.machine_qubits, &measure, &noise, &cfg);
    assert_eq!(h1, h2, "same seed, same histogram");
    assert_eq!(h1.shots(), 512);
    // A different seed almost surely shifts at least one count on a
    // realistically noisy circuit of this depth.
    let other = sample_histogram(
        schedule,
        report.machine_qubits,
        &measure,
        &noise,
        &TrajectoryConfig {
            shots: 512,
            seed: 0xD5EED + 1,
        },
    );
    assert_ne!(h1, other, "independent seeds explore different noise");
}

#[test]
fn noiseless_trajectories_equal_ideal_execution() {
    let (report, _) = compiled(Benchmark::Adder4, Policy::Eager);
    let schedule = report.schedule.as_deref().expect("recorded");
    use rand::SeedableRng;
    let noiseless = NoiseModel::new(NoiseParams::noiseless());
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let bits = run_noisy(schedule, report.machine_qubits, &noiseless, &mut rng);
    assert_eq!(bits, run_ideal(schedule, report.machine_qubits));
}

#[test]
fn ideal_execution_agrees_with_reference_semantics_on_catalog() {
    // The start-sorted ideal replay (the noise simulator's order) must
    // read back exactly what `qir::sem` computes, under the compiler's
    // own recorded reclamation decisions — for every policy on a
    // swap-chain target.
    for bench in [Benchmark::Rd53, Benchmark::Adder4, Benchmark::BelleS] {
        let program = build(bench).expect("benchmark builds");
        let lowered = lower_mcx(&program);
        for policy in Policy::ALL {
            let (report, inputs) = compiled(bench, policy);
            let schedule = report.schedule.as_deref().expect("recorded");
            let bits = run_ideal(schedule, report.machine_qubits);
            let physical: Vec<bool> = report
                .measure_map()
                .iter()
                .map(|q| bits[q.index()])
                .collect();
            let mut oracle = RecordedDecisions::new(report.decision_bools());
            let sem = square_qir::sem::run(&lowered, &inputs, &mut oracle).expect("sem runs");
            assert!(oracle.in_sync(), "{bench}/{policy}: decision drift");
            assert_eq!(
                sem.outputs, physical,
                "{bench}/{policy}: routed circuit diverged from reference semantics"
            );
        }
    }
}

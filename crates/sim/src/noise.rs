//! Stochastic noise channels over computational-basis states.

use rand::Rng;
use square_arch::NoiseParams;

/// Sampled effect of one depolarizing event on the bits it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauliFlips {
    /// Flip the first operand's bit.
    pub flip_a: bool,
    /// Flip the second operand's bit (meaningless for 1q events).
    pub flip_b: bool,
}

/// Noise channel sampler built over [`NoiseParams`] (Table IV).
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    params: NoiseParams,
}

impl NoiseModel {
    /// Wraps the given parameters.
    pub fn new(params: NoiseParams) -> Self {
        NoiseModel { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &NoiseParams {
        &self.params
    }

    /// Samples a single-qubit depolarizing event: with probability
    /// `p1`, one of {X, Y, Z} uniformly; X and Y flip the bit.
    pub fn sample_1q(&self, rng: &mut impl Rng) -> bool {
        if self.params.p1 > 0.0 && rng.gen_bool(self.params.p1) {
            // X, Y, Z equiprobable; 2 of 3 flip the bit.
            rng.gen_range(0..3) < 2
        } else {
            false
        }
    }

    /// Samples a two-qubit depolarizing event: with probability `p2`,
    /// one of the 15 non-identity Pauli pairs uniformly. A qubit's bit
    /// flips iff its component is X or Y.
    pub fn sample_2q(&self, rng: &mut impl Rng) -> PauliFlips {
        if self.params.p2 > 0.0 && rng.gen_bool(self.params.p2) {
            // Draw (Pa, Pb) ∈ {I,X,Y,Z}² \ {II} uniformly.
            let k = rng.gen_range(1..16u8);
            let pa = k & 0b11;
            let pb = (k >> 2) & 0b11;
            // Encoding: 0 = I, 1 = X, 2 = Y, 3 = Z.
            PauliFlips {
                flip_a: pa == 1 || pa == 2,
                flip_b: pb == 1 || pb == 2,
            }
        } else {
            PauliFlips {
                flip_a: false,
                flip_b: false,
            }
        }
    }

    /// Samples amplitude damping over `cycles` scheduler cycles:
    /// returns `true` if a qubit in |1⟩ relaxes to |0⟩.
    pub fn sample_relax(&self, cycles: u64, rng: &mut impl Rng) -> bool {
        if cycles == 0 {
            return false;
        }
        let p = self.params.relax_prob(cycles);
        p > 0.0 && rng.gen_bool(p.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_model_never_errors() {
        let m = NoiseModel::new(NoiseParams::noiseless());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(!m.sample_1q(&mut rng));
            let f = m.sample_2q(&mut rng);
            assert!(!f.flip_a && !f.flip_b);
            assert!(!m.sample_relax(1000, &mut rng));
        }
    }

    #[test]
    fn one_qubit_flip_rate_is_two_thirds_p() {
        let m = NoiseModel::new(NoiseParams::paper_simulation());
        let mut rng = StdRng::seed_from_u64(7);
        let n = 2_000_000u64;
        let flips = (0..n).filter(|_| m.sample_1q(&mut rng)).count() as f64;
        let expected = 2.0 / 3.0 * 0.001;
        let got = flips / n as f64;
        assert!(
            (got - expected).abs() < expected * 0.2,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn two_qubit_flip_rate_is_eight_fifteenths_p() {
        let m = NoiseModel::new(NoiseParams::paper_simulation());
        let mut rng = StdRng::seed_from_u64(11);
        let n = 2_000_000u64;
        let mut a = 0u64;
        let mut b = 0u64;
        for _ in 0..n {
            let f = m.sample_2q(&mut rng);
            a += u64::from(f.flip_a);
            b += u64::from(f.flip_b);
        }
        let expected = 8.0 / 15.0 * 0.01;
        for got in [a as f64 / n as f64, b as f64 / n as f64] {
            assert!(
                (got - expected).abs() < expected * 0.1,
                "got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn relaxation_rate_matches_exponential() {
        let m = NoiseModel::new(NoiseParams::paper_simulation());
        let mut rng = StdRng::seed_from_u64(13);
        // 1000 cycles × 200 ns = 200 µs over T1 = 50 µs → ~98% decay.
        let n = 100_000u64;
        let decays = (0..n).filter(|_| m.sample_relax(1000, &mut rng)).count() as f64;
        let expected = 1.0 - (-4.0f64).exp();
        let got = decays / n as f64;
        assert!((got - expected).abs() < 0.01, "got {got}");
    }
}

//! Trajectory execution of scheduled physical circuits.
//!
//! Runs a compiled, scheduled circuit (from `square-route`) shot by
//! shot: ideal boolean gate semantics plus stochastic error injection
//! per the gate's Clifford+T decomposition (6 CNOT-events and 9
//! one-qubit events per Toffoli, 3 CNOT-events per SWAP — the same
//! accounting as the analytical model), and T1 relaxation over each
//! qubit's idle gaps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use square_arch::PhysId;
use square_metrics::Histogram;
use square_qir::Gate;
use square_route::ScheduledGate;

use crate::noise::NoiseModel;
use crate::replay::apply_gate;

/// Options for trajectory sampling.
#[derive(Debug, Clone, Copy)]
pub struct TrajectoryConfig {
    /// Number of shots (the paper uses 8192 in Fig. 8c).
    pub shots: u32,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            shots: 8192,
            seed: 0x51A5,
        }
    }
}

/// Numbers of (1q, 2q) elementary error-injection events for a gate,
/// mirroring `square_metrics::GateTally`.
fn error_events(gate: &Gate<PhysId>) -> (u32, u32) {
    match gate {
        Gate::X { .. } => (1, 0),
        Gate::Cx { .. } => (0, 1),
        Gate::Swap { .. } => (0, 3),
        Gate::Ccx { .. } => (9, 6),
        Gate::Mcx { controls, .. } => match controls.len() {
            0 => (1, 0),
            1 => (0, 1),
            n => {
                let t = 2 * n as u32 - 3;
                (9 * t, 6 * t)
            }
        },
    }
}

/// Runs the circuit noiselessly from |0…0⟩ and returns the final
/// basis state over `n_qubits` physical qubits.
///
/// Gates are applied in record order — the machine's emission order —
/// which is the correct data-dependency order for both swap-chain and
/// braided schedules (see `crate::replay` for why start-cycle sorting
/// is unsound on braided composite gates).
pub fn run_ideal(schedule: &[ScheduledGate], n_qubits: usize) -> Vec<bool> {
    crate::replay::replay_schedule(schedule, n_qubits).bits
}

/// Runs one noisy trajectory and returns the final basis state.
pub fn run_noisy(
    schedule: &[ScheduledGate],
    n_qubits: usize,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) -> Vec<bool> {
    run_noisy_shot(schedule, n_qubits, noise, rng, &mut Vec::new())
}

/// Runs one noisy trajectory, appending every mid-circuit measurement
/// outcome (in record order) to `outcomes`, and returns the final
/// basis state.
///
/// Mid-circuit measurements read the *noisy* bit — errors that flipped
/// an ancilla before its measurement propagate into the classical side
/// channel and steer the guarded corrections, exactly as feedback
/// hardware would behave. Guarded gates that do not fire still occupy
/// their cell (idle relaxation applies) but inject no gate errors.
pub fn run_noisy_shot(
    schedule: &[ScheduledGate],
    n_qubits: usize,
    noise: &NoiseModel,
    rng: &mut impl Rng,
    outcomes: &mut Vec<bool>,
) -> Vec<bool> {
    // Record order (not start-cycle order): same rationale as
    // [`run_ideal`]. Idle-gap accounting is per-qubit against explicit
    // start/end cycles, so cross-qubit processing order only permutes
    // the RNG draw sequence, which is statistically equivalent.
    let mut bits = vec![false; n_qubits];
    let mut clbits: std::collections::HashMap<square_qir::ClbitId, bool> =
        std::collections::HashMap::new();
    let mut last_time = vec![0u64; n_qubits];
    let mut depth = 0u64;
    for g in schedule {
        depth = depth.max(g.end());
        // Relax each operand over its idle gap before the gate.
        let mut operands: Vec<PhysId> = Vec::with_capacity(g.gate.arity());
        g.gate.for_each_qubit(|q| operands.push(*q));
        for q in &operands {
            let idle = g.start.saturating_sub(last_time[q.index()]);
            if bits[q.index()] && noise.sample_relax(idle, rng) {
                bits[q.index()] = false;
            }
        }
        let fires = if let Some(c) = g.measure {
            let outcome = bits[operands[0].index()];
            clbits.insert(c, outcome);
            outcomes.push(outcome);
            false
        } else {
            g.guard
                .is_none_or(|c| clbits.get(&c).copied().unwrap_or(false))
        };
        if fires {
            apply_gate(&g.gate, &mut bits);
            // Gate-error injection in the Clifford+T decomposition.
            let (e1, e2) = error_events(&g.gate);
            for _ in 0..e1 {
                if noise.sample_1q(rng) {
                    let victim = operands[rng.gen_range(0..operands.len())];
                    bits[victim.index()] ^= true;
                }
            }
            for _ in 0..e2 {
                let f = noise.sample_2q(rng);
                if f.flip_a {
                    let victim = operands[rng.gen_range(0..operands.len())];
                    bits[victim.index()] ^= true;
                }
                if f.flip_b && operands.len() >= 2 {
                    let victim = operands[rng.gen_range(0..operands.len())];
                    bits[victim.index()] ^= true;
                }
            }
        }
        // Relaxation during the event itself (measurement readout and
        // skipped guards occupy the cell too).
        for q in &operands {
            if bits[q.index()] && noise.sample_relax(g.dur, rng) {
                bits[q.index()] = false;
            }
            last_time[q.index()] = g.end();
        }
    }
    // Final idle until measurement at circuit end.
    for q in 0..n_qubits {
        let idle = depth.saturating_sub(last_time[q]);
        if bits[q] && noise.sample_relax(idle, rng) {
            bits[q] = false;
        }
    }
    bits
}

/// Samples `config.shots` noisy trajectories, measuring the listed
/// qubits (little-endian packing), and returns the outcome histogram.
pub fn sample_histogram(
    schedule: &[ScheduledGate],
    n_qubits: usize,
    measure: &[PhysId],
    noise: &NoiseModel,
    config: &TrajectoryConfig,
) -> Histogram {
    sample_histogram_traced(schedule, n_qubits, measure, noise, config).0
}

/// Like [`sample_histogram`], additionally returning the concatenated
/// stream of mid-circuit measurement outcomes across all shots (in
/// shot-major, record order). The stream is a pure function of the
/// schedule, noise model, and meta-seed — the determinism contract the
/// seeded golden test pins down.
pub fn sample_histogram_traced(
    schedule: &[ScheduledGate],
    n_qubits: usize,
    measure: &[PhysId],
    noise: &NoiseModel,
    config: &TrajectoryConfig,
) -> (Histogram, Vec<bool>) {
    assert!(measure.len() <= 64, "at most 64 measured qubits");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut hist = Histogram::new();
    let mut outcomes = Vec::new();
    for _ in 0..config.shots {
        let bits = run_noisy_shot(schedule, n_qubits, noise, &mut rng, &mut outcomes);
        let outcome: Vec<bool> = measure.iter().map(|q| bits[q.index()]).collect();
        hist.record(Histogram::pack(&outcome));
    }
    (hist, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_arch::NoiseParams;

    fn sched(gates: Vec<(Gate<PhysId>, u64, u64)>) -> Vec<ScheduledGate> {
        gates
            .into_iter()
            .map(|(gate, start, dur)| ScheduledGate {
                gate,
                start,
                dur,
                is_comm: false,
                guard: None,
                measure: None,
            })
            .collect()
    }

    #[test]
    fn ideal_run_computes_classically() {
        // X q0; CX q0->q1; CCX q0,q1->q2
        let s = sched(vec![
            (Gate::X { target: PhysId(0) }, 0, 1),
            (
                Gate::Cx {
                    control: PhysId(0),
                    target: PhysId(1),
                },
                1,
                1,
            ),
            (
                Gate::Ccx {
                    c0: PhysId(0),
                    c1: PhysId(1),
                    target: PhysId(2),
                },
                2,
                6,
            ),
        ]);
        assert_eq!(run_ideal(&s, 3), vec![true, true, true]);
    }

    #[test]
    fn noiseless_trajectory_matches_ideal() {
        let s = sched(vec![
            (Gate::X { target: PhysId(0) }, 0, 1),
            (
                Gate::Swap {
                    a: PhysId(0),
                    b: PhysId(2),
                },
                1,
                3,
            ),
        ]);
        let noise = NoiseModel::new(NoiseParams::noiseless());
        let mut rng = StdRng::seed_from_u64(3);
        let bits = run_noisy(&s, 3, &noise, &mut rng);
        assert_eq!(bits, run_ideal(&s, 3));
        assert_eq!(bits, vec![false, false, true]);
    }

    #[test]
    fn histogram_concentrates_on_ideal_under_light_noise() {
        let s = sched(vec![
            (Gate::X { target: PhysId(0) }, 0, 1),
            (
                Gate::Cx {
                    control: PhysId(0),
                    target: PhysId(1),
                },
                1,
                1,
            ),
        ]);
        let noise = NoiseModel::new(NoiseParams::paper_simulation());
        let hist = sample_histogram(
            &s,
            2,
            &[PhysId(0), PhysId(1)],
            &noise,
            &TrajectoryConfig {
                shots: 4096,
                seed: 42,
            },
        );
        // Ideal outcome 0b11: overwhelmingly likely with 2 gates.
        assert!(hist.probability(0b11) > 0.95);
    }

    #[test]
    fn deeper_circuits_are_noisier() {
        let noise = NoiseModel::new(NoiseParams::paper_simulation());
        let shallow = sched(vec![(Gate::X { target: PhysId(0) }, 0, 1)]);
        let mut deep_gates = vec![(Gate::X { target: PhysId(0) }, 0u64, 1u64)];
        for i in 0..200u64 {
            // 100 CNOT pairs that cancel: identity circuit with depth.
            deep_gates.push((
                Gate::Cx {
                    control: PhysId(0),
                    target: PhysId(1),
                },
                1 + i,
                1,
            ));
        }
        let deep = sched(deep_gates);
        let cfg = TrajectoryConfig {
            shots: 4096,
            seed: 9,
        };
        let h_shallow = sample_histogram(&shallow, 2, &[PhysId(0), PhysId(1)], &noise, &cfg);
        let h_deep = sample_histogram(&deep, 2, &[PhysId(0), PhysId(1)], &noise, &cfg);
        assert!(
            h_deep.probability(0b01) < h_shallow.probability(0b01),
            "more gates, lower success: {} vs {}",
            h_deep.probability(0b01),
            h_shallow.probability(0b01)
        );
    }

    #[test]
    fn relaxation_decays_idle_ones() {
        // X at t=0, then nothing until a dummy gate at t=5000 on
        // another qubit stretches the circuit: q0 idles 5000 cycles
        // (1 ms over T1 = 50 µs) and should essentially always decay.
        let s = sched(vec![
            (Gate::X { target: PhysId(0) }, 0, 1),
            (Gate::X { target: PhysId(1) }, 5000, 1),
        ]);
        let noise = NoiseModel::new(NoiseParams::paper_simulation());
        let hist = sample_histogram(
            &s,
            2,
            &[PhysId(0)],
            &noise,
            &TrajectoryConfig {
                shots: 2048,
                seed: 5,
            },
        );
        assert!(hist.probability(0b0) > 0.99, "idle |1⟩ relaxed");
    }

    /// The MBU cell — prep, measure, guarded correction — as routing
    /// emits it: the measurement carrier names the cell and records
    /// into c0; the correction fires only on outcome 1.
    fn mbu_cell() -> Vec<ScheduledGate> {
        use square_qir::ClbitId;
        vec![
            ScheduledGate {
                gate: Gate::X { target: PhysId(0) },
                start: 0,
                dur: 1,
                is_comm: false,
                guard: None,
                measure: None,
            },
            ScheduledGate {
                gate: Gate::X { target: PhysId(0) },
                start: 1,
                dur: 1,
                is_comm: false,
                guard: None,
                measure: Some(ClbitId(0)),
            },
            ScheduledGate {
                gate: Gate::X { target: PhysId(0) },
                start: 2,
                dur: 1,
                is_comm: false,
                guard: Some(ClbitId(0)),
                measure: None,
            },
        ]
    }

    #[test]
    fn noiseless_feedback_corrects_the_ancilla() {
        let s = mbu_cell();
        let noise = NoiseModel::new(NoiseParams::noiseless());
        let mut rng = StdRng::seed_from_u64(1);
        let mut outcomes = Vec::new();
        let bits = run_noisy_shot(&s, 1, &noise, &mut rng, &mut outcomes);
        assert_eq!(bits, vec![false], "guarded X returned the cell to |0⟩");
        assert_eq!(outcomes, vec![true], "measurement saw the prepped 1");
        assert_eq!(bits, run_ideal(&s, 1), "noiseless trajectory = replay");
    }

    #[test]
    fn seeded_golden_outcome_stream_under_mid_circuit_measurement() {
        // Satellite: trajectory-sim determinism under mid-circuit
        // measurement. One meta-seed drives every shot's RNG, so the
        // concatenated outcome stream and the histogram are exact
        // functions of (schedule, noise, config): two runs with the
        // same meta-seed must agree bit for bit, and a different
        // meta-seed must not reproduce the stream.
        let s = mbu_cell();
        let noise = NoiseModel::new(NoiseParams::paper_simulation());
        let cfg = TrajectoryConfig {
            shots: 256,
            seed: 0x6B1D,
        };
        let (h1, o1) = sample_histogram_traced(&s, 1, &[PhysId(0)], &noise, &cfg);
        let (h2, o2) = sample_histogram_traced(&s, 1, &[PhysId(0)], &noise, &cfg);
        assert_eq!(h1, h2, "same meta-seed, same histogram");
        assert_eq!(o1, o2, "same meta-seed, same outcome stream");
        assert_eq!(o1.len(), 256, "exactly one measurement per shot");
        // Under light noise the prep almost always survives to the
        // measurement, and the correction then restores |0⟩.
        assert!(o1.iter().filter(|&&b| b).count() > 240);
        assert!(h1.probability(0b0) > 0.95);
        let (_, o3) = sample_histogram_traced(
            &s,
            1,
            &[PhysId(0)],
            &noise,
            &TrajectoryConfig {
                shots: 256,
                seed: 0x6B1E,
            },
        );
        assert_ne!(o1, o3, "a different meta-seed perturbs the stream");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = sched(vec![(Gate::X { target: PhysId(0) }, 0, 1)]);
        let noise = NoiseModel::new(NoiseParams::paper_simulation());
        let cfg = TrajectoryConfig {
            shots: 512,
            seed: 77,
        };
        let h1 = sample_histogram(&s, 1, &[PhysId(0)], &noise, &cfg);
        let h2 = sample_histogram(&s, 1, &[PhysId(0)], &noise, &cfg);
        assert_eq!(h1, h2);
    }
}

//! Record-order replay of routed physical schedules — the physical
//! half of translation validation.
//!
//! The compile-time executor applies operations to the machine one at
//! a time; the recorded schedule is exactly that emission order, with
//! routing SWAPs interleaved at the points they actually happened. On
//! a computational-basis state, replaying the stream **in record
//! order** therefore reproduces the machine's semantics by
//! construction: every physical gate mirrors the virtual gate applied
//! at that point, and SWAPs move data and pooled |0⟩ cells exactly as
//! routing did.
//!
//! Record order is deliberately *not* start-cycle order. On swap-chain
//! (NISQ) machines the two coincide per qubit — the ASAP timeline
//! makes start cycles monotone along every qubit's gate sequence, an
//! invariant [`check_swapchain_schedule`] verifies. On braided (FT)
//! machines they can differ: a composite Toffoli is recorded at the
//! start of its *earliest* pairwise braid, which may precede an
//! earlier-recorded gate on an operand that only joins a *later*
//! braid, so sorting by start cycle can illegally reorder same-qubit
//! gates. Replay through this module stays correct for both targets.

use std::collections::HashMap;
use std::fmt;

use square_arch::PhysId;
use square_qir::{ClbitId, Gate};
use square_route::ScheduledGate;

/// Applies one physical gate's boolean semantics to the state.
pub fn apply_gate(gate: &Gate<PhysId>, bits: &mut [bool]) {
    match gate {
        Gate::X { target } => bits[target.index()] ^= true,
        Gate::Cx { control, target } => {
            if bits[control.index()] {
                bits[target.index()] ^= true;
            }
        }
        Gate::Ccx { c0, c1, target } => {
            if bits[c0.index()] && bits[c1.index()] {
                bits[target.index()] ^= true;
            }
        }
        Gate::Swap { a, b } => bits.swap(a.index(), b.index()),
        Gate::Mcx { controls, target } => {
            if controls.iter().all(|c| bits[c.index()]) {
                bits[target.index()] ^= true;
            }
        }
    }
}

/// Applies one scheduled event to the state and the classical-bit
/// side channel: a measurement records its cell's bit into the
/// destination clbit (and applies no gate — the carrier gate merely
/// names the cell), a guarded gate fires only when its clbit was
/// recorded 1, and everything else applies directly.
pub fn step_gate(g: &ScheduledGate, bits: &mut [bool], clbits: &mut HashMap<ClbitId, bool>) {
    if let Some(c) = g.measure {
        let mut cell = PhysId(0);
        g.gate.for_each_qubit(|p| cell = *p);
        clbits.insert(c, bits[cell.index()]);
        return;
    }
    if let Some(c) = g.guard {
        if !clbits.get(&c).copied().unwrap_or(false) {
            return;
        }
    }
    apply_gate(&g.gate, bits);
}

/// Outcome of a record-order replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Final basis state over all physical qubits.
    pub bits: Vec<bool>,
    /// Final values of every classical bit written by mid-circuit
    /// measurements (empty for fully unitary schedules).
    pub clbits: HashMap<ClbitId, bool>,
    /// Program gates applied.
    pub program_gates: u64,
    /// Communication gates (routing swaps) applied.
    pub comm_gates: u64,
}

impl Replay {
    /// Reads the listed physical qubits out of the final state (e.g.
    /// a `CompileReport::measure_map`), in order.
    pub fn read(&self, measure: &[PhysId]) -> Vec<bool> {
        measure.iter().map(|q| self.bits[q.index()]).collect()
    }
}

/// Replays `schedule` in record order from |0…0⟩ over `n_qubits`
/// physical qubits.
pub fn replay_schedule(schedule: &[ScheduledGate], n_qubits: usize) -> Replay {
    let mut bits = vec![false; n_qubits];
    let mut clbits = HashMap::new();
    let mut program_gates = 0u64;
    let mut comm_gates = 0u64;
    for g in schedule {
        step_gate(g, &mut bits, &mut clbits);
        if g.is_comm {
            comm_gates += 1;
        } else {
            program_gates += 1;
        }
    }
    Replay {
        bits,
        clbits,
        program_gates,
        comm_gates,
    }
}

/// A per-qubit scheduling violation found by
/// [`check_swapchain_schedule`]: in record order, some qubit's next
/// gate starts before its previous gate ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleViolation {
    /// The qubit whose gate sequence is inconsistent.
    pub qubit: PhysId,
    /// Index (into the schedule) of the offending gate.
    pub gate_index: usize,
    /// Its start cycle.
    pub start: u64,
    /// End cycle of the qubit's previous gate.
    pub prev_end: u64,
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate #{} on {} starts at cycle {} before the qubit's previous gate ends at {}",
            self.gate_index, self.qubit, self.start, self.prev_end
        )
    }
}

/// Checks the ASAP invariant of swap-chain schedules: along every
/// physical qubit, gates appear in record order with disjoint,
/// non-decreasing time intervals (`start ≥` previous `end`). Braided
/// schedules intentionally violate this for composite gates (see the
/// module docs), so the check only applies to swap-chain targets.
pub fn check_swapchain_schedule(schedule: &[ScheduledGate]) -> Result<(), ScheduleViolation> {
    let mut busy_until: Vec<u64> = Vec::new();
    for (i, g) in schedule.iter().enumerate() {
        let mut violation = None;
        g.gate.for_each_qubit(|q| {
            if q.index() >= busy_until.len() {
                busy_until.resize(q.index() + 1, 0);
            }
            if g.start < busy_until[q.index()] && violation.is_none() {
                violation = Some(ScheduleViolation {
                    qubit: *q,
                    gate_index: i,
                    start: g.start,
                    prev_end: busy_until[q.index()],
                });
            }
            busy_until[q.index()] = g.end();
        });
        if let Some(v) = violation {
            return Err(v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg(gate: Gate<PhysId>, start: u64, dur: u64, is_comm: bool) -> ScheduledGate {
        ScheduledGate {
            gate,
            start,
            dur,
            is_comm,
            guard: None,
            measure: None,
        }
    }

    #[test]
    fn measurement_feedback_resets_through_the_side_channel() {
        // X q0; measure q0 -> c0; [c0] X q0 — the MBU cell: whatever
        // the pre-measurement bit, the guarded correction returns the
        // qubit to |0⟩, and the outcome survives in the clbit.
        let s = vec![
            sg(Gate::X { target: PhysId(0) }, 0, 1, false),
            ScheduledGate {
                gate: Gate::X { target: PhysId(0) },
                start: 1,
                dur: 1,
                is_comm: false,
                guard: None,
                measure: Some(ClbitId(0)),
            },
            ScheduledGate {
                gate: Gate::X { target: PhysId(0) },
                start: 2,
                dur: 1,
                is_comm: false,
                guard: Some(ClbitId(0)),
                measure: None,
            },
        ];
        let r = replay_schedule(&s, 1);
        assert_eq!(r.bits, vec![false], "corrected back to |0⟩");
        assert_eq!(r.clbits.get(&ClbitId(0)), Some(&true));
        assert_eq!(r.program_gates, 3);
        // An unfired guard leaves the state alone: without the X prep,
        // the measurement reads 0 and the correction must not apply.
        let r0 = replay_schedule(&s[1..], 1);
        assert_eq!(r0.bits, vec![false]);
        assert_eq!(r0.clbits.get(&ClbitId(0)), Some(&false));
    }

    #[test]
    fn replay_applies_in_record_order() {
        // Record order computes X q0; CX q0→q1 even though the
        // recorded starts are deliberately shuffled (as a braided
        // composite could produce): start-sorted order would run the
        // CX first and leave q1 at 0.
        let s = vec![
            sg(Gate::X { target: PhysId(0) }, 5, 1, false),
            sg(
                Gate::Cx {
                    control: PhysId(0),
                    target: PhysId(1),
                },
                0,
                1,
                false,
            ),
        ];
        let r = replay_schedule(&s, 2);
        assert_eq!(r.bits, vec![true, true]);
        assert_eq!(r.program_gates, 2);
        assert_eq!(r.comm_gates, 0);
        assert_eq!(r.read(&[PhysId(1), PhysId(0)]), vec![true, true]);
    }

    #[test]
    fn swaps_relocate_data_and_count_as_comm() {
        let s = vec![
            sg(Gate::X { target: PhysId(0) }, 0, 1, false),
            sg(
                Gate::Swap {
                    a: PhysId(0),
                    b: PhysId(1),
                },
                1,
                3,
                true,
            ),
        ];
        let r = replay_schedule(&s, 3);
        assert_eq!(r.bits, vec![false, true, false]);
        assert_eq!(r.comm_gates, 1);
    }

    #[test]
    fn consistency_check_accepts_asap_sequences() {
        let s = vec![
            sg(Gate::X { target: PhysId(0) }, 0, 1, false),
            sg(
                Gate::Cx {
                    control: PhysId(0),
                    target: PhysId(1),
                },
                1,
                1,
                false,
            ),
            sg(Gate::X { target: PhysId(1) }, 2, 1, false),
        ];
        assert_eq!(check_swapchain_schedule(&s), Ok(()));
    }

    #[test]
    fn consistency_check_rejects_time_travel() {
        let s = vec![
            sg(Gate::X { target: PhysId(3) }, 4, 1, false),
            sg(Gate::X { target: PhysId(3) }, 2, 1, false),
        ];
        let err = check_swapchain_schedule(&s).unwrap_err();
        assert_eq!(err.qubit, PhysId(3));
        assert_eq!(err.gate_index, 1);
        assert_eq!((err.start, err.prev_end), (2, 5));
        assert!(err.to_string().contains("gate #1"));
    }
}

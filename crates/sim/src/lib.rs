//! # square-sim — Monte-Carlo noisy execution of scheduled circuits
//!
//! Substitutes for the paper's IBM Qiskit Aer noise simulations
//! (Section V-C3). Every circuit SQUARE compiles is *classical
//! reversible* (X / CNOT / Toffoli / SWAP), so a computational-basis
//! input remains a basis state throughout execution. Under the
//! paper's noise channels this admits an exact trajectory treatment:
//!
//! * **Depolarizing gate noise** applies a uniformly random non-identity
//!   Pauli with probability `p`; `Z`-type errors only contribute a
//!   global phase to a basis state, while `X`/`Y`-type errors flip the
//!   bit. Sampling the Pauli exactly reproduces the measurement
//!   distribution a density-matrix simulation would produce.
//! * **Thermal relaxation** (`T1`) sends |1⟩ → |0⟩ with probability
//!   `1 − exp(−t/T1)` over an interval `t`; pure dephasing (`T2`) has
//!   no observable effect on basis states.
//!
//! A trajectory therefore tracks one boolean state vector, injecting
//! stochastic flips per gate (in the gate's Clifford+T decomposition,
//! matching the analytical model's accounting) and per idle interval.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod noise;
pub mod replay;
pub mod trajectory;

pub use noise::NoiseModel;
pub use replay::{check_swapchain_schedule, replay_schedule, Replay, ScheduleViolation};
pub use trajectory::{run_ideal, run_noisy, sample_histogram, TrajectoryConfig};

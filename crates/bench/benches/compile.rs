//! Criterion benchmarks of compiler throughput: how fast the
//! instrumentation-driven executor compiles each benchmark class per
//! policy, plus the communication substrates in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use square_core::{compile, CompilerConfig, Policy};
use square_workloads::modexp::ModexpSpec;
use square_workloads::{build, catalog, Benchmark};

fn bench_nisq_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("nisq_compile");
    group.sample_size(20);
    for bench in [Benchmark::Rd53, Benchmark::Adder4, Benchmark::BelleS] {
        let program = build(bench).expect("builds");
        for policy in Policy::BASELINE_THREE {
            group.bench_with_input(
                BenchmarkId::new(bench.name(), policy.label()),
                &policy,
                |b, &policy| b.iter(|| compile(&program, &CompilerConfig::nisq(policy)).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_modexp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("modexp_scaling");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let program = catalog::modexp_program(ModexpSpec { n, k: n, g: 7 }).expect("builds");
        group.bench_with_input(BenchmarkId::new("square", n), &program, |b, p| {
            b.iter(|| compile(p, &CompilerConfig::nisq(Policy::Square)).unwrap())
        });
    }
    group.finish();
}

fn bench_comm_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_models");
    group.sample_size(10);
    let program = build(Benchmark::Modexp).expect("builds");
    group.bench_function("swap_chains", |b| {
        b.iter(|| compile(&program, &CompilerConfig::nisq(Policy::Square)).unwrap())
    });
    group.bench_function("braiding", |b| {
        b.iter(|| compile(&program, &CompilerConfig::ft(Policy::Square)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_nisq_compile,
    bench_modexp_scaling,
    bench_comm_models
);
criterion_main!(benches);

//! Criterion benchmarks of the compilation hot path: every policy ×
//! the workload catalog through the full instrumentation-driven
//! executor (allocation, CER decisions, routing, scheduling).
//!
//! Environment knobs (for the CI smoke lane):
//!
//! * `SQUARE_BENCH_SET=smoke|full` — benchmark set (default `smoke`,
//!   the seven NISQ workloads; `full` adds the medium/large catalog).
//! * `SQUARE_BENCH_SAMPLES=N` — timed samples per cell (default 10).
//!
//! The machine-readable companion is `bench_gate` (same measurement
//! core via `square_bench::baseline`), which records/checks
//! `BENCH_square.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use square_bench::baseline::BenchSet;
use square_core::{compile, CompilerConfig, Policy};
use square_workloads::build;

fn env_set() -> BenchSet {
    std::env::var("SQUARE_BENCH_SET")
        .ok()
        .and_then(|v| BenchSet::parse(&v))
        .unwrap_or(BenchSet::Smoke)
}

fn env_samples() -> usize {
    std::env::var("SQUARE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    group.sample_size(env_samples());
    for &bench in env_set().benchmarks() {
        let program = build(bench).expect("benchmark builds");
        for policy in Policy::ALL {
            group.bench_with_input(
                BenchmarkId::new(bench.name(), policy.cli_name()),
                &policy,
                |b, &policy| b.iter(|| compile(&program, &CompilerConfig::nisq(policy)).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);

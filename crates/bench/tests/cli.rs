//! CLI-level checks of the `experiments` and `bench_gate` binaries:
//! stdout stays machine-readable (progress is stderr-only), and the
//! record → check baseline round trip gates correctly in both
//! directions.

use std::process::Command;

use serde::Value;

#[test]
fn experiments_json_stdout_is_pure_json_with_progress_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "--bench", "RD53", "--policy", "square", "--arch", "nisq", "--json",
        ])
        .output()
        .expect("experiments runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    // The whole of stdout must be one JSON document — the property
    // that makes `experiments --json | jq .` work.
    let matrix = serde_json::from_str(stdout.trim()).expect("stdout parses as JSON");
    let cells = matrix
        .get("cells")
        .and_then(Value::as_seq)
        .expect("matrix has cells");
    assert_eq!(cells.len(), 1);
    assert!(cells[0].get("report").unwrap().get("aqv").is_some());
    // Progress landed on stderr, not stdout.
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(
        stderr.contains("[1/1]") && stderr.contains("RD53"),
        "expected progress on stderr, got: {stderr}"
    );
}

/// Rewrites the first `"gates": N` of the first baseline cell.
fn corrupt_first_gates(json: &str) -> String {
    let needle = "\"gates\": ";
    let at = json.find(needle).expect("baseline has a gates field") + needle.len();
    let end = json[at..]
        .find(|c: char| !c.is_ascii_digit())
        .map(|i| at + i)
        .expect("number terminated");
    format!("{}{}{}", &json[..at], "999999999", &json[end..])
}

#[test]
fn bench_gate_round_trip_passes_then_fails_on_fingerprint_drift() {
    let dir = std::env::temp_dir().join(format!("square_bench_gate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let baseline = dir.join("baseline.json");
    let record = Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args(["record", "--set", "smoke", "--samples", "1", "--out"])
        .arg(&baseline)
        .output()
        .expect("bench_gate record runs");
    assert!(record.status.success(), "{record:?}");

    // Checking a freshly recorded baseline against the same compiler
    // must pass: fingerprints are deterministic, and the huge
    // tolerance absorbs timing noise.
    let check = Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args([
            "check",
            "--set",
            "smoke",
            "--samples",
            "1",
            "--tolerance",
            "100",
            "--baseline",
        ])
        .arg(&baseline)
        .output()
        .expect("bench_gate check runs");
    assert!(
        check.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&check.stderr)
    );

    // A drifted circuit fingerprint must fail even with that
    // tolerance.
    let text = std::fs::read_to_string(&baseline).expect("baseline readable");
    std::fs::write(&baseline, corrupt_first_gates(&text)).expect("baseline writable");
    let drift = Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args([
            "check",
            "--set",
            "smoke",
            "--samples",
            "1",
            "--tolerance",
            "100",
            "--baseline",
        ])
        .arg(&baseline)
        .output()
        .expect("bench_gate check runs");
    assert_eq!(drift.status.code(), Some(1), "{drift:?}");
    assert!(
        String::from_utf8_lossy(&drift.stderr).contains("FINGERPRINT DRIFT"),
        "stderr: {}",
        String::from_utf8_lossy(&drift.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

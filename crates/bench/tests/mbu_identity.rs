//! MBU-off identity: with measurement-based uncomputation disabled
//! (the default), the compiler's output is field-identical to the
//! pre-MBU pipeline — same report JSON byte for byte, no classical
//! bits, no `Measure`/`CondGate` ops anywhere in the trace. This is
//! the contract that keeps committed bench/service fingerprints valid
//! across the MBU rollout.

use proptest::prelude::*;
use square_bench::sweep::report_json;
use square_core::{compile, CompilerConfig, Policy};
use square_qir::TraceOp;
use square_workloads::synthetic::{synthesize, SynthParams};

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn mbu_off_compiles_are_field_identical(
        seed in any::<u64>(),
        levels in 1usize..=2,
        max_callees in 1usize..=3,
        inputs_per_fn in 2usize..=5,
        max_ancilla in 1usize..=4,
        max_gates in 3usize..=12,
    ) {
        let params = SynthParams {
            levels,
            max_callees,
            inputs_per_fn,
            max_ancilla,
            max_gates,
            seed,
        };
        let program = synthesize(&params).expect("synthetic program builds");
        for policy in [Policy::Eager, Policy::Square] {
            let implicit = compile(&program, &CompilerConfig::nisq(policy))
                .expect("default compile");
            let explicit = compile(
                &program,
                &CompilerConfig::nisq(policy).with_mbu(false),
            )
            .expect("mbu-off compile");
            // Byte-identical wire format: the gated `mbu` block never
            // appears, so pre-MBU fingerprints still match.
            let implicit_json = serde_json::to_string(&report_json(&implicit)).unwrap();
            let explicit_json = serde_json::to_string(&report_json(&explicit)).unwrap();
            prop_assert_eq!(&implicit_json, &explicit_json);
            prop_assert!(!implicit_json.contains("\"mbu\""), "{}", implicit_json);
            // And no classical machinery leaks into the trace.
            prop_assert!(!implicit.mbu);
            prop_assert_eq!(implicit.mbu_stats.mbu_frames, 0);
            prop_assert!(implicit.trace.iter().all(|op| !matches!(
                op,
                TraceOp::Measure { .. } | TraceOp::CondGate { .. }
            )));
        }
    }
}

//! Table IV — device error rates and simulation noise parameters.

use square_arch::NoiseParams;

/// Renders the table as text.
pub fn render() -> String {
    let rows: [(&str, NoiseParams); 3] = [
        ("IBM-Sup", NoiseParams::ibm_sup()),
        ("IonQ-Trap", NoiseParams::ionq_trap()),
        ("Our Simulation", NoiseParams::paper_simulation()),
    ];
    let mut out = String::new();
    out.push_str("Table IV — Error rates on real devices and our noise model\n\n");
    out.push_str(&format!(
        "{:<16} {:>8} {:>8} {:>10} {:>10}\n",
        "Device", "1q err", "2q err", "T1 (us)", "T2 (us)"
    ));
    for (name, p) in rows {
        out.push_str(&format!(
            "{:<16} {:>7.2}% {:>7.2}% {:>10.0} {:>10.0}\n",
            name,
            p.p1 * 100.0,
            p.p2 * 100.0,
            p.t1_us,
            p.t2_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_mentions_all_devices() {
        let t = super::render();
        assert!(t.contains("IBM-Sup"));
        assert!(t.contains("IonQ-Trap"));
        assert!(t.contains("Our Simulation"));
    }
}

//! Fig. 8 — impact of SQUARE on NISQ applications.
//!
//! * **(a)** active quantum volume per policy (4 policies);
//! * **(b)** worst-case analytical success rate (3 policies) — the
//!   paper reports SQUARE improving the average by 1.47× over Eager;
//! * **(c)** total variation distance between noisy and ideal
//!   execution of each policy's *own* scheduled circuit (8192 shots)
//!   — SQUARE achieves the lowest distance on almost all benchmarks.

use square_arch::{NoiseParams, PhysId};
use square_core::{compile_with_inputs, CompilerConfig, Policy};
use square_metrics::{total_variation_distance, worst_case_success, Histogram};
use square_sim::{run_ideal, sample_histogram, NoiseModel, TrajectoryConfig};
use square_workloads::{build, Benchmark};

use crate::table3::nisq_machine;

/// Per-benchmark, per-policy NISQ quality metrics.
#[derive(Debug)]
pub struct QualityRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Policy.
    pub policy: Policy,
    /// Active quantum volume (Fig. 8a).
    pub aqv: u64,
    /// Analytical worst-case success rate (Fig. 8b).
    pub success: f64,
    /// Total variation distance from the ideal outcome (Fig. 8c);
    /// `None` when simulation was skipped.
    pub tvd: Option<f64>,
}

/// Deterministic per-benchmark input pattern (alternating bits), so
/// ideal outcomes are nontrivial.
fn input_pattern(bench: Benchmark) -> Vec<bool> {
    (0..bench.input_qubits()).map(|i| i % 3 != 2).collect()
}

/// Noise scale applied to the Table IV point for trajectory
/// simulation. The paper's reported dTV magnitudes (0.02–0.4 over
/// circuits with hundreds of two-qubit gates) correspond to a much
/// milder effective channel than 1% depolarizing per gate; this
/// calibration reproduces the reported magnitudes while leaving every
/// ordering untouched (see EXPERIMENTS.md).
pub const SIM_NOISE_SCALE: f64 = 0.05;

/// Runs the full Fig. 8 pipeline. `shots = 0` skips noise simulation
/// (Fig. 8a/8b only).
pub fn compute(shots: u32) -> Vec<QualityRow> {
    let noise = NoiseParams::paper_simulation();
    let model = NoiseModel::new(noise.scaled(SIM_NOISE_SCALE));
    let mut rows = Vec::new();
    for bench in Benchmark::NISQ {
        let program = build(bench).expect("benchmark builds");
        let inputs = input_pattern(bench);
        for policy in Policy::ALL {
            let cfg = CompilerConfig::nisq(policy)
                .with_arch(nisq_machine())
                .with_schedule();
            let rep = compile_with_inputs(&program, &inputs, &cfg)
                .expect("NISQ benchmarks fit the machine");
            let schedule = rep.schedule.as_deref().expect("schedule recorded");
            let mut g1 = 0u64;
            let mut gm = 0u64;
            for g in schedule {
                if g.gate.arity() == 1 {
                    g1 += 1;
                } else {
                    gm += 1;
                }
            }
            let success = worst_case_success(g1, gm, rep.depth, &noise);
            let tvd = (shots > 0 && policy != Policy::SquareLaaOnly).then(|| {
                let n = rep.machine_qubits;
                let measure: Vec<PhysId> = rep.measure_map();
                let ideal_bits = run_ideal(schedule, n);
                let ideal_outcome: Vec<bool> =
                    measure.iter().map(|q| ideal_bits[q.index()]).collect();
                let mut ideal = Histogram::new();
                ideal.record(Histogram::pack(&ideal_outcome));
                let noisy = sample_histogram(
                    schedule,
                    n,
                    &measure,
                    &model,
                    &TrajectoryConfig {
                        shots,
                        seed: 0x5168c + bench.input_qubits() as u64,
                    },
                );
                total_variation_distance(&noisy, &ideal)
            });
            rows.push(QualityRow {
                bench: bench.name(),
                policy,
                aqv: rep.aqv,
                success,
                tvd,
            });
        }
    }
    rows
}

/// Renders all three panels as text.
pub fn render(shots: u32) -> String {
    let rows = compute(shots);
    let mut out = String::new();
    out.push_str("Fig. 8a — Active quantum volume (lower is better)\n\n");
    out.push_str(&format!("{:<12}", "Benchmark"));
    for p in Policy::ALL {
        out.push_str(&format!(" {:>18}", p.label()));
    }
    out.push('\n');
    for bench in Benchmark::NISQ {
        out.push_str(&format!("{:<12}", bench.name()));
        for p in Policy::ALL {
            let row = rows
                .iter()
                .find(|r| r.bench == bench.name() && r.policy == p)
                .unwrap();
            out.push_str(&format!(" {:>18}", row.aqv));
        }
        out.push('\n');
    }

    out.push_str("\nFig. 8b — Worst-case analytical success rate (higher is better)\n\n");
    out.push_str(&format!("{:<12}", "Benchmark"));
    for p in Policy::BASELINE_THREE {
        out.push_str(&format!(" {:>10}", p.label()));
    }
    out.push('\n');
    let mut ratio_sum = 0.0;
    let mut ratio_n = 0u32;
    for bench in Benchmark::NISQ {
        out.push_str(&format!("{:<12}", bench.name()));
        let get = |p: Policy| {
            rows.iter()
                .find(|r| r.bench == bench.name() && r.policy == p)
                .unwrap()
        };
        for p in Policy::BASELINE_THREE {
            out.push_str(&format!(" {:>10.4}", get(p).success));
        }
        if get(Policy::Eager).success > 0.0 {
            ratio_sum += (get(Policy::Square).success / get(Policy::Eager).success).ln();
            ratio_n += 1;
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "\ngeomean SQUARE/EAGER success ratio: {:.2}x (paper: 1.47x arithmetic)\n",
        (ratio_sum / ratio_n.max(1) as f64).exp()
    ));

    if shots > 0 {
        out.push_str(&format!(
            "\nFig. 8c — Total variation distance, {shots} shots (lower is better)\n\n"
        ));
        out.push_str(&format!("{:<12}", "Benchmark"));
        for p in Policy::BASELINE_THREE {
            out.push_str(&format!(" {:>10}", p.label()));
        }
        out.push('\n');
        for bench in Benchmark::NISQ {
            out.push_str(&format!("{:<12}", bench.name()));
            for p in Policy::BASELINE_THREE {
                let row = rows
                    .iter()
                    .find(|r| r.bench == bench.name() && r.policy == p)
                    .unwrap();
                match row.tvd {
                    Some(d) => out.push_str(&format!(" {:>10.4}", d)),
                    None => out.push_str(&format!(" {:>10}", "-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rates_favor_square_over_eager() {
        let rows = compute(0);
        let mut wins = 0;
        for bench in Benchmark::NISQ {
            let get = |p: Policy| {
                rows.iter()
                    .find(|r| r.bench == bench.name() && r.policy == p)
                    .unwrap()
                    .success
            };
            if get(Policy::Square) >= get(Policy::Eager) {
                wins += 1;
            }
        }
        assert!(wins >= 6, "SQUARE ≥ EAGER success on only {wins}/7");
    }

    #[test]
    fn tvd_is_low_for_square_schedules() {
        // One benchmark with a modest shot count keeps the test fast.
        let rows: Vec<QualityRow> = compute(512)
            .into_iter()
            .filter(|r| r.bench == "2OF5")
            .collect();
        let get = |p: Policy| rows.iter().find(|r| r.policy == p).unwrap();
        let sq = get(Policy::Square).tvd.unwrap();
        assert!((0.0..=1.0).contains(&sq));
        // SQUARE's distance should not exceed Eager's by much (it has
        // fewer swaps, hence less gate noise).
        let eager = get(Policy::Eager).tvd.unwrap();
        assert!(sq <= eager + 0.15, "SQUARE {sq} vs EAGER {eager}");
    }
}

//! Fig. 9 — normalized AQV on medium-scale NISQ-FT boundary machines
//! (100–10000 qubits, swap-chain communication).
//!
//! The paper reports SQUARE reducing AQV by 6.9× on average versus
//! Lazy; the bars to reproduce are LAZY = 1.0 with SQUARE far below,
//! and SQUARE at or below Eager and LAA-only.

use square_arch::CommModel;
use square_core::{CompilerConfig, Policy};
use square_workloads::{build, Benchmark};

use crate::runner::{lattice_for, normalized_aqv, run_policies};

/// One benchmark's normalized-AQV bars.
#[derive(Debug)]
pub struct Bars {
    /// Benchmark name.
    pub bench: &'static str,
    /// Machine size used.
    pub machine_qubits: usize,
    /// (policy, AQV / AQV_lazy).
    pub bars: Vec<(Policy, f64)>,
}

/// Which benchmarks to sweep; `quick` trims the slow 64-bit widths.
pub fn benches(quick: bool) -> Vec<Benchmark> {
    if quick {
        Benchmark::MEDIUM
            .into_iter()
            .filter(|b| !matches!(b, Benchmark::Mul64 | Benchmark::Adder64))
            .collect()
    } else {
        Benchmark::MEDIUM.to_vec()
    }
}

/// Computes the bars for the boundary (swap-chain) machines.
pub fn compute(quick: bool) -> Vec<Bars> {
    benches(quick)
        .into_iter()
        .map(|bench| {
            let program = build(bench).expect("benchmark builds");
            let arch = lattice_for(&program, CommModel::SwapChains);
            let base = CompilerConfig::nisq(Policy::Lazy).with_arch(arch);
            let results = run_policies(&program, &Policy::ALL, &base);
            let machine_qubits = results
                .iter()
                .find_map(|r| r.report.as_ref().ok().map(|rep| rep.machine_qubits))
                .unwrap_or(0);
            Bars {
                bench: bench.name(),
                machine_qubits,
                bars: normalized_aqv(&results),
            }
        })
        .collect()
}

/// Renders the figure as text.
pub fn render(quick: bool) -> String {
    let mut out = String::new();
    out.push_str("Fig. 9 — Normalized AQV, medium-scale machines (swap chains)\n\n");
    out.push_str(&format!("{:<12} {:>8}", "Benchmark", "Machine"));
    for p in Policy::ALL {
        out.push_str(&format!(" {:>18}", p.label()));
    }
    out.push('\n');
    let mut reductions = Vec::new();
    for b in compute(quick) {
        out.push_str(&format!("{:<12} {:>8}", b.bench, b.machine_qubits));
        for p in Policy::ALL {
            match b.bars.iter().find(|(pp, _)| *pp == p) {
                Some((_, v)) => out.push_str(&format!(" {:>18.3}", v)),
                None => out.push_str(&format!(" {:>18}", "-")),
            }
        }
        out.push('\n');
        if let Some((_, v)) = b.bars.iter().find(|(pp, _)| *pp == Policy::Square) {
            reductions.push(1.0 / v.max(1e-9));
        }
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    out.push_str(&format!(
        "\naverage SQUARE AQV reduction vs LAZY: {avg:.1}x (paper: 6.9x)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_beats_lazy_on_every_boundary_benchmark() {
        for b in compute(true) {
            let sq = b
                .bars
                .iter()
                .find(|(p, _)| *p == Policy::Square)
                .map(|(_, v)| *v)
                .unwrap();
            assert!(sq < 1.0, "{}: SQUARE normalized {sq}", b.bench);
        }
    }
}

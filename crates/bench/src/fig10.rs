//! Fig. 10 — normalized AQV on fault-tolerant (braided) machines.
//!
//! Same benchmarks as Fig. 9, but communication is by braiding:
//! constant-time paths that may not cross, with conflicts queuing
//! (Section V-E). The paper reports a 44.08% average AQV reduction
//! versus Lazy, up to 89.66%.

use square_arch::CommModel;
use square_core::{CompilerConfig, Policy};
use square_workloads::build;

use crate::fig9::benches;
use crate::runner::{lattice_for, normalized_aqv, run_policies};

/// One benchmark's normalized-AQV bars on the FT machine.
#[derive(Debug)]
pub struct Bars {
    /// Benchmark name.
    pub bench: &'static str,
    /// (policy, AQV / AQV_lazy).
    pub bars: Vec<(Policy, f64)>,
    /// Average braid conflicts per braid under SQUARE (the FT `S`).
    pub square_comm_factor: f64,
}

/// Computes the bars for the braided machines.
pub fn compute(quick: bool) -> Vec<Bars> {
    benches(quick)
        .into_iter()
        .map(|bench| {
            let program = build(bench).expect("benchmark builds");
            let arch = lattice_for(&program, CommModel::Braiding);
            let base = CompilerConfig::ft(Policy::Lazy).with_arch(arch);
            let results = run_policies(&program, &Policy::ALL, &base);
            let square_comm_factor = results
                .iter()
                .find(|r| r.policy == Policy::Square)
                .and_then(|r| r.report.as_ref().ok())
                .map(|rep| rep.comm_factor)
                .unwrap_or(0.0);
            Bars {
                bench: bench.name(),
                bars: normalized_aqv(&results),
                square_comm_factor,
            }
        })
        .collect()
}

/// Renders the figure as text.
pub fn render(quick: bool) -> String {
    let mut out = String::new();
    out.push_str("Fig. 10 — Normalized AQV on fault-tolerant systems (braiding)\n\n");
    out.push_str(&format!("{:<12}", "Benchmark"));
    for p in Policy::ALL {
        out.push_str(&format!(" {:>18}", p.label()));
    }
    out.push_str("  braid-S\n");
    let mut cuts = Vec::new();
    for b in compute(quick) {
        out.push_str(&format!("{:<12}", b.bench));
        for p in Policy::ALL {
            match b.bars.iter().find(|(pp, _)| *pp == p) {
                Some((_, v)) => out.push_str(&format!(" {:>18.3}", v)),
                None => out.push_str(&format!(" {:>18}", "-")),
            }
        }
        out.push_str(&format!("  {:.3}\n", b.square_comm_factor));
        if let Some((_, v)) = b.bars.iter().find(|(pp, _)| *pp == Policy::Square) {
            cuts.push(1.0 - v);
        }
    }
    let avg = 100.0 * cuts.iter().sum::<f64>() / cuts.len().max(1) as f64;
    out.push_str(&format!(
        "\naverage SQUARE AQV reduction vs LAZY: {avg:.1}% (paper: 44.08%, max 89.66%)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_beats_lazy_under_braiding() {
        let mut wins = 0usize;
        let mut total = 0usize;
        for b in compute(true) {
            total += 1;
            let sq = b
                .bars
                .iter()
                .find(|(p, _)| *p == Policy::Square)
                .map(|(_, v)| *v)
                .unwrap();
            if sq < 1.0 {
                wins += 1;
            }
        }
        assert!(wins * 10 >= total * 8, "SQUARE < LAZY on {wins}/{total}");
    }
}

//! Shared experiment plumbing: machine sizing and policy sweeps.

use square_core::{compile, ArchSpec, CompileReport, CompilerConfig, Policy};
use square_qir::Program;

/// One policy's compile outcome within a sweep.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The policy.
    pub policy: Policy,
    /// Compile report, or the failure (e.g. out of qubits).
    pub report: Result<CompileReport, square_core::CompileError>,
}

/// Sizes a near-square lattice to the benchmark's most demanding
/// policy (Lazy), the paper's "machine that fits the program" setting:
/// the probe runs on an unconstrained auto-grid, and the experiment
/// machine gets ~10% slack over the observed peak.
pub fn lattice_for(program: &Program, comm: square_arch::CommModel) -> ArchSpec {
    let mut cfg = CompilerConfig::nisq(Policy::Lazy);
    cfg.comm = comm;
    let probe = compile(program, &cfg).expect("lazy probe on auto-sized machine");
    let cap = (probe.peak_active as f64 * 1.1) as usize + 4;
    let side = (cap as f64).sqrt().ceil() as u32;
    ArchSpec::Grid {
        width: side,
        height: side,
    }
}

/// Compiles `program` under each policy on the given machine.
pub fn run_policies(
    program: &Program,
    policies: &[Policy],
    base: &CompilerConfig,
) -> Vec<ExperimentResult> {
    policies
        .iter()
        .map(|&policy| {
            let mut cfg = base.clone();
            cfg.policy = policy;
            ExperimentResult {
                policy,
                report: compile(program, &cfg),
            }
        })
        .collect()
}

/// Formats a ratio against the Lazy entry of a sweep (the
/// normalization used by Figs. 9 and 10).
pub fn normalized_aqv(results: &[ExperimentResult]) -> Vec<(Policy, f64)> {
    let lazy = results
        .iter()
        .find(|r| r.policy == Policy::Lazy)
        .and_then(|r| r.report.as_ref().ok())
        .map(|r| r.aqv.max(1))
        .unwrap_or(1);
    results
        .iter()
        .filter_map(|r| {
            r.report
                .as_ref()
                .ok()
                .map(|rep| (r.policy, rep.aqv as f64 / lazy as f64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_arch::CommModel;
    use square_workloads::{build, Benchmark};

    #[test]
    fn lattice_sizing_fits_all_policies() {
        let p = build(Benchmark::Rd53).unwrap();
        let arch = lattice_for(&p, CommModel::SwapChains);
        let base = CompilerConfig::nisq(Policy::Lazy).with_arch(arch);
        let results = run_policies(&p, &Policy::ALL, &base);
        for r in &results {
            assert!(r.report.is_ok(), "{:?}: {:?}", r.policy, r.report);
        }
        let norms = normalized_aqv(&results);
        assert_eq!(norms.len(), 4);
        let lazy = norms.iter().find(|(p, _)| *p == Policy::Lazy).unwrap();
        assert!((lazy.1 - 1.0).abs() < 1e-9);
    }
}

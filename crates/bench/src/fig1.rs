//! Fig. 1 — qubit usage over time for modular exponentiation.
//!
//! The paper's opening figure: Eager reclaims constantly ("too many
//! gates"), Lazy's usage climbs monotonically ("too many qubits"),
//! SQUARE selectively reclaims and minimizes the area under the curve
//! (the active quantum volume).

use square_core::{CompilerConfig, Policy};
use square_metrics::UsageCurve;
use square_workloads::{build, Benchmark};

use crate::runner::{lattice_for, run_policies};

/// One policy's usage curve with its area.
#[derive(Debug)]
pub struct CurveRow {
    /// Policy.
    pub policy: Policy,
    /// Sampled (time, live-qubits) series.
    pub samples: Vec<(u64, u64)>,
    /// Total depth in cycles.
    pub depth: u64,
    /// Area under the curve = AQV.
    pub aqv: u64,
    /// Peak qubits.
    pub peak: u64,
}

/// Computes the Fig. 1 curves for MODEXP.
pub fn compute(samples_per_curve: usize) -> Vec<CurveRow> {
    let program = build(Benchmark::Modexp).expect("modexp builds");
    let arch = lattice_for(&program, square_arch::CommModel::SwapChains);
    let base = CompilerConfig::nisq(Policy::Lazy).with_arch(arch);
    run_policies(&program, &Policy::BASELINE_THREE, &base)
        .into_iter()
        .filter_map(|r| r.report.ok().map(|rep| (r.policy, rep)))
        .map(|(policy, rep)| {
            let curve: UsageCurve = rep.usage_curve();
            CurveRow {
                policy,
                samples: curve.sample(samples_per_curve),
                depth: rep.depth,
                aqv: rep.aqv,
                peak: curve.peak(),
            }
        })
        .collect()
}

/// Renders the figure as text.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("Fig. 1 — Qubit usage over time, MODEXP (lattice, swap chains)\n");
    out.push_str("AQV = area under the curve; SQUARE should have the least.\n\n");
    for row in compute(16) {
        out.push_str(&format!(
            "{:<8} depth={:<9} peak={:<5} AQV={}\n  curve:",
            row.policy.label(),
            row.depth,
            row.peak,
            row.aqv
        ));
        for (t, q) in &row.samples {
            out.push_str(&format!(" ({t},{q})"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_minimizes_the_area() {
        let rows = compute(8);
        assert_eq!(rows.len(), 3);
        let aqv = |p: Policy| rows.iter().find(|r| r.policy == p).unwrap().aqv;
        assert!(
            aqv(Policy::Square) < aqv(Policy::Lazy),
            "SQUARE {} vs LAZY {}",
            aqv(Policy::Square),
            aqv(Policy::Lazy)
        );
        assert!(
            aqv(Policy::Square) < aqv(Policy::Eager),
            "SQUARE {} vs EAGER {}",
            aqv(Policy::Square),
            aqv(Policy::Eager)
        );
    }

    #[test]
    fn eager_peaks_lowest_lazy_runs_shortest() {
        // The tension of Fig. 1: Eager pays time, Lazy pays qubits.
        let rows = compute(8);
        let row = |p: Policy| rows.iter().find(|r| r.policy == p).unwrap();
        assert!(row(Policy::Eager).peak <= row(Policy::Lazy).peak);
        assert!(row(Policy::Lazy).depth <= row(Policy::Eager).depth);
    }
}

//! Ablation study of SQUARE's design choices (DESIGN.md §3.3).
//!
//! Three knobs are swept against the defaults:
//!
//! * the recursive-recomputation base of Eq. 1 — the paper's literal
//!   worst case `2^ℓ` vs. our adaptive `(1+ρ)^ℓ`;
//! * the scope of Eq. 1's `N_active` — machine-wide (literal) vs. the
//!   frame's working set;
//! * the capacity-pressure threshold that forces reclamation.
//!
//! The output quantifies why the defaults were chosen: with the
//! literal readings, CER under-reclaims on deep module towers (MCX
//! lowering adds call levels), inflating AQV back toward Lazy.

use square_core::{compile, CerParams, CompilerConfig, Policy};
use square_workloads::{build, Benchmark};

use crate::runner::lattice_for;

/// One ablation variant.
#[derive(Debug, Clone, Copy)]
pub struct Variant {
    /// Display label.
    pub label: &'static str,
    /// CER parameters for the variant.
    pub cer: CerParams,
}

/// The variants under study.
pub fn variants() -> Vec<Variant> {
    let default = CerParams::default();
    vec![
        Variant {
            label: "default (adaptive, frame-scope)",
            cer: default,
        },
        Variant {
            label: "literal 2^l recompute",
            cer: CerParams {
                recompute_base: 2.0,
                ..default
            },
        },
        Variant {
            label: "machine-scope C1",
            cer: CerParams {
                c1_frame_scope: false,
                ..default
            },
        },
        Variant {
            label: "literal 2^l + machine-scope",
            cer: CerParams {
                recompute_base: 2.0,
                c1_frame_scope: false,
                ..default
            },
        },
        Variant {
            label: "no pressure forcing",
            cer: CerParams {
                pressure_reserve: 0,
                pressure_fraction: 0.0,
                ..default
            },
        },
    ]
}

/// AQV of each variant on the given benchmark, plus the Lazy baseline.
pub fn compute(bench: Benchmark) -> (u64, Vec<(Variant, u64, u64)>) {
    let program = build(bench).expect("benchmark builds");
    let arch = lattice_for(&program, square_arch::CommModel::SwapChains);
    let lazy = compile(
        &program,
        &CompilerConfig::nisq(Policy::Lazy).with_arch(arch),
    )
    .expect("lazy compiles")
    .aqv;
    let rows = variants()
        .into_iter()
        .map(|v| {
            let mut cfg = CompilerConfig::nisq(Policy::Square).with_arch(arch);
            cfg.cer = v.cer;
            let rep = compile(&program, &cfg).expect("square compiles");
            (v, rep.aqv, rep.decisions.reclaimed)
        })
        .collect();
    (lazy, rows)
}

/// Renders the ablation table.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("Ablation — CER design choices (AQV normalized to LAZY; lower is better)\n\n");
    for bench in [Benchmark::Modexp, Benchmark::Mul32, Benchmark::Belle] {
        let (lazy, rows) = compute(bench);
        out.push_str(&format!("{}  (LAZY AQV = {lazy})\n", bench.name()));
        for (v, aqv, reclaimed) in rows {
            out.push_str(&format!(
                "  {:<34} norm={:<8.3} reclaimed_frames={}\n",
                v.label,
                aqv as f64 / lazy.max(1) as f64,
                reclaimed
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_variant_is_best_or_tied_on_modexp() {
        let (_, rows) = compute(Benchmark::Modexp);
        let default_aqv = rows[0].1;
        for (v, aqv, _) in &rows[1..] {
            assert!(
                default_aqv <= aqv + aqv / 5,
                "default {default_aqv} much worse than {}: {aqv}",
                v.label
            );
        }
    }

    #[test]
    fn literal_settings_reclaim_less() {
        let (_, rows) = compute(Benchmark::Mul32);
        let default_reclaims = rows[0].2;
        let literal_both = rows
            .iter()
            .find(|(v, _, _)| v.label.contains("literal 2^l + machine"))
            .unwrap()
            .2;
        assert!(
            literal_both < default_reclaims,
            "literal {literal_both} vs default {default_reclaims}"
        );
    }
}

//! Ablation study of SQUARE's design choices (DESIGN.md §3.3).
//!
//! Three knobs are swept against the defaults:
//!
//! * the recursive-recomputation base of Eq. 1 — the paper's literal
//!   worst case `2^ℓ` vs. our adaptive `(1+ρ)^ℓ`;
//! * the scope of Eq. 1's `N_active` — machine-wide (literal) vs. the
//!   frame's working set;
//! * the capacity-pressure threshold that forces reclamation.
//!
//! The output quantifies why the defaults were chosen: with the
//! literal readings, CER under-reclaims on deep module towers (MCX
//! lowering adds call levels), inflating AQV back toward Lazy.

use serde::{Serialize, Value};
use square_core::{compile, CerParams, CompilerConfig, Policy, RouterKind};
use square_workloads::{build, Benchmark};

use crate::runner::lattice_for;
use crate::sweep::{run_sweep, SweepArch, SweepSpec};

/// One ablation variant.
#[derive(Debug, Clone, Copy)]
pub struct Variant {
    /// Display label.
    pub label: &'static str,
    /// CER parameters for the variant.
    pub cer: CerParams,
}

/// The variants under study.
pub fn variants() -> Vec<Variant> {
    let default = CerParams::default();
    vec![
        Variant {
            label: "default (adaptive, frame-scope)",
            cer: default,
        },
        Variant {
            label: "literal 2^l recompute",
            cer: CerParams {
                recompute_base: 2.0,
                ..default
            },
        },
        Variant {
            label: "machine-scope C1",
            cer: CerParams {
                c1_frame_scope: false,
                ..default
            },
        },
        Variant {
            label: "literal 2^l + machine-scope",
            cer: CerParams {
                recompute_base: 2.0,
                c1_frame_scope: false,
                ..default
            },
        },
        Variant {
            label: "no pressure forcing",
            cer: CerParams {
                pressure_reserve: 0,
                pressure_fraction: 0.0,
                ..default
            },
        },
    ]
}

/// AQV of each variant on the given benchmark, plus the Lazy baseline.
pub fn compute(bench: Benchmark) -> (u64, Vec<(Variant, u64, u64)>) {
    let program = build(bench).expect("benchmark builds");
    let arch = lattice_for(&program, square_arch::CommModel::SwapChains);
    let lazy = compile(
        &program,
        &CompilerConfig::nisq(Policy::Lazy).with_arch(arch),
    )
    .expect("lazy compiles")
    .aqv;
    let rows = variants()
        .into_iter()
        .map(|v| {
            let mut cfg = CompilerConfig::nisq(Policy::Square).with_arch(arch);
            cfg.cer = v.cer;
            let rep = compile(&program, &cfg).expect("square compiles");
            (v, rep.aqv, rep.decisions.reclaimed)
        })
        .collect();
    (lazy, rows)
}

/// Renders the ablation table.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("Ablation — CER design choices (AQV normalized to LAZY; lower is better)\n\n");
    for bench in [Benchmark::Modexp, Benchmark::Mul32, Benchmark::Belle] {
        let (lazy, rows) = compute(bench);
        out.push_str(&format!("{}  (LAZY AQV = {lazy})\n", bench.name()));
        for (v, aqv, reclaimed) in rows {
            out.push_str(&format!(
                "  {:<34} norm={:<8.3} reclaimed_frames={}\n",
                v.label,
                aqv as f64 / lazy.max(1) as f64,
                reclaimed
            ));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Budget ablation: the width/gate Pareto frontier of `budget:N`
// ---------------------------------------------------------------------------

/// One point of the budget Pareto frontier: a benchmark compiled
/// under `square,budget:N` (or unbudgeted when `budget` is `None`).
#[derive(Debug, Clone)]
pub struct BudgetCell {
    /// Benchmark compiled.
    pub benchmark: Benchmark,
    /// Width cap, `None` for the unbudgeted SQUARE anchor row.
    pub budget: Option<usize>,
    /// Peak simultaneously-live qubits (must be ≤ the cap).
    pub peak_active: usize,
    /// Routed program gates.
    pub gates: u64,
    /// Active-qubit volume.
    pub aqv: u64,
    /// Reclamations the budget clamp forced.
    pub forced: u64,
    /// Frames early-uncomputed (evicted) by the budget engine.
    pub early_uncomputed: u64,
    /// Frames recomputed by a covering ancestor sweep.
    pub recomputed: u64,
}

impl Serialize for BudgetCell {
    fn serialize(&self) -> Value {
        Value::map(vec![
            (
                "benchmark",
                Value::String(self.benchmark.name().to_string()),
            ),
            (
                "budget",
                self.budget.map_or(Value::Null, |n| Value::UInt(n as u64)),
            ),
            ("peak_active", Value::UInt(self.peak_active as u64)),
            ("gates", Value::UInt(self.gates)),
            ("aqv", Value::UInt(self.aqv)),
            ("forced", Value::UInt(self.forced)),
            ("early_uncomputed", Value::UInt(self.early_uncomputed)),
            ("recomputed", Value::UInt(self.recomputed)),
        ])
    }
}

/// Sweeps `square,budget:N` from each benchmark's eager width floor
/// (the smallest satisfiable cap) up to its unbudgeted SQUARE peak in
/// `steps` geometric budgets, plus the unbudgeted anchor row. Every
/// budget in the range is satisfiable, so a missing point is a bug
/// (the row panics rather than silently dropping it).
pub fn budget_pareto(benchmarks: &[Benchmark], steps: usize) -> Vec<BudgetCell> {
    let mut cells = Vec::new();
    for &bench in benchmarks {
        let program = build(bench).expect("benchmark builds");
        let floor = compile(&program, &CompilerConfig::nisq(Policy::Eager))
            .expect("eager probe")
            .peak_active;
        let base = compile(&program, &CompilerConfig::nisq(Policy::Square)).expect("square probe");
        let ceiling = base.peak_active.max(floor);
        let mut budgets: Vec<usize> = (0..steps.max(2))
            .map(|i| {
                let f = i as f64 / (steps.max(2) - 1) as f64;
                ((floor as f64) * ((ceiling as f64) / (floor as f64)).powf(f)).round() as usize
            })
            .collect();
        budgets.sort_unstable();
        budgets.dedup();
        for n in budgets {
            let cfg = CompilerConfig::nisq(Policy::Square).with_budget(Some(n));
            let r = compile(&program, &cfg)
                .unwrap_or_else(|e| panic!("{bench}/square,budget:{n} in [floor, peak]: {e}"));
            cells.push(BudgetCell {
                benchmark: bench,
                budget: Some(n),
                peak_active: r.peak_active,
                gates: r.gates,
                aqv: r.aqv,
                forced: r.decisions.forced,
                early_uncomputed: r.recompute.early_uncomputed_frames,
                recomputed: r.recompute.recomputed_frames,
            });
        }
        cells.push(BudgetCell {
            benchmark: bench,
            budget: None,
            peak_active: base.peak_active,
            gates: base.gates,
            aqv: base.aqv,
            forced: base.decisions.forced,
            early_uncomputed: 0,
            recomputed: 0,
        });
    }
    cells
}

/// Renders the budget Pareto table (one block per benchmark; the
/// unbudgeted SQUARE row anchors the right end of the frontier).
pub fn render_budget_table(cells: &[BudgetCell]) -> String {
    let mut out = String::new();
    out.push_str(
        "Budget ablation — square,budget:N width/gate frontier\n\
         (peak ≤ N enforced; gates fall as N rises toward the unbudgeted peak)\n\n",
    );
    out.push_str(&format!(
        "{:<12} {:>10} {:>8} {:>10} {:>12} {:>8} {:>8} {:>8}\n",
        "benchmark", "budget", "peak", "gates", "aqv", "forced", "early", "recomp"
    ));
    for c in cells {
        let budget = c.budget.map_or("\u{221e}".to_string(), |n| n.to_string());
        out.push_str(&format!(
            "{:<12} {:>10} {:>8} {:>10} {:>12} {:>8} {:>8} {:>8}\n",
            c.benchmark.name(),
            budget,
            c.peak_active,
            c.gates,
            c.aqv,
            c.forced,
            c.early_uncomputed,
            c.recomputed,
        ));
    }
    out
}

/// The default budget-ablation scene: the overflow-prone catalog
/// benchmarks across five geometric budgets each.
pub fn render_budget() -> String {
    let cells = budget_pareto(&[Benchmark::Belle, Benchmark::Modexp, Benchmark::Mul32], 5);
    render_budget_table(&cells)
}

// ---------------------------------------------------------------------------
// MBU ablation: measurement-based uncompute on/off across the catalog
// ---------------------------------------------------------------------------

/// One row of the MBU ablation: a benchmark compiled under one policy
/// with measurement-based uncomputation off and on, side by side.
#[derive(Debug, Clone)]
pub struct MbuCell {
    /// Benchmark compiled.
    pub benchmark: Benchmark,
    /// Reclaiming policy under study.
    pub policy: Policy,
    /// Routed program gates with MBU off (the pre-MBU baseline).
    pub gates_off: u64,
    /// Routed program gates with MBU on.
    pub gates_on: u64,
    /// Active-qubit volume with MBU off.
    pub aqv_off: u64,
    /// Active-qubit volume with MBU on.
    pub aqv_on: u64,
    /// Frames that took the measure-and-correct lowering.
    pub mbu_frames: u64,
    /// Mid-circuit measurements emitted.
    pub measurements: u64,
    /// Cost-model-weighted price of the chosen MBU lowerings.
    pub mbu_gates: u64,
    /// Weighted price of the unitary inverse slices those frames
    /// skipped (always ≥ `mbu_gates`: MBU is only chosen when
    /// strictly cheaper).
    pub unitary_gates_avoided: u64,
}

impl MbuCell {
    /// The measured uncompute-gate reduction: routed gates the MBU
    /// lowering removed from the schedule (0 when MBU never engaged).
    pub fn gate_delta(&self) -> i64 {
        self.gates_off as i64 - self.gates_on as i64
    }
}

impl Serialize for MbuCell {
    fn serialize(&self) -> Value {
        Value::map(vec![
            (
                "benchmark",
                Value::String(self.benchmark.name().to_string()),
            ),
            ("policy", Value::String(self.policy.cli_name().to_string())),
            ("gates_off", Value::UInt(self.gates_off)),
            ("gates_on", Value::UInt(self.gates_on)),
            ("aqv_off", Value::UInt(self.aqv_off)),
            ("aqv_on", Value::UInt(self.aqv_on)),
            ("mbu_frames", Value::UInt(self.mbu_frames)),
            ("measurements", Value::UInt(self.measurements)),
            ("mbu_gates", Value::UInt(self.mbu_gates)),
            (
                "unitary_gates_avoided",
                Value::UInt(self.unitary_gates_avoided),
            ),
        ])
    }
}

/// Compiles each benchmark with MBU off and on under the reclaiming
/// policies (Eager reclaims every frame, so it is the upper bound on
/// MBU engagement; SQUARE shows the interaction with CER-gated
/// reclamation). Both compiles share the benchmark's own auto-sized
/// machine, so gate/AQV deltas are attributable to the lowering alone.
pub fn ablation_mbu(benchmarks: &[Benchmark]) -> Vec<MbuCell> {
    let mut cells = Vec::new();
    for &bench in benchmarks {
        let program = build(bench).expect("benchmark builds");
        let arch = lattice_for(&program, square_arch::CommModel::SwapChains);
        for policy in [Policy::Eager, Policy::Square] {
            let cfg = CompilerConfig::nisq(policy).with_arch(arch);
            let off = compile(&program, &cfg.clone().with_mbu(false)).expect("mbu-off compiles");
            let on = compile(&program, &cfg.with_mbu(true)).expect("mbu-on compiles");
            cells.push(MbuCell {
                benchmark: bench,
                policy,
                gates_off: off.gates,
                gates_on: on.gates,
                aqv_off: off.aqv,
                aqv_on: on.aqv,
                mbu_frames: on.mbu_stats.mbu_frames,
                measurements: on.mbu_stats.measurements,
                mbu_gates: on.mbu_stats.mbu_gates,
                unitary_gates_avoided: on.mbu_stats.unitary_gates_avoided,
            });
        }
    }
    cells
}

/// Renders the MBU ablation table (one row per benchmark × policy;
/// Δgates = gates removed by the measure-and-correct lowering).
pub fn render_mbu_table(cells: &[MbuCell]) -> String {
    let mut out = String::new();
    out.push_str(
        "MBU ablation — measurement-based uncompute on/off\n\
         (\u{0394}gates = gates_off - gates_on; frames = reclaims lowered as measure-and-correct)\n\n",
    );
    out.push_str(&format!(
        "{:<12} {:<10} {:>10} {:>10} {:>8} {:>12} {:>12} {:>8} {:>8}\n",
        "benchmark",
        "policy",
        "gates off",
        "gates on",
        "\u{0394}gates",
        "aqv off",
        "aqv on",
        "frames",
        "meas"
    ));
    for c in cells {
        out.push_str(&format!(
            "{:<12} {:<10} {:>10} {:>10} {:>8} {:>12} {:>12} {:>8} {:>8}\n",
            c.benchmark.name(),
            c.policy.label(),
            c.gates_off,
            c.gates_on,
            c.gate_delta(),
            c.aqv_off,
            c.aqv_on,
            c.mbu_frames,
            c.measurements,
        ));
    }
    let engaged: Vec<&MbuCell> = cells.iter().filter(|c| c.mbu_frames > 0).collect();
    if engaged.is_empty() {
        out.push_str("\nMBU never engaged: no frame's inverse slice lost the weighted compare.\n");
    } else {
        let total: i64 = engaged.iter().map(|c| c.gate_delta()).sum();
        out.push_str(&format!(
            "\n{} engaged cells, net {total} routed gates removed; every engaged frame's \
             weighted MBU price beat its unitary inverse. A negative \u{0394}gates row is \
             CER reclaiming *more* frames once reclaim is cheap — gates traded for AQV.\n",
            engaged.len()
        ));
    }
    out
}

/// The default MBU-ablation scene: the NISQ catalog (the arithmetic
/// benchmarks are the Toffoli-heavy rows where MBU engages).
pub fn render_mbu() -> String {
    render_mbu_table(&ablation_mbu(&Benchmark::NISQ))
}

// ---------------------------------------------------------------------------
// Router ablation: swap counts + compile time per benchmark × router
// × topology
// ---------------------------------------------------------------------------

/// One cell of the router ablation: a benchmark compiled under the
/// SQUARE policy with one router on one topology.
#[derive(Debug, Clone)]
pub struct RouterCell {
    /// Benchmark compiled.
    pub benchmark: Benchmark,
    /// Topology targeted.
    pub arch: SweepArch,
    /// Router used.
    pub router: RouterKind,
    /// Routing swaps inserted.
    pub swaps: u64,
    /// Program gates (router-invariant; sanity anchor).
    pub gates: u64,
    /// Schedule depth in cycles.
    pub depth: u64,
    /// Compile wall time, nanoseconds.
    pub compile_ns: u64,
}

impl Serialize for RouterCell {
    fn serialize(&self) -> Value {
        Value::map([
            (
                "benchmark",
                Value::String(self.benchmark.name().to_string()),
            ),
            ("arch", Value::String(self.arch.to_string())),
            ("router", Value::String(self.router.cli_name().to_string())),
            ("swaps", Value::UInt(self.swaps)),
            ("gates", Value::UInt(self.gates)),
            ("depth", Value::UInt(self.depth)),
            ("compile_ns", Value::UInt(self.compile_ns)),
        ])
    }
}

/// Compiles `benchmarks × archs × both routers` under the SQUARE
/// policy (the paper's headline configuration) and returns every cell
/// that fit the machine.
pub fn router_compare(benchmarks: &[Benchmark], archs: &[SweepArch]) -> Vec<RouterCell> {
    let spec = SweepSpec {
        benchmarks: benchmarks.to_vec(),
        policies: vec![Policy::Square],
        archs: archs.to_vec(),
        routers: RouterKind::ALL.to_vec(),
        budgets: vec![None],
    };
    run_sweep(&spec)
        .cells
        .iter()
        .filter_map(|cell| {
            let r = cell.report.as_ref().ok()?;
            Some(RouterCell {
                benchmark: cell.benchmark,
                arch: cell.arch,
                router: cell.router,
                swaps: r.swaps,
                gates: r.gates,
                depth: r.depth,
                compile_ns: (cell.compile_ms * 1e6) as u64,
            })
        })
        .collect()
}

/// Geometric mean of per-`(benchmark, arch)` lookahead/greedy swap
/// ratios (< 1 means the lookahead router inserts fewer swaps).
/// `None` when no pair has nonzero greedy swaps.
pub fn swap_ratio_geomean(cells: &[RouterCell]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for g in cells.iter().filter(|c| c.router == RouterKind::Greedy) {
        let Some(l) = cells.iter().find(|c| {
            c.router == RouterKind::Lookahead && c.benchmark == g.benchmark && c.arch == g.arch
        }) else {
            continue;
        };
        if g.swaps == 0 {
            continue; // all-to-all cell: nothing to route
        }
        log_sum += ((l.swaps.max(1) as f64) / (g.swaps as f64)).ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

/// Renders the router-comparison table (one row per
/// `benchmark × topology`, greedy and lookahead side by side).
pub fn render_router_table(cells: &[RouterCell]) -> String {
    let mut out = String::new();
    out.push_str(
        "Router ablation — SQUARE policy (swaps: lower is better; ratio = lookahead/greedy)\n\n",
    );
    out.push_str(&format!(
        "{:<12} {:<12} {:>12} {:>12} {:>7} {:>12} {:>12}\n",
        "benchmark", "arch", "greedy", "lookahead", "ratio", "greedy ms", "lookahead ms"
    ));
    for g in cells.iter().filter(|c| c.router == RouterKind::Greedy) {
        let l = cells.iter().find(|c| {
            c.router == RouterKind::Lookahead && c.benchmark == g.benchmark && c.arch == g.arch
        });
        let (l_swaps, ratio, l_ms) = match l {
            Some(l) => (
                l.swaps.to_string(),
                if g.swaps > 0 {
                    format!("{:.3}", l.swaps as f64 / g.swaps as f64)
                } else {
                    "-".to_string()
                },
                format!("{:.1}", l.compile_ns as f64 / 1e6),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        out.push_str(&format!(
            "{:<12} {:<12} {:>12} {:>12} {:>7} {:>12.1} {:>12}\n",
            g.benchmark.name(),
            g.arch.to_string(),
            g.swaps,
            l_swaps,
            ratio,
            g.compile_ns as f64 / 1e6,
            l_ms,
        ));
    }
    if let Some(geo) = swap_ratio_geomean(cells) {
        out.push_str(&format!(
            "\ngeomean swap ratio (lookahead/greedy): {geo:.3}\n"
        ));
    }
    out
}

/// The default router-ablation scene: the NISQ catalog on the three
/// swap-routed topologies (auto lattice, auto heavy-hex, auto ring).
pub fn render_router() -> String {
    let archs = [
        SweepArch::NisqAuto,
        SweepArch::HeavyHexAuto,
        SweepArch::RingAuto,
    ];
    let cells = router_compare(&Benchmark::NISQ, &archs);
    render_router_table(&cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_variant_is_best_or_tied_on_modexp() {
        let (_, rows) = compute(Benchmark::Modexp);
        let default_aqv = rows[0].1;
        for (v, aqv, _) in &rows[1..] {
            assert!(
                default_aqv <= aqv + aqv / 5,
                "default {default_aqv} much worse than {}: {aqv}",
                v.label
            );
        }
    }

    #[test]
    fn literal_settings_reclaim_less() {
        let (_, rows) = compute(Benchmark::Mul32);
        let default_reclaims = rows[0].2;
        let literal_both = rows
            .iter()
            .find(|(v, _, _)| v.label.contains("literal 2^l + machine"))
            .unwrap()
            .2;
        assert!(
            literal_both < default_reclaims,
            "literal {literal_both} vs default {default_reclaims}"
        );
    }

    #[test]
    fn budget_pareto_caps_width_and_serializes() {
        let cells = budget_pareto(&[Benchmark::Rd53], 3);
        // Every budgeted point respects its cap; the unbudgeted anchor
        // row closes the frontier.
        assert!(cells.len() >= 2);
        for c in &cells {
            if let Some(n) = c.budget {
                assert!(
                    c.peak_active <= n,
                    "{}: peak {} over budget {n}",
                    c.benchmark,
                    c.peak_active
                );
            }
        }
        assert!(cells.last().unwrap().budget.is_none());
        let json = serde_json::to_string(&Value::seq(&cells)).unwrap();
        assert!(json.contains("\"budget\":null"), "{json}");
        let table = render_budget_table(&cells);
        assert!(table.contains("Budget ablation"), "{table}");
    }

    #[test]
    fn mbu_ablation_reduces_uncompute_gates_on_arithmetic() {
        let cells = ablation_mbu(&[Benchmark::Adder4]);
        assert_eq!(cells.len(), 2, "eager + square");
        let eager = cells.iter().find(|c| c.policy == Policy::Eager).unwrap();
        // Adder4 is Toffoli-built: Eager reclaims every frame, so MBU
        // engages and the weighted compare guarantees a net win.
        assert!(eager.mbu_frames > 0, "{eager:?}");
        assert!(eager.measurements > 0, "{eager:?}");
        assert!(
            eager.unitary_gates_avoided > eager.mbu_gates,
            "MBU only fires when strictly cheaper: {eager:?}"
        );
        assert!(
            eager.gates_on < eager.gates_off,
            "measured uncompute-gate reduction: {eager:?}"
        );
        let json = serde_json::to_string(&Value::seq(&cells)).unwrap();
        assert!(json.contains("\"unitary_gates_avoided\""), "{json}");
        let table = render_mbu_table(&cells);
        assert!(table.contains("MBU ablation"), "{table}");
        assert!(table.contains("routed gates removed"), "{table}");
    }

    #[test]
    fn router_compare_fills_both_routers_and_serializes() {
        let cells = router_compare(&[Benchmark::Rd53], &[SweepArch::NisqAuto]);
        assert_eq!(cells.len(), 2, "greedy + lookahead");
        let greedy = cells
            .iter()
            .find(|c| c.router == RouterKind::Greedy)
            .unwrap();
        let look = cells
            .iter()
            .find(|c| c.router == RouterKind::Lookahead)
            .unwrap();
        // The router only changes communication, never program gates.
        assert_eq!(greedy.gates, look.gates);
        assert!(swap_ratio_geomean(&cells).is_some());
        let json = serde_json::to_string(&Value::seq(&cells)).unwrap();
        assert!(json.contains("\"router\":\"lookahead\""), "{json}");
        let table = render_router_table(&cells);
        assert!(table.contains("geomean swap ratio"), "{table}");
    }
}

//! Fig. 5 — locality changes the preferred reclamation strategy.
//!
//! The Belle benchmark prefers Eager on a 2-D lattice (reclamation
//! keeps the footprint tight, suppressing swap chains) but Lazy on a
//! fully-connected machine (no swaps, so Eager's recomputation gates
//! are pure overhead). This is the observation motivating SQUARE's
//! machine-aware cost model.

use square_arch::CommModel;
use square_core::{ArchSpec, CompilerConfig, Policy};
use square_workloads::synthetic::{synthesize, SynthParams};

use crate::runner::run_policies;

/// AQV per (machine, policy).
#[derive(Debug)]
pub struct LocalityRow {
    /// Machine label ("lattice" / "full").
    pub machine: &'static str,
    /// Policy.
    pub policy: Policy,
    /// Active quantum volume.
    pub aqv: u64,
}

/// The Fig. 5 synthetic instance: shallow nesting with wide fan-out
/// and ancilla-heavy, gate-light frames. In this regime Eager's
/// recomputation factor stays small (2^ℓ with ℓ = 2) while Lazy's
/// reservation spreads the footprint across the lattice — so Eager
/// wins on the lattice and Lazy wins when communication is free.
/// (A deeply nested Belle cannot flip: its 2^ℓ recomputation dwarfs
/// any communication savings on either machine; see EXPERIMENTS.md.)
fn fig5_params() -> SynthParams {
    SynthParams {
        levels: 2,
        max_callees: 6,
        inputs_per_fn: 3,
        max_ancilla: 16,
        max_gates: 3,
        // The crossover is seed-sensitive: this instance exhibits it
        // under the vendored RNG's xoshiro256** stream.
        seed: 0xFE,
    }
}

/// Runs Belle on both machines under Eager and Lazy.
pub fn compute() -> Vec<LocalityRow> {
    let program = synthesize(&fig5_params()).expect("belle builds");
    // Size both machines identically from the Lazy lattice probe.
    let arch = crate::runner::lattice_for(&program, CommModel::SwapChains);
    let qubits = match arch {
        ArchSpec::Grid { width, height } => width * height,
        _ => unreachable!("lattice_for returns grids"),
    };
    let mut rows = Vec::new();
    let lattice_base = CompilerConfig::nisq(Policy::Lazy).with_arch(arch);
    for r in run_policies(&program, &[Policy::Eager, Policy::Lazy], &lattice_base) {
        if let Ok(rep) = r.report {
            rows.push(LocalityRow {
                machine: "lattice",
                policy: r.policy,
                aqv: rep.aqv,
            });
        }
    }
    let mut full_base = CompilerConfig::nisq(Policy::Lazy).with_arch(ArchSpec::Full { n: qubits });
    full_base.comm = CommModel::SwapChains; // distance-1 everywhere: no swaps ever occur
    for r in run_policies(&program, &[Policy::Eager, Policy::Lazy], &full_base) {
        if let Ok(rep) = r.report {
            rows.push(LocalityRow {
                machine: "full",
                policy: r.policy,
                aqv: rep.aqv,
            });
        }
    }
    rows
}

/// Renders the figure as text.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("Fig. 5 — Locality constraint changes the desired strategy (Belle)\n");
    out.push_str("(lower AQV is better)\n\n");
    for row in compute() {
        out.push_str(&format!(
            "{:<8} {:<8} AQV={}\n",
            row.machine,
            row.policy.label(),
            row.aqv
        ));
    }
    out
}

/// The figure's claim as a predicate (used by tests and EXPERIMENTS.md):
/// Eager wins on the lattice, Lazy wins on the fully-connected machine.
pub fn crossover_holds() -> bool {
    let rows = compute();
    let get = |machine: &str, policy: Policy| {
        rows.iter()
            .find(|r| r.machine == machine && r.policy == policy)
            .map(|r| r.aqv)
            .unwrap_or(u64::MAX)
    };
    get("lattice", Policy::Eager) < get("lattice", Policy::Lazy)
        && get("full", Policy::Lazy) < get("full", Policy::Eager)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_flips_the_preference() {
        assert!(crossover_holds(), "rows: {:?}", compute());
    }
}

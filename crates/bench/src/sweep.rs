//! Policy sweeps, two kinds:
//!
//! 1. **Product sweep** ([`SweepSpec`] → [`run_sweep`] → [`SweepMatrix`]):
//!    the general `benchmarks × policies × architectures` executor.
//!    Every cell compiles independently, so the matrix is evaluated in
//!    parallel with rayon; the result keeps the full [`CompileReport`]
//!    per cell and serializes to JSON for downstream tooling (the
//!    `experiments` binary's `--json` mode). This is the harness for
//!    Reqomp-style space/gate trade-off frontiers: wide, cheap
//!    coverage of the configuration space.
//!
//! 2. **Machine-size sweep** ([`compute`] / [`render`], Section V
//!    intro: "experiments that sweep a large range of system sizes"):
//!    for one benchmark, compile each policy across machine sizes from
//!    "barely fits Eager" to "comfortably fits Lazy" — the
//!    quantitative version of Fig. 1's capacity lines.

use std::fmt;
use std::time::Instant;

use rayon::prelude::*;
use serde::{Serialize, Value};
use square_core::{
    compile, ArchSpec, CompileError, CompileReport, CompilerConfig, Policy, RouterKind,
};
use square_workloads::{build, Benchmark};

// ---------------------------------------------------------------------------
// Product sweep: SweepSpec × rayon → SweepMatrix
// ---------------------------------------------------------------------------

/// One architecture setting of a sweep cell: the machine family plus
/// its communication model. Auto-sized variants let every benchmark
/// pick its own machine, which keeps cells independent (no shared
/// probe pass) and therefore embarrassingly parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepArch {
    /// NISQ: auto-sized 2-D lattice, swap-chain communication.
    NisqAuto,
    /// FT: auto-sized logical-tile grid, braid communication.
    FtAuto,
    /// Explicit lattice, swap chains.
    Grid {
        /// Width in qubits.
        width: u32,
        /// Height in qubits.
        height: u32,
    },
    /// Fully connected machine, swap chains (distance 1: none occur).
    Full {
        /// Qubit count.
        n: u32,
    },
    /// Linear chain, swap chains.
    Line {
        /// Qubit count.
        n: u32,
    },
    /// IBM-style heavy-hex lattice of distance `d`, swap chains.
    HeavyHex {
        /// Lattice distance parameter.
        d: u32,
    },
    /// Auto-sized heavy-hex lattice (smallest odd distance that fits
    /// the program), swap chains.
    HeavyHexAuto,
    /// 1-D ring of `n` qubits, swap chains.
    Ring {
        /// Qubit count.
        n: u32,
    },
    /// Auto-sized ring, swap chains.
    RingAuto,
}

impl SweepArch {
    /// The compiler configuration this architecture implies for
    /// `policy`.
    pub fn config(&self, policy: Policy) -> CompilerConfig {
        match *self {
            SweepArch::NisqAuto => CompilerConfig::nisq(policy),
            SweepArch::FtAuto => CompilerConfig::ft(policy),
            SweepArch::Grid { width, height } => {
                CompilerConfig::nisq(policy).with_arch(ArchSpec::Grid { width, height })
            }
            SweepArch::Full { n } => CompilerConfig::nisq(policy).with_arch(ArchSpec::Full { n }),
            SweepArch::Line { n } => CompilerConfig::nisq(policy).with_arch(ArchSpec::Line { n }),
            SweepArch::HeavyHex { d } => {
                CompilerConfig::nisq(policy).with_arch(ArchSpec::HeavyHex { d })
            }
            SweepArch::HeavyHexAuto => {
                CompilerConfig::nisq(policy).with_arch(ArchSpec::AutoHeavyHex)
            }
            SweepArch::Ring { n } => CompilerConfig::nisq(policy).with_arch(ArchSpec::Ring { n }),
            SweepArch::RingAuto => CompilerConfig::nisq(policy).with_arch(ArchSpec::AutoRing),
        }
    }

    /// True when this architecture communicates by braiding — the
    /// swap-chain router never runs there.
    pub fn is_braided(&self) -> bool {
        matches!(self, SweepArch::FtAuto)
    }

    /// Parses a CLI-style spec: `nisq`, `ft`, or any [`ArchSpec`]
    /// spelling (`grid:WxH`, `full:N`, `line:N`, `heavyhex:D` or bare
    /// `heavyhex`, `ring:N` or bare `ring`), case-insensitive.
    ///
    /// This is a compatibility shim kept for the sweep CLI's sake: the
    /// grammar itself lives in [`ArchSpec`]'s `FromStr` impl, which is
    /// what new call sites should use — only the `nisq`/`ft`
    /// communication-model aliases are interpreted here.
    pub fn parse(spec: &str) -> Option<SweepArch> {
        match spec.to_ascii_lowercase().as_str() {
            "nisq" => return Some(SweepArch::NisqAuto),
            "ft" => return Some(SweepArch::FtAuto),
            _ => {}
        }
        spec.parse::<ArchSpec>().ok().map(SweepArch::from)
    }
}

impl From<ArchSpec> for SweepArch {
    /// Embeds a machine layout as a swap-chain sweep cell (`AutoGrid`
    /// maps to the NISQ auto cell; `ft` has no `ArchSpec` spelling —
    /// braiding is a communication model, not a layout).
    fn from(arch: ArchSpec) -> SweepArch {
        match arch {
            ArchSpec::AutoGrid => SweepArch::NisqAuto,
            ArchSpec::Grid { width, height } => SweepArch::Grid { width, height },
            ArchSpec::Full { n } => SweepArch::Full { n },
            ArchSpec::Line { n } => SweepArch::Line { n },
            ArchSpec::HeavyHex { d } => SweepArch::HeavyHex { d },
            ArchSpec::AutoHeavyHex => SweepArch::HeavyHexAuto,
            ArchSpec::Ring { n } => SweepArch::Ring { n },
            ArchSpec::AutoRing => SweepArch::RingAuto,
        }
    }
}

impl fmt::Display for SweepArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SweepArch::NisqAuto => f.write_str("nisq"),
            SweepArch::FtAuto => f.write_str("ft"),
            SweepArch::Grid { width, height } => write!(f, "grid:{width}x{height}"),
            SweepArch::Full { n } => write!(f, "full:{n}"),
            SweepArch::Line { n } => write!(f, "line:{n}"),
            SweepArch::HeavyHex { d } => write!(f, "heavyhex:{d}"),
            SweepArch::HeavyHexAuto => f.write_str("heavyhex"),
            SweepArch::Ring { n } => write!(f, "ring:{n}"),
            SweepArch::RingAuto => f.write_str("ring"),
        }
    }
}

/// The product to evaluate: every `(benchmark, policy, arch)` cell.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Benchmarks (rows).
    pub benchmarks: Vec<Benchmark>,
    /// Policies (columns).
    pub policies: Vec<Policy>,
    /// Architectures (planes).
    pub archs: Vec<SweepArch>,
    /// Swap-chain routers (hyper-planes; `Greedy` alone reproduces
    /// the historical single-router sweeps cell for cell).
    pub routers: Vec<RouterKind>,
    /// Qubit-budget caps (the fifth axis). `None` is the unbudgeted
    /// base policy; `Some(n)` compiles the same cell under a hard
    /// width cap of `n` machine qubits (`--policy square,budget:n`).
    pub budgets: Vec<Option<usize>>,
}

impl SweepSpec {
    /// The default sweep: the paper's NISQ benchmark set under every
    /// policy on the auto-sized NISQ lattice.
    pub fn nisq_default() -> Self {
        SweepSpec {
            benchmarks: Benchmark::NISQ.to_vec(),
            policies: Policy::ALL.to_vec(),
            archs: vec![SweepArch::NisqAuto],
            routers: vec![RouterKind::Greedy],
            budgets: vec![None],
        }
    }

    /// Number of cells in the product. Braided architectures
    /// contribute one cell regardless of the router axis (see
    /// [`SweepSpec::cells`]).
    pub fn len(&self) -> usize {
        let per_arch: usize = self
            .archs
            .iter()
            .map(|a| {
                if a.is_braided() {
                    1
                } else {
                    self.routers.len()
                }
            })
            .sum();
        self.benchmarks.len() * self.policies.len() * per_arch * self.budgets.len().max(1)
    }

    /// True when any axis is empty (nothing to run).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All cells of the product, benchmark-major (router innermost).
    /// Braided architectures never consult the swap-chain router, so
    /// they emit a single greedy-labelled cell instead of one
    /// byte-identical cell per requested router.
    pub fn cells(&self) -> Vec<(Benchmark, Policy, SweepArch, RouterKind, Option<usize>)> {
        // An unset budget axis means the classic unbudgeted product.
        let budgets: &[Option<usize>] = if self.budgets.is_empty() {
            &[None]
        } else {
            &self.budgets
        };
        let mut cells = Vec::with_capacity(self.len());
        for &bench in &self.benchmarks {
            for &arch in &self.archs {
                let routers: &[RouterKind] = if arch.is_braided() {
                    &[RouterKind::Greedy]
                } else {
                    &self.routers
                };
                for &policy in &self.policies {
                    for &router in routers {
                        for &budget in budgets {
                            cells.push((bench, policy, arch, router, budget));
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One evaluated cell of the sweep matrix.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Benchmark compiled.
    pub benchmark: Benchmark,
    /// Policy used.
    pub policy: Policy,
    /// Architecture targeted.
    pub arch: SweepArch,
    /// Swap-chain router used.
    pub router: RouterKind,
    /// Qubit-budget cap the cell compiled under (`None` = unbudgeted).
    pub budget: Option<usize>,
    /// The compile outcome: a full report, or the failure (e.g.
    /// [`CompileError::OutOfQubits`] when the policy does not fit).
    pub report: Result<CompileReport, CompileError>,
    /// Wall-clock compile time for this cell, milliseconds.
    pub compile_ms: f64,
}

/// The evaluated matrix: every cell of the [`SweepSpec`] product, in
/// benchmark-major order, plus end-to-end wall time.
#[derive(Debug, Clone)]
pub struct SweepMatrix {
    /// Evaluated cells (same order as [`SweepSpec::cells`]).
    pub cells: Vec<SweepCell>,
    /// End-to-end wall time of the parallel run, milliseconds.
    pub wall_ms: f64,
}

impl SweepMatrix {
    /// Looks up one cell (the first matching one when the sweep ran
    /// several routers; use [`SweepMatrix::get_router`] to pin one).
    pub fn get(&self, bench: Benchmark, policy: Policy, arch: SweepArch) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.benchmark == bench && c.policy == policy && c.arch == arch)
    }

    /// Looks up one cell of a specific router.
    pub fn get_router(
        &self,
        bench: Benchmark,
        policy: Policy,
        arch: SweepArch,
        router: RouterKind,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.benchmark == bench && c.policy == policy && c.arch == arch && c.router == router
        })
    }

    /// Cells that compiled successfully.
    pub fn ok_cells(&self) -> impl Iterator<Item = &SweepCell> {
        self.cells.iter().filter(|c| c.report.is_ok())
    }

    /// Renders the matrix as an aligned text table (AQV per cell;
    /// `-` marks fit failures).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:<10} {:<18} {:<10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9}\n",
            "benchmark",
            "arch",
            "policy",
            "router",
            "aqv",
            "gates",
            "swaps",
            "depth",
            "qubits",
            "time"
        ));
        for cell in &self.cells {
            let policy_label = match cell.budget {
                Some(n) => format!("{} b:{n}", cell.policy.label()),
                None => cell.policy.label().to_string(),
            };
            match &cell.report {
                Ok(r) => out.push_str(&format!(
                    "{:<12} {:<10} {:<18} {:<10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>7.0}ms\n",
                    cell.benchmark.name(),
                    cell.arch.to_string(),
                    policy_label,
                    cell.router.cli_name(),
                    r.aqv,
                    r.gates,
                    r.swaps,
                    r.depth,
                    r.qubits,
                    cell.compile_ms,
                )),
                Err(e) => out.push_str(&format!(
                    "{:<12} {:<10} {:<18} {:<10} {:>10} ({e})\n",
                    cell.benchmark.name(),
                    cell.arch.to_string(),
                    policy_label,
                    cell.router.cli_name(),
                    "-",
                )),
            }
        }
        out.push_str(&format!(
            "\n{} cells in {:.0}ms wall\n",
            self.cells.len(),
            self.wall_ms
        ));
        out
    }
}

/// The JSON encoding of a [`CompileReport`], shared by the sweep
/// matrix serializer and the `squarec` driver's `--json` mode so both
/// emit field-identical report objects.
pub fn report_json(r: &CompileReport) -> Value {
    let mut fields = vec![
        ("router", Value::String(r.router.cli_name().to_string())),
        ("gates", Value::UInt(r.gates)),
        ("swaps", Value::UInt(r.swaps)),
        ("depth", Value::UInt(r.depth)),
        ("qubits", Value::UInt(r.qubits as u64)),
        ("peak_active", Value::UInt(r.peak_active as u64)),
        ("aqv", Value::UInt(r.aqv)),
        ("comm_factor", Value::Float(r.comm_factor)),
        ("machine_qubits", Value::UInt(r.machine_qubits as u64)),
        (
            "decisions",
            Value::map([
                ("reclaimed", Value::UInt(r.decisions.reclaimed)),
                ("garbage", Value::UInt(r.decisions.garbage)),
                ("forced", Value::UInt(r.decisions.forced)),
            ]),
        ),
        (
            "cer_cache",
            Value::map([
                ("hits", Value::UInt(r.cer_cache.hits)),
                ("misses", Value::UInt(r.cer_cache.misses)),
                ("invalidations", Value::UInt(r.cer_cache.invalidations)),
            ]),
        ),
    ];
    // Budget keys appear only on budgeted compiles: unbudgeted report
    // JSON (and therefore every pre-budget bench fingerprint) stays
    // byte-identical.
    if let Some(budget) = r.budget {
        fields.push(("budget", Value::UInt(budget as u64)));
        fields.push((
            "recompute",
            Value::map([
                (
                    "early_uncomputed_frames",
                    Value::UInt(r.recompute.early_uncomputed_frames),
                ),
                (
                    "early_uncompute_gates",
                    Value::UInt(r.recompute.early_uncompute_gates),
                ),
                (
                    "recomputed_frames",
                    Value::UInt(r.recompute.recomputed_frames),
                ),
                ("recompute_gates", Value::UInt(r.recompute.recompute_gates)),
            ]),
        ));
    }
    // MBU keys appear only on MBU-enabled compiles, so MBU-off report
    // JSON (and therefore every pre-MBU bench fingerprint) stays
    // byte-identical.
    if r.mbu {
        fields.push((
            "mbu",
            Value::map([
                ("mbu_frames", Value::UInt(r.mbu_stats.mbu_frames)),
                ("measurements", Value::UInt(r.mbu_stats.measurements)),
                (
                    "cond_corrections",
                    Value::UInt(r.mbu_stats.cond_corrections),
                ),
                ("mbu_gates", Value::UInt(r.mbu_stats.mbu_gates)),
                (
                    "unitary_gates_avoided",
                    Value::UInt(r.mbu_stats.unitary_gates_avoided),
                ),
            ]),
        ));
    }
    Value::map(fields)
}

/// The structured JSON encoding of a capacity-exhaustion failure:
/// machine-readable fields alongside the rendered message, so sweep
/// consumers can retry with `min_feasible` instead of grepping text.
pub fn error_json(e: &CompileError) -> Value {
    match e {
        CompileError::OutOfQubits {
            requested,
            capacity,
            live,
            policy,
            budget,
            module,
            min_feasible,
        } => Value::map(vec![
            ("kind", Value::String("out_of_qubits".to_string())),
            ("message", Value::String(e.to_string())),
            ("requested", Value::UInt(*requested as u64)),
            ("capacity", Value::UInt(*capacity as u64)),
            ("live", Value::UInt(*live as u64)),
            ("policy", Value::String(policy.cli_name().to_string())),
            (
                "budget",
                budget.map_or(Value::Null, |n| Value::UInt(n as u64)),
            ),
            (
                "module",
                module
                    .as_ref()
                    .map_or(Value::Null, |m| Value::String(m.clone())),
            ),
            (
                "min_feasible",
                min_feasible.map_or(Value::Null, |n| Value::UInt(n as u64)),
            ),
        ]),
        other => Value::map(vec![
            ("kind", Value::String("compile_error".to_string())),
            ("message", Value::String(other.to_string())),
        ]),
    }
}

impl Serialize for SweepCell {
    fn serialize(&self) -> Value {
        let (ok, err) = match &self.report {
            Ok(r) => (report_json(r), Value::Null),
            Err(e) => (Value::Null, Value::String(e.to_string())),
        };
        let mut fields = vec![
            (
                "benchmark",
                Value::String(self.benchmark.name().to_string()),
            ),
            ("policy", Value::String(self.policy.cli_name().to_string())),
            ("arch", Value::String(self.arch.to_string())),
            ("router", Value::String(self.router.cli_name().to_string())),
        ];
        if let Some(n) = self.budget {
            fields.push(("budget", Value::UInt(n as u64)));
        }
        fields.push(("report", ok));
        fields.push(("error", err));
        if let Err(e) = &self.report {
            fields.push(("error_detail", error_json(e)));
        }
        fields.push(("compile_ms", Value::Float(self.compile_ms)));
        Value::map(fields)
    }
}

impl Serialize for SweepMatrix {
    fn serialize(&self) -> Value {
        Value::map([
            ("cells", Value::seq(&self.cells)),
            ("wall_ms", Value::Float(self.wall_ms)),
        ])
    }
}

/// Evaluates every cell of `spec` concurrently (rayon over the full
/// `benchmark × policy × arch` product; each worker builds its own
/// program instance, so cells share nothing and scale with cores).
pub fn run_sweep(spec: &SweepSpec) -> SweepMatrix {
    run_sweep_with_progress(spec, |_| {})
}

/// [`run_sweep`] with a per-completed-cell callback, invoked from the
/// worker threads as cells finish. Callers that print progress must
/// route it to **stderr** — stdout is reserved for the machine-
/// readable matrix (`experiments --json | jq` must stay valid JSON).
pub fn run_sweep_with_progress(
    spec: &SweepSpec,
    progress: impl Fn(&SweepCell) + Sync,
) -> SweepMatrix {
    let start = Instant::now();
    let cells: Vec<SweepCell> = spec
        .cells()
        .into_par_iter()
        .map(|(benchmark, policy, arch, router, budget)| {
            let cell_start = Instant::now();
            let report = build(benchmark)
                .map_err(CompileError::from)
                .and_then(|program| {
                    compile(
                        &program,
                        &arch.config(policy).with_router(router).with_budget(budget),
                    )
                });
            let cell = SweepCell {
                benchmark,
                policy,
                arch,
                router,
                budget,
                report,
                compile_ms: cell_start.elapsed().as_secs_f64() * 1e3,
            };
            progress(&cell);
            cell
        })
        .collect();
    SweepMatrix {
        cells,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

// ---------------------------------------------------------------------------
// Machine-size sweep (the quantitative Fig. 1)
// ---------------------------------------------------------------------------

/// One (machine size, policy) point.
#[derive(Debug)]
pub struct SweepPoint {
    /// Machine qubit count (side²).
    pub machine: usize,
    /// Policy.
    pub policy: Policy,
    /// AQV if the program fit, `None` if it ran out of qubits.
    pub aqv: Option<u64>,
}

/// Sweeps machine sizes for `bench` between the Eager peak and ~1.3×
/// the Lazy peak, in `steps` geometric steps.
pub fn compute(bench: Benchmark, steps: usize) -> Vec<SweepPoint> {
    let program = build(bench).expect("benchmark builds");
    let lazy_probe =
        compile(&program, &CompilerConfig::nisq(Policy::Lazy)).expect("auto-grid probe");
    let eager_probe =
        compile(&program, &CompilerConfig::nisq(Policy::Eager)).expect("auto-grid probe");
    let lo = (eager_probe.peak_active as f64 * 0.9).max(4.0);
    let hi = lazy_probe.peak_active as f64 * 1.3;
    let mut points = Vec::new();
    for i in 0..steps {
        let f = i as f64 / (steps.max(2) - 1) as f64;
        let cap = lo * (hi / lo).powf(f);
        let side = (cap.sqrt().ceil() as u32).max(2);
        let arch = ArchSpec::Grid {
            width: side,
            height: side,
        };
        for policy in Policy::BASELINE_THREE {
            let report = compile(&program, &CompilerConfig::nisq(policy).with_arch(arch));
            points.push(SweepPoint {
                machine: (side * side) as usize,
                policy,
                aqv: report.ok().map(|r| r.aqv),
            });
        }
    }
    points
}

/// Renders the machine-size sweep for MODEXP.
pub fn render() -> String {
    let bench = Benchmark::Modexp;
    let mut out = String::new();
    out.push_str("Machine-size sweep — MODEXP (AQV per policy; '-' = does not fit)\n\n");
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>12}\n",
        "Machine", "LAZY", "EAGER", "SQUARE"
    ));
    let points = compute(bench, 8);
    let mut machines: Vec<usize> = points.iter().map(|p| p.machine).collect();
    machines.sort_unstable();
    machines.dedup();
    for m in machines {
        out.push_str(&format!("{m:>8}"));
        for policy in Policy::BASELINE_THREE {
            let p = points
                .iter()
                .find(|p| p.machine == m && p.policy == policy)
                .unwrap();
            match p.aqv {
                Some(a) => out.push_str(&format!(" {a:>12}")),
                None => out.push_str(&format!(" {:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str(
        "\nLazy needs the largest machine; SQUARE fits everywhere Eager does\n\
         (forced reclamation under pressure) with less volume.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_fits_wherever_eager_fits() {
        let points = compute(Benchmark::Modexp, 5);
        for m in points
            .iter()
            .map(|p| p.machine)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let get = |policy: Policy| {
                points
                    .iter()
                    .find(|p| p.machine == m && p.policy == policy)
                    .unwrap()
            };
            if get(Policy::Eager).aqv.is_some() {
                assert!(
                    get(Policy::Square).aqv.is_some(),
                    "machine {m}: SQUARE failed where Eager fit"
                );
            }
        }
    }

    #[test]
    fn lazy_fails_on_small_machines() {
        let points = compute(Benchmark::Modexp, 5);
        let smallest = points.iter().map(|p| p.machine).min().unwrap();
        let lazy_small = points
            .iter()
            .find(|p| p.machine == smallest && p.policy == Policy::Lazy)
            .unwrap();
        assert!(
            lazy_small.aqv.is_none(),
            "Lazy unexpectedly fit the Eager-sized machine"
        );
    }

    #[test]
    fn product_sweep_fills_every_cell() {
        let spec = SweepSpec {
            benchmarks: vec![Benchmark::Rd53, Benchmark::Adder4],
            policies: vec![Policy::Lazy, Policy::Square],
            archs: vec![SweepArch::NisqAuto],
            routers: vec![RouterKind::Greedy],
            budgets: vec![None],
        };
        let matrix = run_sweep(&spec);
        assert_eq!(matrix.cells.len(), spec.len());
        for cell in &matrix.cells {
            let report = cell.report.as_ref().expect("auto-sized cells fit");
            assert!(report.aqv > 0, "{}: zero AQV", cell.benchmark);
        }
        assert!(matrix
            .get(Benchmark::Rd53, Policy::Square, SweepArch::NisqAuto)
            .is_some());
    }

    #[test]
    fn sweep_matrix_serializes_to_json() {
        let spec = SweepSpec {
            benchmarks: vec![Benchmark::Rd53],
            policies: vec![Policy::Square],
            archs: vec![SweepArch::NisqAuto, SweepArch::FtAuto],
            routers: vec![RouterKind::Greedy],
            budgets: vec![None],
        };
        let matrix = run_sweep(&spec);
        let json = serde_json::to_string(&matrix).expect("serializes");
        assert!(json.contains("\"benchmark\":\"RD53\""));
        assert!(json.contains("\"arch\":\"ft\""));
        assert!(json.contains("\"aqv\":"));
    }

    #[test]
    fn budget_axis_multiplies_cells_and_keys_json() {
        let spec = SweepSpec {
            benchmarks: vec![Benchmark::Rd53],
            policies: vec![Policy::Square],
            archs: vec![SweepArch::NisqAuto],
            routers: vec![RouterKind::Greedy],
            budgets: vec![None, Some(64)],
        };
        assert_eq!(spec.len(), 2);
        let matrix = run_sweep(&spec);
        let json = serde_json::to_string(&matrix).unwrap();
        // The budgeted cell carries the budget + recompute keys; the
        // unbudgeted cell's JSON stays on the pre-budget schema.
        assert!(json.contains("\"budget\":64"), "{json}");
        assert!(json.contains("\"recompute\":"), "{json}");
        let unbudgeted = &matrix.cells[0];
        assert!(unbudgeted.budget.is_none());
        let cell_json = serde_json::to_string(unbudgeted).unwrap();
        assert!(!cell_json.contains("\"budget\""), "{cell_json}");
        assert!(!cell_json.contains("\"recompute\""), "{cell_json}");
    }

    #[test]
    fn out_of_qubits_errors_serialize_structured_detail() {
        // RD53 under lazy,budget:4 is unsatisfiable: the error detail
        // must carry the typed kind and the minimum feasible budget.
        let spec = SweepSpec {
            benchmarks: vec![Benchmark::Rd53],
            policies: vec![Policy::Lazy],
            archs: vec![SweepArch::NisqAuto],
            routers: vec![RouterKind::Greedy],
            budgets: vec![Some(4)],
        };
        let matrix = run_sweep(&spec);
        assert!(matrix.cells[0].report.is_err());
        let json = serde_json::to_string(&matrix).unwrap();
        assert!(json.contains("\"kind\":\"out_of_qubits\""), "{json}");
        assert!(json.contains("\"min_feasible\":"), "{json}");
    }

    #[test]
    fn failed_cells_report_the_error() {
        // A 2×2 machine cannot fit RD53 under any policy.
        let spec = SweepSpec {
            benchmarks: vec![Benchmark::Rd53],
            policies: vec![Policy::Lazy],
            archs: vec![SweepArch::Grid {
                width: 2,
                height: 2,
            }],
            routers: vec![RouterKind::Greedy],
            budgets: vec![None],
        };
        let matrix = run_sweep(&spec);
        assert_eq!(matrix.cells.len(), 1);
        assert!(matrix.cells[0].report.is_err());
        let json = serde_json::to_string(&matrix).unwrap();
        assert!(json.contains("\"report\":null"));
        assert!(json.contains("out of qubits"));
    }

    #[test]
    fn arch_specs_parse_and_round_trip() {
        for (text, arch) in [
            ("nisq", SweepArch::NisqAuto),
            ("ft", SweepArch::FtAuto),
            (
                "grid:8x4",
                SweepArch::Grid {
                    width: 8,
                    height: 4,
                },
            ),
            ("full:64", SweepArch::Full { n: 64 }),
            ("line:100", SweepArch::Line { n: 100 }),
            ("heavyhex:5", SweepArch::HeavyHex { d: 5 }),
            ("heavyhex", SweepArch::HeavyHexAuto),
            ("ring:24", SweepArch::Ring { n: 24 }),
            ("ring", SweepArch::RingAuto),
        ] {
            assert_eq!(SweepArch::parse(text), Some(arch), "{text}");
            assert_eq!(SweepArch::parse(&arch.to_string()), Some(arch));
        }
        assert_eq!(SweepArch::parse("grid:8"), None);
        assert_eq!(SweepArch::parse("hex:3"), None);
        assert_eq!(SweepArch::parse("heavyhex:0"), None);
        assert_eq!(SweepArch::parse("heavyhex:99"), None, "table-size guard");
        assert_eq!(SweepArch::parse("ring:0"), None);
        // Degenerate and overflowing sizes are parse errors, not
        // panics inside a sweep worker.
        assert_eq!(SweepArch::parse("grid:0x4"), None);
        assert_eq!(SweepArch::parse("full:0"), None);
        assert_eq!(SweepArch::parse("line:0"), None);
        assert_eq!(SweepArch::parse("grid:70000x70000"), None);
    }
}

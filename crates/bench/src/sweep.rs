//! Machine-size sweep (Section V intro: "experiments that sweep a
//! large range of system sizes, from tens to thousands of qubits").
//!
//! For one benchmark, compile each policy across machine sizes from
//! "barely fits Eager" to "comfortably fits Lazy" and report AQV and
//! fit failures — the quantitative version of Fig. 1's capacity lines:
//! Lazy stops fitting first; SQUARE degrades gracefully by forcing
//! reclamation under pressure.

use square_core::{compile, ArchSpec, CompilerConfig, Policy};
use square_workloads::{build, Benchmark};

/// One (machine size, policy) point.
#[derive(Debug)]
pub struct SweepPoint {
    /// Machine qubit count (side²).
    pub machine: usize,
    /// Policy.
    pub policy: Policy,
    /// AQV if the program fit, `None` if it ran out of qubits.
    pub aqv: Option<u64>,
}

/// Sweeps machine sizes for `bench` between the Eager peak and ~1.3×
/// the Lazy peak, in `steps` geometric steps.
pub fn compute(bench: Benchmark, steps: usize) -> Vec<SweepPoint> {
    let program = build(bench).expect("benchmark builds");
    let lazy_probe = compile(&program, &CompilerConfig::nisq(Policy::Lazy))
        .expect("auto-grid probe");
    let eager_probe = compile(&program, &CompilerConfig::nisq(Policy::Eager))
        .expect("auto-grid probe");
    let lo = (eager_probe.peak_active as f64 * 0.9).max(4.0);
    let hi = lazy_probe.peak_active as f64 * 1.3;
    let mut points = Vec::new();
    for i in 0..steps {
        let f = i as f64 / (steps.max(2) - 1) as f64;
        let cap = lo * (hi / lo).powf(f);
        let side = (cap.sqrt().ceil() as u32).max(2);
        let arch = ArchSpec::Grid {
            width: side,
            height: side,
        };
        for policy in Policy::BASELINE_THREE {
            let report = compile(&program, &CompilerConfig::nisq(policy).with_arch(arch));
            points.push(SweepPoint {
                machine: (side * side) as usize,
                policy,
                aqv: report.ok().map(|r| r.aqv),
            });
        }
    }
    points
}

/// Renders the sweep for MODEXP.
pub fn render() -> String {
    let bench = Benchmark::Modexp;
    let mut out = String::new();
    out.push_str("Machine-size sweep — MODEXP (AQV per policy; '-' = does not fit)\n\n");
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>12}\n",
        "Machine", "LAZY", "EAGER", "SQUARE"
    ));
    let points = compute(bench, 8);
    let mut machines: Vec<usize> = points.iter().map(|p| p.machine).collect();
    machines.sort_unstable();
    machines.dedup();
    for m in machines {
        out.push_str(&format!("{m:>8}"));
        for policy in Policy::BASELINE_THREE {
            let p = points
                .iter()
                .find(|p| p.machine == m && p.policy == policy)
                .unwrap();
            match p.aqv {
                Some(a) => out.push_str(&format!(" {a:>12}")),
                None => out.push_str(&format!(" {:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str(
        "\nLazy needs the largest machine; SQUARE fits everywhere Eager does\n\
         (forced reclamation under pressure) with less volume.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_fits_wherever_eager_fits() {
        let points = compute(Benchmark::Modexp, 5);
        for m in points.iter().map(|p| p.machine).collect::<std::collections::BTreeSet<_>>() {
            let get = |policy: Policy| {
                points
                    .iter()
                    .find(|p| p.machine == m && p.policy == policy)
                    .unwrap()
            };
            if get(Policy::Eager).aqv.is_some() {
                assert!(
                    get(Policy::Square).aqv.is_some(),
                    "machine {m}: SQUARE failed where Eager fit"
                );
            }
        }
    }

    #[test]
    fn lazy_fails_on_small_machines() {
        let points = compute(Benchmark::Modexp, 5);
        let smallest = points.iter().map(|p| p.machine).min().unwrap();
        let lazy_small = points
            .iter()
            .find(|p| p.machine == smallest && p.policy == Policy::Lazy)
            .unwrap();
        assert!(
            lazy_small.aqv.is_none(),
            "Lazy unexpectedly fit the Eager-sized machine"
        );
    }
}

//! Machine-readable benchmark baselines (`BENCH_square.json`) and the
//! regression gate that CI runs against them.
//!
//! A baseline is a set of measured cells — one per
//! `(benchmark, policy)` on the auto-sized NISQ machine — each
//! carrying two kinds of data:
//!
//! * the **circuit fingerprint** (gates, swaps, depth, qubits, AQV):
//!   fully deterministic, compared exactly. Any drift means the
//!   compiler changed behaviour, which a pure performance PR must not
//!   do.
//! * the **timing** (median/min ns over `samples` compiles):
//!   machine-dependent, so every baseline also records a
//!   `calibration_ns` — the median runtime of a fixed arithmetic
//!   workload on the recording machine. Comparisons use
//!   *calibration-normalized* medians (`median_ns / calibration_ns`),
//!   which transfers tolerably across hosts of different speeds; the
//!   gate fails when the geometric mean of per-cell ratios on the
//!   executor hot path regresses beyond the configured tolerance
//!   (15% in CI).
//!
//! Refreshing the committed baseline after an intentional change:
//!
//! ```text
//! cargo run --release -p square-bench --bin bench_gate -- record --out BENCH_square.json
//! ```

use std::fmt;
use std::time::Instant;

use serde::{Serialize, Value};
use square_core::{compile, CompileReport, CompilerConfig, Policy};
use square_workloads::{build, Benchmark};

/// Schema marker for `BENCH_square.json` (bump on layout changes).
pub const SCHEMA_VERSION: u64 = 1;

/// Which slice of the workload catalog a run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchSet {
    /// The seven NISQ benchmarks — the executor hot path the CI gate
    /// guards; fast enough to run on every push.
    Smoke,
    /// The full 17-benchmark catalog (what the committed baseline
    /// records).
    Full,
    /// The routing hot path: MUL32/MUL64 under the SQUARE policy,
    /// with route-phase wall-clock recorded as dedicated
    /// `phase: "route"` cells. This is what the `routing-perf` CI
    /// step gates.
    Routing,
}

/// The benchmarks whose route phase the `Routing` set (and the full
/// baseline) records as dedicated cells.
const ROUTING_BENCHMARKS: [Benchmark; 2] = [Benchmark::Mul32, Benchmark::Mul64];

impl BenchSet {
    /// The benchmarks in this set.
    pub fn benchmarks(&self) -> &'static [Benchmark] {
        match self {
            BenchSet::Smoke => &Benchmark::NISQ,
            BenchSet::Full => &Benchmark::ALL,
            BenchSet::Routing => &ROUTING_BENCHMARKS,
        }
    }

    /// The policies this set measures each benchmark under.
    pub fn policies(&self) -> &'static [Policy] {
        match self {
            BenchSet::Smoke | BenchSet::Full => &Policy::ALL,
            BenchSet::Routing => &[Policy::Square],
        }
    }

    /// Whether this set records route-phase cells (for the
    /// [`ROUTING_BENCHMARKS`] under [`Policy::Square`]). The smoke set
    /// deliberately does not: it guards whole-compile timing and must
    /// stay comparable against baselines recorded before route cells
    /// existed.
    fn records_route_cells(&self) -> bool {
        matches!(self, BenchSet::Full | BenchSet::Routing)
    }

    /// Parses `smoke` / `full` / `routing`.
    pub fn parse(name: &str) -> Option<BenchSet> {
        match name.to_ascii_lowercase().as_str() {
            "smoke" | "nisq" => Some(BenchSet::Smoke),
            "full" | "all" => Some(BenchSet::Full),
            "routing" | "route" => Some(BenchSet::Routing),
            _ => None,
        }
    }
}

/// One measured `(benchmark, policy)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredCell {
    /// Benchmark compiled.
    pub benchmark: Benchmark,
    /// Policy used.
    pub policy: Policy,
    /// True for a route-phase cell: the timing columns measure the
    /// executor's route/schedule phase only (serialized as
    /// `"phase": "route"`). False for a whole-compile cell.
    pub route: bool,
    /// Median wall time of one compile, nanoseconds.
    pub median_ns: u64,
    /// Fastest observed compile, nanoseconds.
    pub min_ns: u64,
    /// Timed samples taken.
    pub samples: usize,
    /// Deterministic circuit fingerprint: program gates.
    pub gates: u64,
    /// Routing swaps.
    pub swaps: u64,
    /// Schedule depth.
    pub depth: u64,
    /// Physical qubits touched.
    pub qubits: usize,
    /// Active quantum volume.
    pub aqv: u64,
}

impl MeasuredCell {
    fn fingerprint(&self) -> (u64, u64, u64, usize, u64) {
        (self.gates, self.swaps, self.depth, self.qubits, self.aqv)
    }
}

/// A recorded baseline: calibration plus every measured cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Schema marker ([`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Median runtime of the fixed calibration workload on the
    /// recording machine, nanoseconds.
    pub calibration_ns: u64,
    /// Measured cells.
    pub cells: Vec<MeasuredCell>,
}

impl Baseline {
    /// Looks up one cell (`route` selects between the whole-compile
    /// and route-phase cell of the same `(benchmark, policy)`).
    pub fn get(&self, benchmark: Benchmark, policy: Policy, route: bool) -> Option<&MeasuredCell> {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.policy == policy && c.route == route)
    }
}

impl Serialize for MeasuredCell {
    fn serialize(&self) -> Value {
        let mut pairs = vec![
            (
                "benchmark",
                Value::String(self.benchmark.name().to_string()),
            ),
            ("policy", Value::String(self.policy.cli_name().to_string())),
        ];
        // Additive, optional field: absent means a whole-compile cell,
        // so baselines without route cells parse unchanged.
        if self.route {
            pairs.push(("phase", Value::String("route".to_string())));
        }
        pairs.extend([
            ("median_ns", Value::UInt(self.median_ns)),
            ("min_ns", Value::UInt(self.min_ns)),
            ("samples", Value::UInt(self.samples as u64)),
            ("gates", Value::UInt(self.gates)),
            ("swaps", Value::UInt(self.swaps)),
            ("depth", Value::UInt(self.depth)),
            ("qubits", Value::UInt(self.qubits as u64)),
            ("aqv", Value::UInt(self.aqv)),
        ]);
        Value::map(pairs)
    }
}

impl Serialize for Baseline {
    fn serialize(&self) -> Value {
        Value::map([
            ("schema", Value::UInt(self.schema)),
            ("calibration_ns", Value::UInt(self.calibration_ns)),
            ("cells", Value::seq(&self.cells)),
        ])
    }
}

/// Baseline parse/shape failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError(String);

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad baseline: {}", self.0)
    }
}

impl std::error::Error for BaselineError {}

fn field_u64(v: &Value, key: &str) -> Result<u64, BaselineError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| BaselineError(format!("missing numeric field `{key}`")))
}

/// Parses a baseline back from its JSON text.
///
/// # Errors
///
/// [`BaselineError`] on malformed JSON, wrong schema version, or
/// unknown benchmark/policy names.
pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
    let root = serde_json::from_str(text).map_err(|e| BaselineError(e.to_string()))?;
    let schema = field_u64(&root, "schema")?;
    if schema != SCHEMA_VERSION {
        return Err(BaselineError(format!(
            "schema {schema} != supported {SCHEMA_VERSION}; refresh the baseline"
        )));
    }
    let calibration_ns = field_u64(&root, "calibration_ns")?;
    let cells = root
        .get("cells")
        .and_then(Value::as_seq)
        .ok_or_else(|| BaselineError("missing `cells` array".into()))?;
    let cells = cells
        .iter()
        .map(|cell| {
            let bench_name = cell
                .get("benchmark")
                .and_then(Value::as_str)
                .ok_or_else(|| BaselineError("cell missing `benchmark`".into()))?;
            let policy_name = cell
                .get("policy")
                .and_then(Value::as_str)
                .ok_or_else(|| BaselineError("cell missing `policy`".into()))?;
            let route = match cell.get("phase").and_then(Value::as_str) {
                None => false,
                Some("route") => true,
                Some(other) => {
                    return Err(BaselineError(format!("unknown cell phase `{other}`")));
                }
            };
            Ok(MeasuredCell {
                benchmark: Benchmark::from_name(bench_name)
                    .ok_or_else(|| BaselineError(format!("unknown benchmark `{bench_name}`")))?,
                policy: Policy::parse(policy_name)
                    .ok_or_else(|| BaselineError(format!("unknown policy `{policy_name}`")))?,
                route,
                median_ns: field_u64(cell, "median_ns")?,
                min_ns: field_u64(cell, "min_ns")?,
                samples: field_u64(cell, "samples")? as usize,
                gates: field_u64(cell, "gates")?,
                swaps: field_u64(cell, "swaps")?,
                depth: field_u64(cell, "depth")?,
                qubits: field_u64(cell, "qubits")? as usize,
                aqv: field_u64(cell, "aqv")?,
            })
        })
        .collect::<Result<Vec<_>, BaselineError>>()?;
    Ok(Baseline {
        schema,
        calibration_ns,
        cells,
    })
}

/// Times the fixed calibration workload: a deterministic integer mix
/// long enough to dwarf timer granularity (~tens of ms). The median
/// of several runs gives each machine a speed yardstick that timing
/// comparisons normalize by.
pub fn calibrate() -> u64 {
    fn one_run() -> u64 {
        let start = Instant::now();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut acc = 0u64;
        for i in 0..12_000_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            acc = acc.wrapping_add(state ^ i);
        }
        std::hint::black_box(acc);
        start.elapsed().as_nanos() as u64
    }
    let mut runs: Vec<u64> = (0..5).map(|_| one_run()).collect();
    runs.sort_unstable();
    runs[runs.len() / 2]
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Measures every `(benchmark, policy)` cell of `set` on the
/// auto-sized NISQ machine: `samples` timed compiles per cell (after
/// one warm-up) plus the circuit fingerprint. `progress` receives one
/// line per completed cell (route it to stderr so stdout stays
/// machine-readable).
pub fn measure(
    set: BenchSet,
    samples: usize,
    mut progress: impl FnMut(&str),
) -> Result<Baseline, String> {
    let samples = samples.max(1);
    let calibration_ns = calibrate();
    let mut cells = Vec::new();
    for &benchmark in set.benchmarks() {
        let program = build(benchmark).map_err(|e| format!("{benchmark}: {e}"))?;
        for &policy in set.policies() {
            let config = CompilerConfig::nisq(policy);
            let compile_once = || -> Result<CompileReport, String> {
                compile(&program, &config).map_err(|e| format!("{benchmark}/{policy}: {e}"))
            };
            let report = compile_once()?; // warm-up, keeps the fingerprint
            let mut times = Vec::with_capacity(samples);
            let mut route_times = Vec::with_capacity(samples);
            for _ in 0..samples {
                let start = Instant::now();
                let r = compile_once()?;
                times.push(start.elapsed().as_nanos() as u64);
                route_times.push(r.route_ns);
                std::hint::black_box(r);
            }
            let cell = MeasuredCell {
                benchmark,
                policy,
                route: false,
                median_ns: median(times.clone()),
                min_ns: times.iter().copied().min().expect("samples >= 1"),
                samples,
                gates: report.gates,
                swaps: report.swaps,
                depth: report.depth,
                qubits: report.qubits,
                aqv: report.aqv,
            };
            progress(&format!(
                "measured {benchmark}/{policy}: median {:.3}ms over {samples} samples",
                cell.median_ns as f64 / 1e6
            ));
            let route_cell = (set.records_route_cells()
                && policy == Policy::Square
                && ROUTING_BENCHMARKS.contains(&benchmark))
            .then(|| MeasuredCell {
                route: true,
                median_ns: median(route_times.clone()),
                min_ns: route_times.iter().copied().min().expect("samples >= 1"),
                ..cell.clone()
            });
            cells.push(cell);
            if let Some(route_cell) = route_cell {
                progress(&format!(
                    "measured {benchmark}/{policy} route phase: median {:.3}ms",
                    route_cell.median_ns as f64 / 1e6
                ));
                cells.push(route_cell);
            }
        }
    }
    Ok(Baseline {
        schema: SCHEMA_VERSION,
        calibration_ns,
        cells,
    })
}

/// One cell's timing comparison.
#[derive(Debug, Clone)]
pub struct CellComparison {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Policy.
    pub policy: Policy,
    /// True when comparing route-phase cells.
    pub route: bool,
    /// Calibration-normalized median in the baseline.
    pub baseline_norm: f64,
    /// Calibration-normalized median in the current run.
    pub current_norm: f64,
    /// The smaller of the median-based and min-based normalized
    /// ratios (> 1 means slower). Taking the better of the two makes
    /// the gate robust to one-sided scheduler noise — a genuine
    /// regression slows the fastest sample too, while a noisy median
    /// on a shared CI runner does not move `min_ns`.
    pub ratio: f64,
}

/// Outcome of gating a current run against a baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Cells whose deterministic circuit fingerprint drifted — always
    /// a failure.
    pub fingerprint_mismatches: Vec<String>,
    /// Cells measured now but absent from the baseline (stale
    /// baseline) — always a failure.
    pub missing_cells: Vec<String>,
    /// Per-cell timing comparisons (cells present in both runs).
    pub timings: Vec<CellComparison>,
    /// Geometric mean of timing ratios — the hot-path regression
    /// metric the gate thresholds.
    pub geomean_ratio: f64,
    /// The configured tolerance (0.15 = fail above +15%).
    pub tolerance: f64,
}

impl GateReport {
    /// True when the gate passes.
    pub fn ok(&self) -> bool {
        self.fingerprint_mismatches.is_empty()
            && self.missing_cells.is_empty()
            && self.geomean_ratio <= 1.0 + self.tolerance
    }

    /// Renders the human-readable gate summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.fingerprint_mismatches {
            out.push_str(&format!("FINGERPRINT DRIFT: {m}\n"));
        }
        for m in &self.missing_cells {
            out.push_str(&format!("MISSING FROM BASELINE: {m}\n"));
        }
        out.push_str(&format!(
            "{:<12} {:<8} {:>14} {:>14} {:>8}\n",
            "benchmark", "policy", "base(norm)", "now(norm)", "ratio"
        ));
        for t in &self.timings {
            let phase = if t.route { " route" } else { "" };
            out.push_str(&format!(
                "{:<12} {:<8} {:>14.4} {:>14.4} {:>8.3}{phase}\n",
                t.benchmark.name(),
                t.policy.cli_name(),
                t.baseline_norm,
                t.current_norm,
                t.ratio
            ));
        }
        out.push_str(&format!(
            "geomean ratio {:.3} (tolerance +{:.0}%): {}\n",
            self.geomean_ratio,
            self.tolerance * 100.0,
            if self.ok() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// Gates `current` against `baseline`: exact fingerprint equality on
/// every shared cell, and a geometric-mean timing regression bound of
/// `tolerance` over the shared (hot-path) cells. Cells only present
/// in the baseline (e.g. the full catalog vs. a smoke run) are
/// ignored; cells only present in `current` fail the gate (the
/// committed baseline is stale).
pub fn gate(baseline: &Baseline, current: &Baseline, tolerance: f64) -> GateReport {
    let mut fingerprint_mismatches = Vec::new();
    let mut missing_cells = Vec::new();
    let mut timings = Vec::new();
    let mut log_sum = 0.0f64;
    for cell in &current.cells {
        let Some(base) = baseline.get(cell.benchmark, cell.policy, cell.route) else {
            let phase = if cell.route { " (route)" } else { "" };
            missing_cells.push(format!(
                "{}/{}{phase}",
                cell.benchmark,
                cell.policy.cli_name()
            ));
            continue;
        };
        if base.fingerprint() != cell.fingerprint() {
            fingerprint_mismatches.push(format!(
                "{}/{}: baseline (gates {}, swaps {}, depth {}, qubits {}, aqv {}) vs current (gates {}, swaps {}, depth {}, qubits {}, aqv {})",
                cell.benchmark,
                cell.policy.cli_name(),
                base.gates, base.swaps, base.depth, base.qubits, base.aqv,
                cell.gates, cell.swaps, cell.depth, cell.qubits, cell.aqv,
            ));
        }
        let base_cal = baseline.calibration_ns.max(1) as f64;
        let cur_cal = current.calibration_ns.max(1) as f64;
        let baseline_norm = base.median_ns as f64 / base_cal;
        let current_norm = cell.median_ns as f64 / cur_cal;
        let norm_ratio = |b: u64, c: u64| {
            let b = b as f64 / base_cal;
            if b > 0.0 {
                (c as f64 / cur_cal) / b
            } else {
                1.0
            }
        };
        // Per-cell ratio: the better of median-vs-median and
        // min-vs-min. See [`CellComparison::ratio`].
        let ratio =
            norm_ratio(base.median_ns, cell.median_ns).min(norm_ratio(base.min_ns, cell.min_ns));
        log_sum += ratio.max(f64::MIN_POSITIVE).ln();
        timings.push(CellComparison {
            benchmark: cell.benchmark,
            policy: cell.policy,
            route: cell.route,
            baseline_norm,
            current_norm,
            ratio,
        });
    }
    let geomean_ratio = if timings.is_empty() {
        1.0
    } else {
        (log_sum / timings.len() as f64).exp()
    };
    GateReport {
        fingerprint_mismatches,
        missing_cells,
        timings,
        geomean_ratio,
        tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(benchmark: Benchmark, policy: Policy, median_ns: u64, gates: u64) -> MeasuredCell {
        MeasuredCell {
            benchmark,
            policy,
            route: false,
            median_ns,
            min_ns: median_ns,
            samples: 3,
            gates,
            swaps: 1,
            depth: 2,
            qubits: 3,
            aqv: 4,
        }
    }

    fn baseline_of(cells: Vec<MeasuredCell>, calibration_ns: u64) -> Baseline {
        Baseline {
            schema: SCHEMA_VERSION,
            calibration_ns,
            cells,
        }
    }

    #[test]
    fn serialize_parse_round_trip() {
        let b = baseline_of(
            vec![
                cell(Benchmark::Rd53, Policy::Square, 1_000_000, 42),
                cell(Benchmark::Adder4, Policy::Lazy, 2_000_000, 99),
            ],
            50_000_000,
        );
        let text = serde_json::to_string_pretty(&b).unwrap();
        assert_eq!(parse(&text).unwrap(), b);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_names() {
        assert!(parse("{}").is_err());
        assert!(parse(r#"{"schema":999,"calibration_ns":1,"cells":[]}"#)
            .unwrap_err()
            .to_string()
            .contains("schema"));
        let bad = r#"{"schema":1,"calibration_ns":1,"cells":[{"benchmark":"NOPE","policy":"square","median_ns":1,"min_ns":1,"samples":1,"gates":1,"swaps":1,"depth":1,"qubits":1,"aqv":1}]}"#;
        assert!(parse(bad).unwrap_err().to_string().contains("NOPE"));
    }

    #[test]
    fn gate_passes_identical_runs() {
        let b = baseline_of(vec![cell(Benchmark::Rd53, Policy::Square, 1_000, 42)], 100);
        let report = gate(&b, &b.clone(), 0.15);
        assert!(report.ok());
        assert!((report.geomean_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate_normalizes_across_machine_speeds() {
        // Baseline machine: calibration 100, cell 1000. Current
        // machine twice as slow overall: calibration 200, cell 2000 —
        // normalized ratio 1.0, no regression.
        let base = baseline_of(vec![cell(Benchmark::Rd53, Policy::Square, 1_000, 42)], 100);
        let cur = baseline_of(vec![cell(Benchmark::Rd53, Policy::Square, 2_000, 42)], 200);
        let report = gate(&base, &cur, 0.15);
        assert!(report.ok(), "{}", report.render());
    }

    #[test]
    fn gate_fails_on_regression_beyond_tolerance() {
        let base = baseline_of(vec![cell(Benchmark::Rd53, Policy::Square, 1_000, 42)], 100);
        let cur = baseline_of(vec![cell(Benchmark::Rd53, Policy::Square, 1_200, 42)], 100);
        let report = gate(&base, &cur, 0.15);
        assert!(!report.ok());
        assert!((report.geomean_ratio - 1.2).abs() < 1e-9);
        // The same 20% slowdown passes a looser gate.
        assert!(gate(&base, &cur, 0.25).ok());
    }

    #[test]
    fn gate_tolerates_one_sided_median_noise_but_not_real_regressions() {
        let base = baseline_of(vec![cell(Benchmark::Rd53, Policy::Square, 1_000, 42)], 100);
        // Median drifted +30% but the fastest sample is unchanged:
        // scheduler noise, not a regression — the min-based ratio
        // rescues the cell.
        let noisy = baseline_of(
            vec![MeasuredCell {
                median_ns: 1_300,
                min_ns: 1_000,
                ..cell(Benchmark::Rd53, Policy::Square, 1_300, 42)
            }],
            100,
        );
        assert!(gate(&base, &noisy, 0.15).ok());
        // Both median and min moved: a real slowdown still fails.
        let slow = baseline_of(
            vec![MeasuredCell {
                median_ns: 1_300,
                min_ns: 1_300,
                ..cell(Benchmark::Rd53, Policy::Square, 1_300, 42)
            }],
            100,
        );
        assert!(!gate(&base, &slow, 0.15).ok());
    }

    #[test]
    fn gate_fails_on_fingerprint_drift_even_when_faster() {
        let base = baseline_of(vec![cell(Benchmark::Rd53, Policy::Square, 1_000, 42)], 100);
        let cur = baseline_of(vec![cell(Benchmark::Rd53, Policy::Square, 500, 43)], 100);
        let report = gate(&base, &cur, 0.15);
        assert!(!report.ok());
        assert_eq!(report.fingerprint_mismatches.len(), 1);
        assert!(report.render().contains("FINGERPRINT DRIFT"));
    }

    #[test]
    fn gate_ignores_baseline_only_cells_but_fails_on_new_cells() {
        let base = baseline_of(
            vec![
                cell(Benchmark::Rd53, Policy::Square, 1_000, 42),
                cell(Benchmark::Modexp, Policy::Square, 9_000, 7),
            ],
            100,
        );
        // Smoke run covers a subset: fine.
        let smoke = baseline_of(vec![cell(Benchmark::Rd53, Policy::Square, 1_000, 42)], 100);
        assert!(gate(&base, &smoke, 0.15).ok());
        // A cell the baseline has never seen: stale baseline.
        let newer = baseline_of(
            vec![
                cell(Benchmark::Rd53, Policy::Square, 1_000, 42),
                cell(Benchmark::Adder4, Policy::Lazy, 1_000, 5),
            ],
            100,
        );
        let report = gate(&base, &newer, 0.15);
        assert!(!report.ok());
        assert_eq!(report.missing_cells.len(), 1);
    }

    #[test]
    fn smoke_measure_records_fingerprints_and_timing() {
        // One tiny benchmark set through the real executor: use the
        // smoke set restricted via a custom loop is overkill here, so
        // measure the smallest benchmark directly with 1 sample.
        let baseline = measure(BenchSet::Smoke, 1, |_| {}).unwrap();
        assert_eq!(baseline.schema, SCHEMA_VERSION);
        assert!(baseline.calibration_ns > 0);
        assert_eq!(
            baseline.cells.len(),
            Benchmark::NISQ.len() * Policy::ALL.len()
        );
        for cell in &baseline.cells {
            assert!(cell.gates > 0, "{}", cell.benchmark);
            assert!(cell.median_ns > 0);
        }
        // Identical compilers gate cleanly against themselves.
        let again = measure(BenchSet::Smoke, 1, |_| {}).unwrap();
        let report = gate(&baseline, &again, 10.0);
        assert!(
            report.fingerprint_mismatches.is_empty(),
            "{}",
            report.render()
        );
    }
}

//! Table III — NISQ benchmark compilation results.
//!
//! Per benchmark and policy: program gates (swaps excluded), distinct
//! qubits used, circuit depth, and inserted swaps, on a small 2-D
//! lattice. The paper's headline shapes: Lazy uses the most qubits and
//! the fewest gates; Eager the reverse; SQUARE sits between on qubits
//! while cutting swaps below both.

use square_core::{ArchSpec, CompilerConfig, Policy};
use square_workloads::{build, Benchmark};

use crate::runner::run_policies;

/// One row of the table.
#[derive(Debug)]
pub struct Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Policy.
    pub policy: Policy,
    /// Program gates (uncomputation included, swaps excluded).
    pub gates: u64,
    /// Peak concurrently live qubits (the machine size the schedule
    /// needs — the paper's "# Qubits").
    pub qubits: usize,
    /// Depth in cycles.
    pub depth: u64,
    /// Routing swaps.
    pub swaps: u64,
}

/// The NISQ machine of Section V-C: a small square lattice with
/// nearest-neighbour coupling, big enough for every NISQ benchmark
/// under every policy.
pub fn nisq_machine() -> ArchSpec {
    ArchSpec::Grid {
        width: 6,
        height: 6,
    }
}

/// Computes all rows.
pub fn compute() -> Vec<Row> {
    let mut rows = Vec::new();
    for bench in Benchmark::NISQ {
        let program = build(bench).expect("benchmark builds");
        let base = CompilerConfig::nisq(Policy::Lazy).with_arch(nisq_machine());
        for r in run_policies(&program, &Policy::BASELINE_THREE, &base) {
            let rep = r.report.expect("NISQ benchmarks fit the machine");
            rows.push(Row {
                bench: bench.name(),
                policy: r.policy,
                gates: rep.gates,
                qubits: rep.peak_active,
                depth: rep.depth,
                swaps: rep.swaps,
            });
        }
    }
    rows
}

/// Renders the table as text.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("Table III — NISQ benchmarks compilation results (6x6 lattice)\n\n");
    out.push_str(&format!(
        "{:<12} {:<8} {:>8} {:>8} {:>8} {:>8}\n",
        "Benchmark", "Policy", "#Gates", "#Qubits", "Depth", "#Swaps"
    ));
    for row in compute() {
        out.push_str(&format!(
            "{:<12} {:<8} {:>8} {:>8} {:>8} {:>8}\n",
            row.bench,
            row.policy.label(),
            row.gates,
            row.qubits,
            row.depth,
            row.swaps
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_uses_most_qubits_fewest_gates() {
        let rows = compute();
        for bench in Benchmark::NISQ {
            let get = |p: Policy| {
                rows.iter()
                    .find(|r| r.bench == bench.name() && r.policy == p)
                    .unwrap()
            };
            let (lazy, eager) = (get(Policy::Lazy), get(Policy::Eager));
            assert!(
                lazy.gates <= eager.gates,
                "{bench}: lazy gates {} vs eager {}",
                lazy.gates,
                eager.gates
            );
            assert!(
                eager.qubits <= lazy.qubits,
                "{bench}: eager peak {} vs lazy {}",
                eager.qubits,
                lazy.qubits
            );
        }
    }

    #[test]
    fn square_retains_most_of_eagers_qubit_savings() {
        // Section V-C4: "SQUARE retains most of the qubit savings as
        // Eager does" — its footprint stays below Lazy's.
        let rows = compute();
        let mut square_wins = 0usize;
        for bench in Benchmark::NISQ {
            let get = |p: Policy| {
                rows.iter()
                    .find(|r| r.bench == bench.name() && r.policy == p)
                    .unwrap()
            };
            if get(Policy::Square).qubits <= get(Policy::Lazy).qubits {
                square_wins += 1;
            }
        }
        assert!(square_wins >= 5, "SQUARE ≤ Lazy qubits on {square_wins}/7");
    }
}

//! # square-bench — the experiment harness
//!
//! One module per artifact of the paper's evaluation section; the
//! `experiments` binary regenerates any of them (`-- all` for the full
//! set). EXPERIMENTS.md records paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod baseline;
pub mod fig1;
pub mod fig10;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod runner;
pub mod sweep;
pub mod table3;
pub mod table4;

pub use baseline::{Baseline, BenchSet, GateReport, MeasuredCell};
pub use runner::{lattice_for, run_policies, ExperimentResult};
pub use sweep::{
    error_json, report_json, run_sweep, run_sweep_with_progress, SweepArch, SweepCell, SweepMatrix,
    SweepSpec,
};

//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [fig1|fig5|table3|table4|fig8|fig8-fast|fig9|fig9-quick|fig10|fig10-quick|all|all-quick]
//! ```

use std::time::Instant;

use square_bench::{ablation, fig1, fig10, fig5, fig8, fig9, sweep, table3, table4};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let t = Instant::now();
    let run = |name: &str, body: &dyn Fn() -> String| {
        let start = Instant::now();
        println!("==== {name} ====");
        println!("{}", body());
        println!("({name} took {:?})\n", start.elapsed());
    };
    match arg.as_str() {
        "fig1" => run("fig1", &fig1::render),
        "fig5" => run("fig5", &fig5::render),
        "table3" => run("table3", &table3::render),
        "table4" => run("table4", &table4::render),
        "fig8" => run("fig8", &|| fig8::render(8192)),
        "fig8-fast" => run("fig8", &|| fig8::render(1024)),
        "fig9" => run("fig9", &|| fig9::render(false)),
        "fig9-quick" => run("fig9", &|| fig9::render(true)),
        "fig10" => run("fig10", &|| fig10::render(false)),
        "fig10-quick" => run("fig10", &|| fig10::render(true)),
        "ablation" => run("ablation", &ablation::render),
        "sweep" => run("sweep", &sweep::render),
        "all" | "all-quick" => {
            let quick = arg == "all-quick";
            run("table4", &table4::render);
            run("fig1", &fig1::render);
            run("fig5", &fig5::render);
            run("table3", &table3::render);
            run("fig8", &|| fig8::render(if quick { 1024 } else { 8192 }));
            run("fig9", &|| fig9::render(quick));
            run("fig10", &|| fig10::render(quick));
            run("sweep", &sweep::render);
            run("ablation", &ablation::render);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            std::process::exit(2);
        }
    }
    println!("total: {:?}", t.elapsed());
}

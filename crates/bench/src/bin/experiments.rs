//! Regenerates the paper's tables and figures, and runs policy sweeps.
//!
//! Legacy figure/table mode (one positional argument):
//!
//! ```text
//! experiments [fig1|fig5|table3|table4|fig8|fig8-fast|fig9|fig9-quick|fig10|fig10-quick|ablation|ablation-router|ablation-budget|ablation-budget-json|ablation-mbu|ablation-mbu-json|sweep|all|all-quick]
//! ```
//!
//! Sweep mode (any flag selects it): evaluates the
//! `benchmark × policy × arch` product in parallel and prints a table,
//! or a serialized matrix with `--json`.
//!
//! ```text
//! experiments [--bench RD53,ADDER4,...] [--policy lazy,eager,square,laa]
//!             [--arch nisq,ft,grid:WxH,full:N,line:N,heavyhex:D,ring:N]
//!             [--router greedy,lookahead|both] [--budgets N,M,inf] [--json]
//! ```
//!
//! Flag defaults: the NISQ benchmark set, all four policies, the
//! auto-sized NISQ lattice, the greedy router.

use std::process::ExitCode;
use std::time::Instant;

use std::sync::atomic::{AtomicUsize, Ordering};

use square_bench::{ablation, fig1, fig10, fig5, fig8, fig9, sweep, table3, table4};
use square_bench::{run_sweep_with_progress, SweepArch, SweepSpec};
use square_core::{Policy, RouterKind};
use square_workloads::Benchmark;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a.starts_with("--")) {
        run_sweep_cli(&args)
    } else {
        run_legacy(args.first().map(String::as_str).unwrap_or("all"))
    }
}

/// Splits a comma-separated flag value and parses each element.
fn parse_list<T>(
    flag: &str,
    value: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).ok_or_else(|| format!("{flag}: unknown value `{s}`")))
        .collect()
}

fn sweep_spec_from_flags(args: &[String]) -> Result<(SweepSpec, bool), String> {
    let mut spec = SweepSpec::nisq_default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--json" => json = true,
            "--bench" | "--benchmark" => {
                spec.benchmarks = parse_list(arg, flag_value(arg)?, Benchmark::from_name)?;
            }
            "--policy" => {
                spec.policies = parse_list(arg, flag_value(arg)?, Policy::parse)?;
            }
            "--arch" => {
                spec.archs = parse_list(arg, flag_value(arg)?, SweepArch::parse)?;
            }
            "--budgets" | "--budget" => {
                // `inf`/`none` is the unbudgeted base cell; numbers are
                // hard width caps (the `budget:N` policy dimension).
                spec.budgets = parse_list(arg, flag_value(arg)?, |s| {
                    if s.eq_ignore_ascii_case("inf")
                        || s == "\u{221e}"
                        || s.eq_ignore_ascii_case("none")
                    {
                        Some(None)
                    } else {
                        s.parse::<usize>().ok().filter(|&n| n > 0).map(Some)
                    }
                })?;
            }
            "--router" => {
                let value = flag_value(arg)?;
                spec.routers = if value.eq_ignore_ascii_case("both") {
                    RouterKind::ALL.to_vec()
                } else {
                    parse_list(arg, value, RouterKind::parse)?
                };
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if spec.is_empty() {
        return Err("empty sweep: every axis needs at least one value".to_string());
    }
    Ok((spec, json))
}

fn run_sweep_cli(args: &[String]) -> ExitCode {
    let (spec, json) = match sweep_spec_from_flags(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: experiments [--bench A,B] [--policy lazy,eager,square,laa] \
                 [--arch nisq,ft,grid:WxH,full:N,line:N,heavyhex:D,ring:N] \
                 [--router greedy,lookahead|both] [--budgets N,M,inf] [--json]"
            );
            return ExitCode::from(2);
        }
    };
    // Progress always goes to stderr: with `--json`, stdout carries
    // exactly one JSON document so the output stays pipeable
    // (`experiments --json | jq .`).
    let total = spec.len();
    let done = AtomicUsize::new(0);
    let matrix = run_sweep_with_progress(&spec, |cell| {
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        let outcome = match &cell.report {
            Ok(r) => format!("aqv {}", r.aqv),
            Err(e) => format!("failed: {e}"),
        };
        eprintln!(
            "[{n}/{total}] {} {} {} {}: {} ({:.0}ms)",
            cell.benchmark,
            cell.arch,
            cell.policy.cli_name(),
            cell.router.cli_name(),
            outcome,
            cell.compile_ms
        );
    });
    if json {
        match serde_json::to_string_pretty(&matrix) {
            Ok(text) => println!("{text}"),
            Err(error) => {
                eprintln!("serialization failed: {error}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{}", matrix.render_table());
    }
    ExitCode::SUCCESS
}

fn run_legacy(arg: &str) -> ExitCode {
    let t = Instant::now();
    let run = |name: &str, body: &dyn Fn() -> String| {
        let start = Instant::now();
        println!("==== {name} ====");
        println!("{}", body());
        println!("({name} took {:?})\n", start.elapsed());
    };
    match arg {
        "fig1" => run("fig1", &fig1::render),
        "fig5" => run("fig5", &fig5::render),
        "table3" => run("table3", &table3::render),
        "table4" => run("table4", &table4::render),
        "fig8" => run("fig8", &|| fig8::render(8192)),
        "fig8-fast" => run("fig8", &|| fig8::render(1024)),
        "fig9" => run("fig9", &|| fig9::render(false)),
        "fig9-quick" => run("fig9", &|| fig9::render(true)),
        "fig10" => run("fig10", &|| fig10::render(false)),
        "fig10-quick" => run("fig10", &|| fig10::render(true)),
        "ablation" => run("ablation", &ablation::render),
        "ablation-router" => run("ablation-router", &ablation::render_router),
        "ablation-budget" => run("ablation-budget", &ablation::render_budget),
        "ablation-mbu" => run("ablation-mbu", &ablation::render_mbu),
        "ablation-mbu-json" => {
            // MBU on/off cells for the CI artifact: exactly one JSON
            // document on stdout, nothing else.
            let cells = ablation::ablation_mbu(&square_workloads::Benchmark::NISQ);
            match serde_json::to_string_pretty(&serde::Value::seq(&cells)) {
                Ok(text) => println!("{text}"),
                Err(error) => {
                    eprintln!("serialization failed: {error}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "ablation-budget-json" => {
            // Machine-readable frontier for the CI artifact: exactly
            // one JSON document on stdout, nothing else.
            let cells = ablation::budget_pareto(
                &[
                    square_workloads::Benchmark::Rd53,
                    square_workloads::Benchmark::Adder4,
                    square_workloads::Benchmark::BelleS,
                ],
                3,
            );
            match serde_json::to_string_pretty(&serde::Value::seq(&cells)) {
                Ok(text) => println!("{text}"),
                Err(error) => {
                    eprintln!("serialization failed: {error}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "sweep" => run("sweep", &sweep::render),
        "all" | "all-quick" => {
            let quick = arg == "all-quick";
            run("table4", &table4::render);
            run("fig1", &fig1::render);
            run("fig5", &fig5::render);
            run("table3", &table3::render);
            run("fig8", &|| fig8::render(if quick { 1024 } else { 8192 }));
            run("fig9", &|| fig9::render(quick));
            run("fig10", &|| fig10::render(quick));
            run("sweep", &sweep::render);
            run("ablation", &ablation::render);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            return ExitCode::from(2);
        }
    }
    println!("total: {:?}", t.elapsed());
    ExitCode::SUCCESS
}

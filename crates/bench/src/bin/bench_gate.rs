//! The benchmark baseline recorder and CI regression gate.
//!
//! ```text
//! bench_gate record [--out BENCH_square.json] [--set full|smoke|routing] [--samples N]
//! bench_gate check --baseline BENCH_square.json [--set smoke|full|routing] [--samples N] [--tolerance 0.15]
//! ```
//!
//! `record` measures the executor across `benchmarks × policies` and
//! writes the machine-readable baseline (calibration-normalized; see
//! `square_bench::baseline`). `check` re-measures and fails (exit 1)
//! when any deterministic circuit fingerprint drifted, when a cell is
//! missing from the baseline, or when the hot-path geomean timing
//! ratio regresses beyond the tolerance.
//!
//! All progress goes to stderr; `record --out -` writes the JSON
//! baseline to stdout so it stays pipeable.

use std::process::ExitCode;

use square_bench::baseline::{self, BenchSet};

struct Options {
    set: BenchSet,
    samples: usize,
    tolerance: f64,
    baseline_path: Option<String>,
    out: String,
}

fn parse_options(mode: &str, args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        set: if mode == "record" {
            BenchSet::Full
        } else {
            BenchSet::Smoke
        },
        samples: if mode == "record" { 5 } else { 3 },
        tolerance: 0.15,
        baseline_path: None,
        out: "BENCH_square.json".to_string(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::to_owned)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--set" => {
                let v = value(arg)?;
                opts.set = BenchSet::parse(&v).ok_or_else(|| format!("--set: unknown `{v}`"))?;
            }
            "--samples" => {
                opts.samples = value(arg)?
                    .parse()
                    .map_err(|_| "--samples: not a number".to_string())?;
            }
            "--tolerance" => {
                opts.tolerance = value(arg)?
                    .parse()
                    .map_err(|_| "--tolerance: not a number".to_string())?;
            }
            "--baseline" => opts.baseline_path = Some(value(arg)?),
            "--out" => opts.out = value(arg)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("");
    let opts = parse_options(mode, args.get(1..).unwrap_or(&[]))?;
    match mode {
        "record" => {
            let measured = baseline::measure(opts.set, opts.samples, |line| eprintln!("{line}"))?;
            let json = serde_json::to_string_pretty(&measured).map_err(|e| e.to_string())? + "\n";
            if opts.out == "-" {
                print!("{json}");
            } else {
                std::fs::write(&opts.out, json).map_err(|e| format!("{}: {e}", opts.out))?;
                eprintln!(
                    "wrote {} ({} cells, calibration {:.1}ms)",
                    opts.out,
                    measured.cells.len(),
                    measured.calibration_ns as f64 / 1e6
                );
            }
            Ok(true)
        }
        "check" => {
            let path = opts
                .baseline_path
                .ok_or_else(|| "check needs --baseline <path>".to_string())?;
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let committed = baseline::parse(&text).map_err(|e| e.to_string())?;
            let current = baseline::measure(opts.set, opts.samples, |line| eprintln!("{line}"))?;
            let report = baseline::gate(&committed, &current, opts.tolerance);
            eprint!("{}", report.render());
            Ok(report.ok())
        }
        other => Err(format!(
            "usage: bench_gate record|check [flags] (got `{other}`)"
        )),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: bench_gate record [--out PATH|-] [--set full|smoke|routing] [--samples N]\n\
                 \x20      bench_gate check --baseline PATH [--set smoke|full|routing] [--samples N] [--tolerance F]"
            );
            ExitCode::from(2)
        }
    }
}

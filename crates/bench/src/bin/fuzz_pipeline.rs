//! Seeded pipeline fuzzer: random modular programs through
//! compile → route → replay, validated against the reference
//! semantics across every policy, every machine target (lattice, FT,
//! heavy-hex, ring), and both swap-chain routers.
//!
//! ```text
//! fuzz_pipeline [--start N] [--count N] [--spec SPEC] [--no-shrink]
//!               [--stdlib] [--repro-out PATH]
//! ```
//!
//! * `--start` / `--count` — the meta-seed range to run
//!   (default `0..200`); seeds are evaluated in parallel.
//! * `--spec` — re-run a single reproducer spec
//!   (`levels=..,callees=..,inputs=..,anc=..,gates=..,seed=..,bits=..`)
//!   instead of a seed range.
//! * `--no-shrink` — report failures as found, without greedy
//!   shrinking.
//! * `--stdlib` — stdlib-composition mode: each seed assembles a
//!   random entry module from `lib/std.sq` calls, resolves it through
//!   the multi-file import pass, runs the full validation matrix, and
//!   checks the import path agrees with the flattened single-file
//!   form. Failing seeds reproduce with `--stdlib --start SEED
//!   --count 1`; the generated `.sq` source rides along in the
//!   reproducer output.
//! * `--repro-out` — also write reproducer lines to a file (CI
//!   uploads it as an artifact on failure).
//!
//! Exit code 0 when every case validates, 1 on any mismatch, 2 on
//! usage errors. Progress goes to stderr; reproducers go to stdout
//! (and `--repro-out`).

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use rayon::prelude::*;
use square_verify::fuzz::{
    run_case, run_stdlib_case, shrink, CaseStats, FuzzCase, FuzzFailure, StdlibCase,
};

struct Options {
    start: u64,
    count: u64,
    spec: Option<String>,
    shrink: bool,
    stdlib: bool,
    repro_out: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        start: 0,
        count: 200,
        spec: None,
        shrink: true,
        stdlib: false,
        repro_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--start" => {
                opts.start = value(arg)?.parse().map_err(|e| format!("--start: {e}"))?;
            }
            "--count" => {
                opts.count = value(arg)?.parse().map_err(|e| format!("--count: {e}"))?;
            }
            "--spec" => opts.spec = Some(value(arg)?),
            "--no-shrink" => opts.shrink = false,
            "--stdlib" => opts.stdlib = true,
            "--repro-out" => opts.repro_out = Some(value(arg)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.stdlib && opts.spec.is_some() {
        return Err("--stdlib takes a seed range, not --spec".into());
    }
    Ok(opts)
}

/// Runs the stdlib-composition seed range; failing seeds come back as
/// ready-to-print reproducer lines (command line plus the generated
/// source, `#`-prefixed so the block stays one artifact).
fn run_stdlib_range(
    opts: &Options,
    totals: &mut CaseStats,
    repro_lines: &mut Vec<String>,
) -> usize {
    let done = AtomicUsize::new(0);
    let total = opts.count;
    let seeds: Vec<u64> = (opts.start..opts.start + opts.count).collect();
    let results: Vec<_> = seeds
        .into_par_iter()
        .map(|seed| {
            let outcome = run_stdlib_case(&StdlibCase::from_seed(seed));
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            if n.is_multiple_of(25) || n as u64 == total {
                eprintln!("[{n}/{total}] stdlib seeds validated");
            }
            outcome
        })
        .collect();
    let mut failures = 0;
    for r in results {
        match r {
            Ok(s) => {
                totals.cells += s.cells;
                totals.gates += s.gates;
                totals.swaps += s.swaps;
            }
            Err(f) => {
                failures += 1;
                eprintln!("FAIL: {f}");
                repro_lines.push(format!(
                    "fuzz_pipeline --stdlib --start {} --count 1   # {}",
                    f.case.seed, f.detail
                ));
                for line in f.case.source.lines() {
                    repro_lines.push(format!("#   {line}"));
                }
            }
        }
    }
    failures
}

fn report_failure(failure: &FuzzFailure, do_shrink: bool, lines: &mut Vec<String>) {
    eprintln!("FAIL: {failure}");
    if do_shrink {
        let (_, small_failure) = shrink(&failure.case);
        eprintln!("  shrunk to: {small_failure}");
        lines.push(reproducer_line(&small_failure));
    } else {
        lines.push(reproducer_line(failure));
    }
}

fn reproducer_line(failure: &FuzzFailure) -> String {
    format!(
        "fuzz_pipeline --spec {}   # seed {} · {}/{}/{} · {}",
        failure.case.spec(),
        failure.case.seed,
        failure.policy.cli_name(),
        failure.machine,
        failure.router.cli_name(),
        failure.error
    )
}

fn write_repro_out(path: Option<&str>, repro_lines: &[String]) {
    let Some(path) = path else { return };
    if repro_lines.is_empty() {
        return;
    }
    match std::fs::File::create(path) {
        Ok(mut f) => {
            for line in repro_lines {
                let _ = writeln!(f, "{line}");
            }
            eprintln!("reproducers written to {path}");
        }
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: fuzz_pipeline [--start N] [--count N] [--spec SPEC] [--no-shrink] \
                 [--stdlib] [--repro-out PATH]"
            );
            return ExitCode::from(2);
        }
    };
    let t0 = Instant::now();

    if opts.stdlib {
        let mut totals = CaseStats::default();
        let mut repro_lines = Vec::new();
        let failed = run_stdlib_range(&opts, &mut totals, &mut repro_lines);
        write_repro_out(opts.repro_out.as_deref(), &repro_lines);
        for line in &repro_lines {
            println!("{line}");
        }
        eprintln!(
            "{} stdlib cases, {} cells validated ({} gates, {} swaps replayed), {failed} \
             failures, {:.1?}",
            opts.count,
            totals.cells,
            totals.gates,
            totals.swaps,
            t0.elapsed()
        );
        return if failed == 0 {
            println!(
                "fuzz_pipeline --stdlib: {} cases / {} cells validated, zero semantic mismatches",
                opts.count, totals.cells
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let (mut failures, totals, ran): (Vec<FuzzFailure>, CaseStats, u64) =
        if let Some(spec) = &opts.spec {
            let Some(case) = FuzzCase::parse_spec(spec) else {
                eprintln!("unparseable spec `{spec}`");
                return ExitCode::from(2);
            };
            match run_case(&case) {
                Ok(stats) => (vec![], stats, 1),
                Err(f) => (vec![*f], CaseStats::default(), 1),
            }
        } else {
            let done = AtomicUsize::new(0);
            let total = opts.count;
            // (the vendored rayon parallelizes Vec, not ranges)
            let seeds: Vec<u64> = (opts.start..opts.start + opts.count).collect();
            let results: Vec<Result<CaseStats, Box<FuzzFailure>>> = seeds
                .into_par_iter()
                .map(|seed| {
                    let outcome = run_case(&FuzzCase::from_seed(seed));
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if n.is_multiple_of(25) || n as u64 == total {
                        eprintln!("[{n}/{total}] seeds validated");
                    }
                    outcome
                })
                .collect();
            let mut failures = Vec::new();
            let mut totals = CaseStats::default();
            for r in results {
                match r {
                    Ok(s) => {
                        totals.cells += s.cells;
                        totals.gates += s.gates;
                        totals.swaps += s.swaps;
                    }
                    Err(f) => failures.push(*f),
                }
            }
            (failures, totals, opts.count)
        };

    failures.sort_by_key(|f| f.case.seed);
    let mut repro_lines = Vec::new();
    for failure in &failures {
        report_failure(failure, opts.shrink, &mut repro_lines);
    }
    write_repro_out(opts.repro_out.as_deref(), &repro_lines);
    for line in &repro_lines {
        println!("{line}");
    }

    eprintln!(
        "{ran} cases, {} cells validated ({} gates, {} swaps replayed), {} failures, {:.1?}",
        totals.cells,
        totals.gates,
        totals.swaps,
        failures.len(),
        t0.elapsed()
    );
    if failures.is_empty() {
        println!(
            "fuzz_pipeline: {ran} cases / {} cells validated, zero semantic mismatches",
            totals.cells
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Compiler configuration: target machine, policy, heuristic knobs.

use square_arch::{
    CommModel, FullTopology, GridTopology, HeavyHexTopology, LineTopology, RingTopology, Topology,
};
use square_route::RouterConfig;

use crate::policy::Policy;

/// Target machine layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchSpec {
    /// 2-D lattice with the given dimensions.
    Grid {
        /// Width in qubits.
        width: u32,
        /// Height in qubits.
        height: u32,
    },
    /// Fully connected machine with `n` qubits.
    Full {
        /// Qubit count.
        n: u32,
    },
    /// Linear chain with `n` qubits.
    Line {
        /// Qubit count.
        n: u32,
    },
    /// IBM-style heavy-hex lattice of distance `d`.
    HeavyHex {
        /// Lattice distance parameter.
        d: u32,
    },
    /// 1-D ring (cycle) of `n` qubits.
    Ring {
        /// Qubit count.
        n: u32,
    },
    /// A near-square lattice auto-sized from the program's worst-case
    /// footprint (total forward ancilla allocations plus slack) — the
    /// "large enough machine" setting for AQV studies.
    AutoGrid,
    /// A heavy-hex lattice auto-sized the same way (smallest odd
    /// distance that fits).
    AutoHeavyHex,
    /// A ring auto-sized the same way.
    AutoRing,
}

/// Why an architecture spec string failed to parse.
///
/// Carries the offending spec so front ends can surface it verbatim
/// in a usage message, plus the specific constraint that rejected it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSpecParseError {
    spec: String,
    reason: &'static str,
}

impl ArchSpecParseError {
    /// The constraint the spec violated (e.g. "ring needs at least 3
    /// qubits").
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl std::fmt::Display for ArchSpecParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown arch `{}` (expected grid[:WxH], full:N, line:N, heavyhex[:D] or ring[:N]): {}",
            self.spec, self.reason
        )
    }
}

impl std::error::Error for ArchSpecParseError {}

/// The one arch-spec grammar, shared by every front end (`squarec
/// --arch`, the sweep CLI, the compile-service wire protocol):
/// `grid:WxH`, `full:N`, `line:N`, `heavyhex:D`, `ring:N`, with bare
/// `grid`, `heavyhex` and `ring` selecting the auto-sized variants.
/// Case-insensitive. Dimensions must be nonzero, a grid's total qubit
/// count must fit `u32`, heavy-hex distance is capped at 63 (its
/// qubit count grows ~5d²/2 and the all-pairs tables are O(n²)), and
/// a ring needs at least 3 qubits to be a cycle (`ring:1`/`ring:2`
/// degenerate into self-loops or doubled edges) — all enforced here so
/// invalid sizes surface as a typed parse error, not a panic inside a
/// routing worker.
impl std::str::FromStr for ArchSpec {
    type Err = ArchSpecParseError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let err = |reason: &'static str| ArchSpecParseError {
            spec: spec.to_string(),
            reason,
        };
        let bad = || err("unrecognized spec");
        let lower = spec.to_ascii_lowercase();
        match lower.as_str() {
            "grid" => return Ok(ArchSpec::AutoGrid),
            "heavyhex" => return Ok(ArchSpec::AutoHeavyHex),
            "ring" => return Ok(ArchSpec::AutoRing),
            _ => {}
        }
        let dim = |s: &str| s.parse::<u32>().ok().filter(|&n| n > 0);
        let (kind, arg) = lower.split_once(':').ok_or_else(bad)?;
        match kind {
            "grid" => {
                let (w, h) = arg.split_once('x').ok_or_else(bad)?;
                let dims = dim(w).zip(dim(h));
                let (width, height) = dims.ok_or_else(|| err("dimensions must be nonzero"))?;
                width
                    .checked_mul(height)
                    .ok_or_else(|| err("qubit count overflows u32"))?;
                Ok(ArchSpec::Grid { width, height })
            }
            "full" => Ok(ArchSpec::Full {
                n: dim(arg).ok_or_else(|| err("qubit count must be nonzero"))?,
            }),
            "line" => Ok(ArchSpec::Line {
                n: dim(arg).ok_or_else(|| err("qubit count must be nonzero"))?,
            }),
            "heavyhex" => Ok(ArchSpec::HeavyHex {
                d: dim(arg)
                    .filter(|&d| d <= 63)
                    .ok_or_else(|| err("distance must be in 1..=63"))?,
            }),
            "ring" => Ok(ArchSpec::Ring {
                n: dim(arg)
                    .filter(|&n| n >= 3)
                    .ok_or_else(|| err("ring needs at least 3 qubits"))?,
            }),
            _ => Err(bad()),
        }
    }
}

impl ArchSpec {
    /// The auto-sizing slack shared by every `Auto*` variant: worst
    /// case every forward allocation is simultaneously live, plus
    /// slack for uncompute re-allocations.
    fn auto_capacity(capacity_hint: usize) -> usize {
        capacity_hint.saturating_mul(3) / 2 + 16
    }

    /// Builds the topology; `capacity_hint` feeds the `Auto*`
    /// variants.
    pub fn build(&self, capacity_hint: usize) -> Box<dyn Topology> {
        match self {
            ArchSpec::Grid { width, height } => Box::new(GridTopology::new(*width, *height)),
            ArchSpec::Full { n } => Box::new(FullTopology::new(*n)),
            ArchSpec::Line { n } => Box::new(LineTopology::new(*n)),
            ArchSpec::HeavyHex { d } => Box::new(HeavyHexTopology::new(*d)),
            ArchSpec::Ring { n } => Box::new(RingTopology::new(*n)),
            ArchSpec::AutoGrid => Box::new(GridTopology::with_capacity(Self::auto_capacity(
                capacity_hint,
            ))),
            ArchSpec::AutoHeavyHex => Box::new(HeavyHexTopology::with_capacity(
                Self::auto_capacity(capacity_hint),
            )),
            ArchSpec::AutoRing => Box::new(RingTopology::with_capacity(Self::auto_capacity(
                capacity_hint,
            ))),
        }
    }
}

/// Weights of the LAA score (Section IV-C). Scores are in scheduler
/// cycles: distance is weighted by the swap cost it implies, waiting
/// time enters directly, and fresh allocations carry an
/// area-expansion premium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaaWeights {
    /// Cost per unit distance to the interaction centroid (a swap is
    /// 3 cycles, so ≈ 3 matches the hardware cost of one hop).
    pub w_comm: f64,
    /// Cost per cycle of waiting for a reused qubit to become
    /// available (reuse adds data dependencies → serialization).
    pub w_serial: f64,
    /// Premium on fresh qubits, scaled by the paper's area-expansion
    /// factor `√((N_active + 1)/N_active)` at allocation time.
    pub w_area: f64,
}

impl Default for LaaWeights {
    fn default() -> Self {
        LaaWeights {
            w_comm: 3.0,
            w_serial: 0.05,
            w_area: 2.0,
        }
    }
}

/// CER cost-model parameters (Section III-A2 / IV-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CerParams {
    /// Lower bound on the communication factor `S` so early decisions
    /// (before any swap history exists) are not degenerate.
    pub s_floor: f64,
    /// Absolute forced-reclamation floor: when fewer free qubits
    /// remain, CER reclaims regardless of cost — this is how SQUARE
    /// "fits computations into resource-constrained machines".
    pub pressure_reserve: usize,
    /// Fractional pressure threshold: reclamation is also forced when
    /// the free fraction of the machine drops below this value.
    pub pressure_fraction: f64,
    /// Base of the recursive-recomputation factor in Eq. 1. The paper
    /// uses the worst case `2^ℓ` (every ancestor later uncomputes);
    /// `0.0` (the default) selects the adaptive estimate
    /// `(1 + ρ)^ℓ`, where ρ is the running fraction of frames that
    /// actually chose to uncompute — see DESIGN.md §3.3.
    pub recompute_base: f64,
    /// Scope of Eq. 1's `N_active` factor. `true` (default) uses the
    /// frame's working set (its arguments + ancilla) — the qubits
    /// whose liveness the uncompute actually extends under ASAP
    /// scheduling. `false` uses the paper's literal machine-wide
    /// active count, which over-penalizes the micro-frames produced
    /// by MCX lowering (see DESIGN.md §3.3 and the ablation bench).
    pub c1_frame_scope: bool,
}

impl Default for CerParams {
    fn default() -> Self {
        CerParams {
            s_floor: 1.0,
            pressure_reserve: 8,
            pressure_fraction: 0.08,
            recompute_base: 0.0,
            c1_frame_scope: true,
        }
    }
}

impl CerParams {
    /// The effective forced-reclamation threshold on a machine with
    /// `capacity` qubits.
    ///
    /// The fractional term rounds **half-up** (`⌊x + 0.5⌋`), not by
    /// truncation: pressure-mode onset must be deterministic at exact
    /// fraction boundaries and must not silently shift when a
    /// `budget:N` run lowers the effective capacity fed in here.
    pub fn pressure_threshold(&self, capacity: usize) -> usize {
        let fractional = (capacity as f64 * self.pressure_fraction + 0.5).floor() as usize;
        self.pressure_reserve.max(fractional)
    }
}

/// Full compiler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerConfig {
    /// Ancilla-reuse policy (Table I).
    pub policy: Policy,
    /// Machine layout.
    pub arch: ArchSpec,
    /// Communication model (swap chains vs braiding).
    pub comm: CommModel,
    /// Record the scheduled physical circuit (needed for noise
    /// simulation; memory-heavy on large programs).
    pub record_schedule: bool,
    /// Swap-chain routing engine options (strategy, lookahead window
    /// depth, parallel-planning threshold). Braiding never consults
    /// it; the compiler normalizes the recorded selection to greedy on
    /// FT targets.
    pub router: RouterConfig,
    /// LAA score weights.
    pub laa: LaaWeights,
    /// CER cost-model parameters.
    pub cer: CerParams,
    /// Hard cap on simultaneously live qubits (the `budget:N` policy
    /// dimension). `None` (the default, `budget:∞`) disables the cap
    /// entirely and compiles bit-identically to the base policy; with
    /// `Some(n)`, allocations that would exceed `min(n, capacity)`
    /// live qubits first early-uncompute a reclaimable garbage frame
    /// (Reqomp-style), trading gates for width.
    pub budget: Option<usize>,
    /// Enables measurement-based uncomputation: eligible frames
    /// (Toffoli-built compute over their own ancilla, no live garbage)
    /// may replace the unitary inverse block with one mid-circuit
    /// measurement plus one classically controlled NOT per written
    /// ancilla, whenever the per-gate-class cost model says that is
    /// cheaper. `false` (the default) compiles bit-identically to the
    /// pre-MBU compiler.
    pub mbu: bool,
}

impl CompilerConfig {
    /// NISQ target: auto-sized lattice, swap-chain communication.
    pub fn nisq(policy: Policy) -> Self {
        CompilerConfig {
            policy,
            arch: ArchSpec::AutoGrid,
            comm: CommModel::SwapChains,
            record_schedule: false,
            router: RouterConfig::default(),
            laa: LaaWeights::default(),
            cer: CerParams::default(),
            budget: None,
            mbu: false,
        }
    }

    /// FT target: auto-sized lattice of logical tiles, braiding.
    pub fn ft(policy: Policy) -> Self {
        CompilerConfig {
            policy,
            arch: ArchSpec::AutoGrid,
            comm: CommModel::Braiding,
            record_schedule: false,
            router: RouterConfig::default(),
            laa: LaaWeights::default(),
            cer: CerParams::default(),
            budget: None,
            mbu: false,
        }
    }

    /// Overrides the machine layout.
    pub fn with_arch(mut self, arch: ArchSpec) -> Self {
        self.arch = arch;
        self
    }

    /// Enables schedule recording.
    pub fn with_schedule(mut self) -> Self {
        self.record_schedule = true;
        self
    }

    /// Selects the swap-chain routing options (a bare
    /// [`RouterKind`](square_route::RouterKind) converts, keeping the
    /// other knobs default).
    pub fn with_router(mut self, router: impl Into<RouterConfig>) -> Self {
        self.router = router.into();
        self
    }

    /// Sets the qubit budget (`None` = unbudgeted, identical to the
    /// base policy).
    pub fn with_budget(mut self, budget: Option<usize>) -> Self {
        self.budget = budget;
        self
    }

    /// Enables or disables measurement-based uncomputation (`false` =
    /// identical to the pre-MBU compiler).
    pub fn with_mbu(mut self, mbu: bool) -> Self {
        self.mbu = mbu;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_grid_scales_with_hint() {
        let small = ArchSpec::AutoGrid.build(10);
        let large = ArchSpec::AutoGrid.build(1000);
        assert!(small.qubit_count() >= 10);
        assert!(large.qubit_count() >= 1000);
        assert!(large.qubit_count() > small.qubit_count());
    }

    #[test]
    fn explicit_specs_build_exactly() {
        assert_eq!(
            ArchSpec::Grid {
                width: 4,
                height: 5
            }
            .build(0)
            .qubit_count(),
            20
        );
        assert_eq!(ArchSpec::Full { n: 7 }.build(0).qubit_count(), 7);
        assert_eq!(ArchSpec::Line { n: 9 }.build(0).qubit_count(), 9);
    }

    #[test]
    fn arch_specs_parse_from_str() {
        for (text, arch) in [
            ("grid", ArchSpec::AutoGrid),
            (
                "grid:8x4",
                ArchSpec::Grid {
                    width: 8,
                    height: 4,
                },
            ),
            ("full:64", ArchSpec::Full { n: 64 }),
            ("line:100", ArchSpec::Line { n: 100 }),
            ("HeavyHex:5", ArchSpec::HeavyHex { d: 5 }),
            ("heavyhex", ArchSpec::AutoHeavyHex),
            ("ring:24", ArchSpec::Ring { n: 24 }),
            ("ring", ArchSpec::AutoRing),
        ] {
            assert_eq!(text.parse::<ArchSpec>(), Ok(arch), "{text}");
        }
        for bad in [
            "nisq",
            "grid:8",
            "hex:3",
            "heavyhex:0",
            "heavyhex:99",
            "ring:0",
            "ring:1",
            "ring:2",
            "grid:0x4",
            "full:0",
            "grid:70000x70000",
        ] {
            let err = bad.parse::<ArchSpec>().unwrap_err();
            assert!(err.to_string().contains(bad), "{bad}: {err}");
        }
    }

    #[test]
    fn degenerate_specs_carry_the_violated_constraint() {
        for (bad, reason) in [
            ("ring:2", "at least 3"),
            ("grid:0x4", "nonzero"),
            ("heavyhex:0", "1..=63"),
            ("grid:70000x70000", "overflows"),
        ] {
            let err = bad.parse::<ArchSpec>().unwrap_err();
            assert!(err.reason().contains(reason), "{bad}: {}", err.reason());
        }
    }

    #[test]
    fn pressure_threshold_rounds_half_up_at_exact_boundaries() {
        let params = CerParams {
            pressure_reserve: 0,
            pressure_fraction: 0.1,
            ..CerParams::default()
        };
        // 25 · 0.1 = 2.5: exactly on the boundary, rounds *up* (the
        // historical `as usize` truncation gave 2).
        assert_eq!(params.pressure_threshold(25), 3);
        // 24 · 0.1 = 2.4 rounds down; 26 · 0.1 = 2.6 rounds up.
        assert_eq!(params.pressure_threshold(24), 2);
        assert_eq!(params.pressure_threshold(26), 3);
        // Exact integers are fixed points.
        assert_eq!(params.pressure_threshold(30), 3);
        assert_eq!(params.pressure_threshold(0), 0);
        // The absolute reserve still floors the result.
        let reserved = CerParams {
            pressure_reserve: 8,
            pressure_fraction: 0.1,
            ..CerParams::default()
        };
        assert_eq!(reserved.pressure_threshold(25), 8);
        assert_eq!(reserved.pressure_threshold(95), 10);
    }

    #[test]
    fn presets_pick_comm_model() {
        assert_eq!(
            CompilerConfig::nisq(Policy::Square).comm,
            CommModel::SwapChains
        );
        assert_eq!(CompilerConfig::ft(Policy::Square).comm, CommModel::Braiding);
    }
}

//! Compile reports: everything the evaluation section consumes.

use std::collections::HashMap;

use square_arch::{CommModel, PhysId};
use square_metrics::{aqv, UsageCurve};
use square_qir::{ModuleId, TraceOp, VirtId};
use square_route::{CommStats, LivenessSegment, PlacementEvent, RouterKind, ScheduledGate};

use crate::cer::CerCacheStats;
use crate::policy::Policy;

/// One recorded reclamation decision, in frame-completion (post-)
/// order. The sequence of `reclaim` bits drives
/// `square_qir::sem::RecordedDecisions`, letting the reference
/// semantics replay exactly the choices this compile made — the oracle
/// side of translation validation for state-dependent policies (CER).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimDecision {
    /// Module whose frame decided (an id in the *lowered* program).
    pub module: ModuleId,
    /// Call depth of the frame (entry = 0).
    pub depth: u32,
    /// True = uncomputed and reclaimed; false = left garbage.
    pub reclaim: bool,
    /// How the reclaim was lowered (meaningful only when `reclaim`;
    /// always [`ReclaimLowering::Unitary`] with MBU disabled, so
    /// decision logs compare equal across pre-MBU runs).
    pub lowering: ReclaimLowering,
}

/// How a reclaiming frame released its ancilla.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReclaimLowering {
    /// Mechanical inverse of the compute slice (Bennett uncompute).
    #[default]
    Unitary,
    /// Measurement-based uncompute: one measurement plus one
    /// classically controlled NOT per written ancilla.
    Mbu,
}

/// Per-frame reclamation decision counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Frames that uncomputed and reclaimed.
    pub reclaimed: u64,
    /// Frames that left garbage.
    pub garbage: u64,
    /// Reclamations forced by capacity pressure.
    pub forced: u64,
}

/// The compiler's output: the optimized schedule plus every resource
/// number the paper's tables and figures report.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Policy that produced this schedule.
    pub policy: Policy,
    /// Communication model of the target.
    pub comm: CommModel,
    /// Swap-chain router that produced this schedule (greedy under
    /// braiding, where no swap chains exist).
    pub router: RouterKind,
    /// Program gates executed (uncomputation included, routing swaps
    /// excluded — Table III's "# Gates").
    pub gates: u64,
    /// Routing SWAPs inserted (Table III's "# Swaps").
    pub swaps: u64,
    /// Circuit depth in scheduler cycles.
    pub depth: u64,
    /// Distinct physical qubits ever used (Table III's "# Qubits").
    pub qubits: usize,
    /// Peak simultaneously live qubits.
    pub peak_active: usize,
    /// Active quantum volume in qubit·cycles (Section III-B).
    pub aqv: u64,
    /// Final communication factor `S`.
    pub comm_factor: f64,
    /// Full scheduler statistics.
    pub stats: CommStats,
    /// Per-qubit liveness segments (for usage curves, Fig. 1).
    pub segments: Vec<LivenessSegment>,
    /// Scheduled physical circuit, if recording was requested.
    pub schedule: Option<Vec<ScheduledGate>>,
    /// The entry module's register (program I/O), in declaration order.
    pub entry_register: Vec<VirtId>,
    /// Final placement of still-live virtual qubits (measurement map).
    pub final_placement: HashMap<VirtId, PhysId>,
    /// Reclamation decisions taken.
    pub decisions: DecisionStats,
    /// Every reclamation decision in frame-completion order (the
    /// replayable form of [`CompileReport::decisions`]).
    pub decision_log: Vec<ReclaimDecision>,
    /// Placement history (binds, routing moves, releases), if schedule
    /// recording was requested — diagnostic input for the validator.
    pub placement_history: Option<Vec<PlacementEvent>>,
    /// CER decision-memo effectiveness (all zeros for policies that
    /// never consult CER).
    pub cer_cache: CerCacheStats,
    /// Machine capacity used for this run.
    pub machine_qubits: usize,
    /// Wall-clock nanoseconds spent in the route/schedule phase (the
    /// executor run: allocation, routing, scheduling). Diagnostic
    /// only — never serialized, so cached service reports stay
    /// byte-identical to fresh compiles.
    pub route_ns: u64,
    /// The executed virtual trace (alloc/gate/free events).
    pub trace: Vec<TraceOp>,
    /// The `budget:N` hard width cap this run compiled under, if any.
    /// `None` (no cap) leaves every other field bit-identical to an
    /// unbudgeted compile of the same base policy.
    pub budget: Option<usize>,
    /// Early-uncompute/recompute activity under the budget cap (all
    /// zeros when `budget` is `None`).
    pub recompute: RecomputeStats,
    /// Whether measurement-based uncomputation was enabled for this
    /// compile. `false` leaves every other field bit-identical to a
    /// pre-MBU compile.
    pub mbu: bool,
    /// Measurement-based-uncompute activity (all zeros when `mbu` is
    /// off).
    pub mbu_stats: MbuStats,
}

/// Counters for budget-driven early uncomputation and the recompute
/// work it later costs (ISSUE 8 tentpole; Reqomp-style accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecomputeStats {
    /// Frames uncomputed early to free width under the cap.
    pub early_uncomputed_frames: u64,
    /// Gates spent performing those early uncomputations.
    pub early_uncompute_gates: u64,
    /// Frames recomputed by a later ancestor sweep (an early-uncomputed
    /// frame whose region a mechanical inversion subsequently replayed).
    pub recomputed_frames: u64,
    /// Gates spent recomputing those frames inside ancestor sweeps.
    pub recompute_gates: u64,
}

/// Counters for measurement-based uncomputation (ISSUE 9 tentpole).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MbuStats {
    /// Frames that reclaimed via measure-and-correct instead of the
    /// unitary inverse.
    pub mbu_frames: u64,
    /// Mid-circuit measurements emitted.
    pub measurements: u64,
    /// Classically controlled corrections emitted.
    pub cond_corrections: u64,
    /// Cost-model-weighted price of the chosen MBU lowerings
    /// (`GateClassCosts::mbu_cost` summed over MBU frames), against…
    pub mbu_gates: u64,
    /// …the weighted price of the unitary inverse slices those frames
    /// skipped (the ablation's uncompute-cost delta; always larger,
    /// since MBU is only chosen when strictly cheaper).
    pub unitary_gates_avoided: u64,
}

impl CompileReport {
    /// Recomputes AQV from the segments (equals [`CompileReport::aqv`];
    /// exposed for cross-checking in tests).
    pub fn aqv_from_segments(&self) -> u64 {
        aqv(self.segments.iter().map(|s| (s.start, s.end)))
    }

    /// The qubits-in-use vs. time curve (Fig. 1).
    pub fn usage_curve(&self) -> UsageCurve {
        UsageCurve::from_segments(self.segments.iter().map(|s| (s.start, s.end)))
    }

    /// The reclaim bits of [`CompileReport::decision_log`], in oracle
    /// consumption order.
    pub fn decision_bools(&self) -> Vec<bool> {
        self.decision_log.iter().map(|d| d.reclaim).collect()
    }

    /// Physical qubits to measure for the entry register, in register
    /// order. Only meaningful when the register is still placed (it
    /// always is — entry qubits are never freed).
    pub fn measure_map(&self) -> Vec<PhysId> {
        self.entry_register
            .iter()
            .filter_map(|v| self.final_placement.get(v).copied())
            .collect()
    }

    /// One row of Table III: gates, qubits, depth, swaps.
    pub fn table_row(&self) -> String {
        format!(
            "{:<18} {:>8} {:>8} {:>8} {:>8}",
            self.policy.label(),
            self.gates,
            self.qubits,
            self.depth,
            self.swaps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_row_lists_policy_and_counts() {
        let report = CompileReport {
            policy: Policy::Square,
            comm: CommModel::SwapChains,
            router: RouterKind::Greedy,
            gates: 932,
            swaps: 370,
            depth: 635,
            qubits: 11,
            peak_active: 11,
            aqv: 1234,
            comm_factor: 0.5,
            stats: CommStats::default(),
            segments: vec![],
            schedule: None,
            entry_register: vec![],
            final_placement: HashMap::new(),
            decisions: DecisionStats::default(),
            decision_log: vec![],
            placement_history: None,
            cer_cache: CerCacheStats::default(),
            machine_qubits: 20,
            route_ns: 0,
            trace: vec![],
            budget: None,
            recompute: RecomputeStats::default(),
            mbu: false,
            mbu_stats: MbuStats::default(),
        };
        let row = report.table_row();
        assert!(row.contains("SQUARE"));
        assert!(row.contains("932"));
        assert!(row.contains("370"));
    }
}

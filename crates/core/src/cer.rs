//! Cost-Effective Reclamation (Algorithm 2, Eqs. 1–2 of the paper).
//!
//! At each potential reclamation point the compiler compares
//!
//! * `C1 = N_active · G_uncomp · S · 2^ℓ` — the cost of uncomputing:
//!   `G_uncomp` gates now, multiplied by the worst-case recomputation
//!   factor `2^ℓ` (every ancestor that later uncomputes replays this
//!   frame's uncompute), weighted by machine congestion (`N_active`)
//!   and communication (`S`);
//! * `C0 = N_anc · G_p · S · √((N_active + N_anc)/N_active)` — the cost
//!   of holding `N_anc` garbage qubits for the `G_p` gates until the
//!   parent's uncompute block, with the square root capturing the
//!   swap/braid lengthening caused by area expansion.
//!
//! Uncompute iff `C1 ≤ C0`. Under capacity pressure (free qubits below
//! the configured reserve) reclamation is forced, which is how SQUARE
//! throttles parallelism to fit constrained machines (Section IV-C).

use crate::config::CerParams;

/// Everything the CER decision sees at one reclamation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CerInputs {
    /// Currently live qubits on the machine (`N_active`).
    pub n_active: usize,
    /// Ancilla this frame would reclaim (`N_anc`).
    pub n_anc: usize,
    /// Measured gates of the would-be uncompute block (`G_uncomp`):
    /// the size of this frame's executed compute slice, children
    /// included.
    pub g_uncomp: u64,
    /// Estimated gates from here to the parent's uncompute (`G_p`).
    pub g_p: u64,
    /// Call depth (`ℓ`, entry = 0).
    pub level: usize,
    /// Running communication factor (`S`): average swap-chain length
    /// per gate (NISQ) or braid conflicts per braid (FT).
    pub comm_factor: f64,
    /// Free physical qubits remaining.
    pub free_qubits: usize,
    /// Machine capacity (for the fractional pressure threshold).
    pub capacity: usize,
    /// Running fraction of frames that chose to uncompute (for the
    /// adaptive recomputation factor).
    pub reclaim_rate: f64,
    /// The frame's working set: argument + ancilla qubits (the
    /// liveness the uncompute extends under frame-scoped C1).
    pub frame_qubits: usize,
}

/// The decision with its evaluated costs (kept for reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CerDecision {
    /// True → uncompute and reclaim.
    pub reclaim: bool,
    /// Evaluated `C1`.
    pub c1: f64,
    /// Evaluated `C0`.
    pub c0: f64,
    /// True when capacity pressure forced reclamation.
    pub forced: bool,
}

/// Evaluates Eqs. 1–2 and decides.
pub fn decide(inputs: &CerInputs, params: &CerParams) -> CerDecision {
    let s = inputs.comm_factor.max(params.s_floor);
    let n_active = inputs.n_active.max(1) as f64;
    let n_anc = inputs.n_anc as f64;
    // Recursive-recomputation factor: worst case `base^ℓ`, or the
    // adaptive expectation `(1+ρ)^ℓ` when no base is configured.
    let base = if params.recompute_base > 0.0 {
        params.recompute_base
    } else {
        1.0 + inputs.reclaim_rate.clamp(0.0, 1.0)
    };
    let recompute = base.powi(inputs.level.min(60) as i32);
    let c1_qubits = if params.c1_frame_scope {
        inputs.frame_qubits.max(1) as f64
    } else {
        n_active
    };
    let c1 = c1_qubits * inputs.g_uncomp as f64 * s * recompute;
    let c0 = n_anc * inputs.g_p as f64 * s * ((n_active + n_anc) / n_active).sqrt();
    if inputs.free_qubits < params.pressure_threshold(inputs.capacity) {
        return CerDecision {
            reclaim: true,
            c1,
            c0,
            forced: true,
        };
    }
    CerDecision {
        reclaim: c1 <= c0,
        c1,
        c0,
        forced: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CerInputs {
        CerInputs {
            n_active: 50,
            n_anc: 4,
            g_uncomp: 100,
            g_p: 10_000,
            level: 1,
            comm_factor: 1.0,
            free_qubits: 100,
            capacity: 200,
            reclaim_rate: 1.0,
            frame_qubits: 50,
        }
    }

    #[test]
    fn cheap_uncompute_long_reservation_reclaims() {
        // Small uncompute, long wait until the parent cleans up.
        let d = decide(
            &CerInputs {
                g_uncomp: 10,
                g_p: 1_000_000,
                ..base()
            },
            &CerParams::default(),
        );
        assert!(d.reclaim);
        assert!(d.c1 <= d.c0);
    }

    #[test]
    fn deep_frames_resist_recomputation() {
        // Same costs, but deep in the call graph: 2^ℓ dominates.
        let shallow = decide(&CerInputs { level: 0, ..base() }, &CerParams::default());
        let deep = decide(
            &CerInputs {
                level: 12,
                ..base()
            },
            &CerParams::default(),
        );
        assert!(shallow.c1 < deep.c1);
        assert!(deep.c1 > deep.c0, "deep frame prefers leaving garbage");
        assert!(!deep.reclaim);
    }

    #[test]
    fn zero_gp_never_reclaims_uncoerced() {
        // Entry frame: nothing follows, C0 = 0.
        let d = decide(
            &CerInputs {
                g_p: 0,
                level: 0,
                ..base()
            },
            &CerParams::default(),
        );
        assert!(!d.reclaim);
        assert_eq!(d.c0, 0.0);
    }

    #[test]
    fn pressure_forces_reclamation() {
        let d = decide(
            &CerInputs {
                g_p: 0,
                free_qubits: 2,
                ..base()
            },
            &CerParams::default(),
        );
        assert!(d.reclaim);
        assert!(d.forced);
    }

    #[test]
    fn comm_factor_scales_both_sides() {
        let lo = decide(
            &CerInputs {
                comm_factor: 1.0,
                ..base()
            },
            &CerParams::default(),
        );
        let hi = decide(
            &CerInputs {
                comm_factor: 5.0,
                ..base()
            },
            &CerParams::default(),
        );
        assert_eq!(lo.reclaim, hi.reclaim, "S scales both C1 and C0");
        assert!(hi.c1 > lo.c1 && hi.c0 > lo.c0);
    }

    #[test]
    fn s_floor_applies() {
        let d = decide(
            &CerInputs {
                comm_factor: 0.0,
                ..base()
            },
            &CerParams {
                s_floor: 2.0,
                pressure_reserve: 0,
                pressure_fraction: 0.0,
                recompute_base: 2.0,
                c1_frame_scope: false,
            },
        );
        // With S floored at 2, C1 = 50·100·2·2 = 20000.
        assert_eq!(d.c1, 20_000.0);
    }
}

//! Cost-Effective Reclamation (Algorithm 2, Eqs. 1–2 of the paper).
//!
//! At each potential reclamation point the compiler compares
//!
//! * `C1 = N_active · G_uncomp · S · 2^ℓ` — the cost of uncomputing:
//!   `G_uncomp` gates now, multiplied by the worst-case recomputation
//!   factor `2^ℓ` (every ancestor that later uncomputes replays this
//!   frame's uncompute), weighted by machine congestion (`N_active`)
//!   and communication (`S`);
//! * `C0 = N_anc · G_p · S · √((N_active + N_anc)/N_active)` — the cost
//!   of holding `N_anc` garbage qubits for the `G_p` gates until the
//!   parent's uncompute block, with the square root capturing the
//!   swap/braid lengthening caused by area expansion.
//!
//! Uncompute iff `C1 ≤ C0`. Under capacity pressure (free qubits below
//! the configured reserve) reclamation is forced, which is how SQUARE
//! throttles parallelism to fit constrained machines (Section IV-C).
//!
//! # Incremental evaluation
//!
//! The executor reaches a reclamation point once per frame, and a
//! large program executes the same module as millions of frames (MCX
//! lowering alone turns every wide gate into a micro-frame). Two
//! structures make the per-decision work O(1):
//!
//! * [`ModuleCostTable`] memoizes every *static* cost term per module
//!   — custom-uncompute gate totals and per-block suffix gate sums —
//!   so neither `G_uncomp` nor the `G_p` look-ahead ever re-walks
//!   statement lists at decision time (the historical executor
//!   re-summed the tail of every block per statement, O(n²) per
//!   block, and re-summed custom uncompute blocks per frame).
//! * [`CerEngine`] memoizes full decisions keyed by the *exact*
//!   dynamic inputs (heap pressure, costs, depth, communication
//!   state). Exact keys make the memo unconditionally sound — a hit
//!   is bit-identical to re-evaluating — and the entry pool is only
//!   invalidated (evicted) on allocation events, the moments the
//!   pressure terms actually move.

use std::collections::HashMap;

use square_qir::analysis::ProgramStats;
use square_qir::{ModuleId, Program, SliceClassCounts, Stmt};

use crate::config::CerParams;

/// Per-gate-class execution costs, the denominator of the unitary-vs-
/// MBU reclaim comparison. Units are abstract "primitive effort" —
/// what matters is the *ratio* between a Toffoli and a measurement.
///
/// The defaults follow the standard Clifford+T accounting the rest of
/// the costing uses ([`square_qir::Gate::two_qubit_cost`]): a Toffoli
/// decomposes into 6 CNOT-class interactions and a SWAP into 3, while
/// X, CNOT, measurement and a classically controlled X are single
/// primitive events. Under these weights, measure-and-correct (cost
/// `2` per ancilla) beats the unitary inverse of any Toffoli-built
/// compute slice — the MBU paper's core observation.
///
/// The table is deliberately **not** per-request: service compile
/// caches key prepared programs by program hash, so the cost model
/// must be a program-independent constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateClassCosts {
    /// NOT.
    pub x: u64,
    /// CNOT.
    pub cx: u64,
    /// Toffoli.
    pub ccx: u64,
    /// SWAP.
    pub swap: u64,
    /// Mid-circuit measurement.
    pub measure: u64,
    /// Classically controlled NOT.
    pub cond_x: u64,
}

impl Default for GateClassCosts {
    fn default() -> Self {
        GateClassCosts {
            x: 1,
            cx: 1,
            ccx: 6,
            swap: 3,
            measure: 1,
            cond_x: 1,
        }
    }
}

impl GateClassCosts {
    /// Weighted cost of replaying a recorded slice (the unitary
    /// inverse has the same class histogram as the forward slice).
    pub fn slice_cost(&self, counts: &SliceClassCounts) -> u64 {
        counts.x * self.x
            + counts.cx * self.cx
            + counts.ccx * self.ccx
            + counts.swap * self.swap
            + counts.measure * self.measure
            + counts.cond * self.cond_x
    }

    /// Weighted cost of measurement-based uncompute over `written`
    /// dirty ancillas: one measurement plus one conditional correction
    /// each.
    pub fn mbu_cost(&self, written: usize) -> u64 {
        written as u64 * (self.measure + self.cond_x)
    }
}

/// Everything the CER decision sees at one reclamation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CerInputs {
    /// Currently live qubits on the machine (`N_active`).
    pub n_active: usize,
    /// Ancilla this frame would reclaim (`N_anc`).
    pub n_anc: usize,
    /// Measured gates of the would-be uncompute block (`G_uncomp`):
    /// the size of this frame's executed compute slice, children
    /// included.
    pub g_uncomp: u64,
    /// Estimated gates from here to the parent's uncompute (`G_p`).
    pub g_p: u64,
    /// Call depth (`ℓ`, entry = 0).
    pub level: usize,
    /// Running communication factor (`S`): average swap-chain length
    /// per gate (NISQ) or braid conflicts per braid (FT).
    pub comm_factor: f64,
    /// Free physical qubits remaining.
    pub free_qubits: usize,
    /// Machine capacity (for the fractional pressure threshold).
    pub capacity: usize,
    /// Running fraction of frames that chose to uncompute (for the
    /// adaptive recomputation factor).
    pub reclaim_rate: f64,
    /// The frame's working set: argument + ancilla qubits (the
    /// liveness the uncompute extends under frame-scoped C1).
    pub frame_qubits: usize,
}

/// The decision with its evaluated costs (kept for reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CerDecision {
    /// True → uncompute and reclaim.
    pub reclaim: bool,
    /// Evaluated `C1`.
    pub c1: f64,
    /// Evaluated `C0`.
    pub c0: f64,
    /// True when capacity pressure forced reclamation.
    pub forced: bool,
}

/// The dynamic factors of Eqs. 1–2 after parameter resolution: the
/// floored communication factor `S` and the recursive-recomputation
/// factor `base^ℓ` (worst case when a base is configured, else the
/// adaptive expectation `(1+ρ)^ℓ`).
///
/// Shared by [`decide`] and the [`CerEngine`] memo key — the memo is
/// sound precisely because its key captures these *resolved* values,
/// so the resolution logic must live in exactly one place.
fn resolved_factors(inputs: &CerInputs, params: &CerParams) -> (f64, f64) {
    let s = inputs.comm_factor.max(params.s_floor);
    let base = if params.recompute_base > 0.0 {
        params.recompute_base
    } else {
        1.0 + inputs.reclaim_rate.clamp(0.0, 1.0)
    };
    let recompute = base.powi(inputs.level.min(60) as i32);
    (s, recompute)
}

/// Evaluates Eqs. 1–2 and decides.
pub fn decide(inputs: &CerInputs, params: &CerParams) -> CerDecision {
    let (s, recompute) = resolved_factors(inputs, params);
    let n_active = inputs.n_active.max(1) as f64;
    let n_anc = inputs.n_anc as f64;
    let c1_qubits = if params.c1_frame_scope {
        inputs.frame_qubits.max(1) as f64
    } else {
        n_active
    };
    let c1 = c1_qubits * inputs.g_uncomp as f64 * s * recompute;
    let c0 = n_anc * inputs.g_p as f64 * s * ((n_active + n_anc) / n_active).sqrt();
    if inputs.free_qubits < params.pressure_threshold(inputs.capacity) {
        return CerDecision {
            reclaim: true,
            c1,
            c0,
            forced: true,
        };
    }
    CerDecision {
        reclaim: c1 <= c0,
        c1,
        c0,
        forced: false,
    }
}

/// Scores an early-uncompute candidate under the `budget:N` cap: the
/// expected total cost of uncomputing the frame *now* plus recomputing
/// it later (amplified by the recursive factor at the frame's call
/// depth), per qubit freed. Lower is better. Mirrors the
/// recompute-base resolution of [`decide`] so budget evictions stay
/// consistent with the CER memo's cost model.
pub fn early_reclaim_score(
    params: &CerParams,
    gates: u64,
    freed: usize,
    reclaim_rate: f64,
    level: usize,
) -> f64 {
    let base = if params.recompute_base > 0.0 {
        params.recompute_base
    } else {
        1.0 + reclaim_rate.clamp(0.0, 1.0)
    };
    let recompute = base.powi(level.min(60) as i32);
    gates as f64 * (1.0 + recompute) / freed.max(1) as f64
}

/// Per-block memoized gate costs of one module: total custom-uncompute
/// gates plus suffix sums over every block, so "gates remaining after
/// statement `i`" is a single array lookup.
#[derive(Debug, Clone, Default)]
struct ModuleCosts {
    /// Total forward gates of the custom uncompute block, if any.
    custom_gates: Option<u64>,
    /// `compute_suffix[i]` = forward gates of `compute()[i..]`.
    compute_suffix: Vec<u64>,
    /// `store_suffix[i]` = forward gates of `store()[i..]`.
    store_suffix: Vec<u64>,
    /// Suffix sums of the custom uncompute block (empty when none).
    custom_suffix: Vec<u64>,
}

/// Memoized static cost terms for every module of a program, built
/// once per compile (in parallel — modules are independent) and read
/// in O(1) on the executor's per-frame hot path.
#[derive(Debug, Clone)]
pub struct ModuleCostTable {
    modules: Vec<ModuleCosts>,
    gate_class: GateClassCosts,
}

fn suffix_sums(stats: &ProgramStats, stmts: &[Stmt]) -> Vec<u64> {
    let mut suffix = vec![0u64; stmts.len() + 1];
    for (i, stmt) in stmts.iter().enumerate().rev() {
        suffix[i] = suffix[i + 1] + stats.stmt_forward_gates(stmt);
    }
    suffix
}

impl ModuleCostTable {
    /// Builds the table for `program`. Each module's terms depend only
    /// on `stats` (already fixed), so modules are processed in
    /// parallel; the result is deterministic regardless of core count.
    pub fn build(program: &Program, stats: &ProgramStats) -> Self {
        use rayon::prelude::*;
        let modules = program
            .modules()
            .par_iter()
            .map(|module| {
                let custom_suffix = module
                    .custom_uncompute()
                    .map(|stmts| suffix_sums(stats, stmts))
                    .unwrap_or_default();
                ModuleCosts {
                    custom_gates: module
                        .custom_uncompute()
                        .map(|_| custom_suffix.first().copied().unwrap_or(0)),
                    compute_suffix: suffix_sums(stats, module.compute()),
                    store_suffix: suffix_sums(stats, module.store()),
                    custom_suffix,
                }
            })
            .collect();
        ModuleCostTable {
            modules,
            gate_class: GateClassCosts::default(),
        }
    }

    /// The per-gate-class cost model used to score unitary vs. MBU
    /// reclaim lowerings.
    pub fn gate_class_costs(&self) -> &GateClassCosts {
        &self.gate_class
    }

    /// Total forward gates of the module's custom uncompute block, or
    /// `None` when the module has no custom block (the executor then
    /// measures the recorded compute slice instead).
    pub fn custom_uncompute_gates(&self, id: ModuleId) -> Option<u64> {
        self.modules[id.index()].custom_gates
    }

    /// Static estimate of the gates one uncompute of this module
    /// costs: the custom uncompute block when present, else the
    /// mechanical inverse of the compute block (identical gate count
    /// to the forward compute). The budget engine's early-reclaim
    /// scoring falls back to this when a frame's measured region size
    /// is unavailable.
    pub fn uncompute_gates(&self, id: ModuleId) -> u64 {
        let costs = &self.modules[id.index()];
        costs
            .custom_gates
            .unwrap_or_else(|| costs.compute_suffix.first().copied().unwrap_or(0))
    }

    /// Forward gates of the compute block strictly after statement
    /// `index`.
    pub fn compute_tail(&self, id: ModuleId, index: usize) -> u64 {
        self.modules[id.index()].compute_suffix[index + 1]
    }

    /// Forward gates of the store block strictly after statement
    /// `index`.
    pub fn store_tail(&self, id: ModuleId, index: usize) -> u64 {
        self.modules[id.index()].store_suffix[index + 1]
    }

    /// Forward gates of the custom uncompute block strictly after
    /// statement `index`.
    pub fn custom_tail(&self, id: ModuleId, index: usize) -> u64 {
        self.modules[id.index()].custom_suffix[index + 1]
    }
}

/// Canonicalized memo key: the *resolved* terms [`decide`] actually
/// multiplies, with float terms captured by their bit patterns. Two
/// equal keys evaluate to the same [`CerDecision`] by construction:
///
/// * the communication factor enters only as `max(S, s_floor)`, so
///   the key stores the floored value;
/// * call depth and the running reclaim rate enter only through the
///   resolved recomputation factor `base^ℓ`, so the key stores that
///   product — frames whose factors coincide (every entry-level
///   frame, and the steady state of repeated micro-frames) share an
///   entry even while the raw rate drifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CerKey {
    module: u32,
    n_active: u32,
    n_anc: u32,
    g_uncomp: u64,
    g_p: u64,
    free_qubits: u32,
    capacity: u32,
    frame_qubits: u32,
    s_bits: u64,
    recompute_bits: u64,
}

impl CerKey {
    fn new(module: ModuleId, inputs: &CerInputs, params: &CerParams) -> Self {
        let (s, recompute) = resolved_factors(inputs, params);
        CerKey {
            module: module.index() as u32,
            n_active: inputs.n_active as u32,
            n_anc: inputs.n_anc as u32,
            g_uncomp: inputs.g_uncomp,
            g_p: inputs.g_p,
            free_qubits: inputs.free_qubits as u32,
            capacity: inputs.capacity as u32,
            frame_qubits: inputs.frame_qubits as u32,
            s_bits: s.to_bits(),
            recompute_bits: recompute.to_bits(),
        }
    }
}

/// Decision-memo effectiveness counters, surfaced in compile reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CerCacheStats {
    /// Decisions answered from the memo.
    pub hits: u64,
    /// Decisions evaluated fresh.
    pub misses: u64,
    /// Eviction sweeps run at allocation events.
    pub invalidations: u64,
}

impl CerCacheStats {
    /// Fraction of decisions answered from the memo (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Entries kept across allocation events before an eviction sweep
/// clears the memo (bounds memory on programs with millions of
/// frames; pressure cycles shorter than this keep their hits).
const CER_CACHE_EVICT_LEN: usize = 8192;

/// The incremental CER evaluator: a decision memo over canonicalized
/// exact inputs, invalidated only at allocation events.
///
/// The engine owns its [`CerParams`] — memo entries are only valid
/// under the parameters they were evaluated with, and fixing them at
/// construction makes that unconditional.
///
/// Allocation events (every `Alloc`/`Free` the executor performs) are
/// the only points where the pressure terms (`N_active`,
/// `free_qubits`) move, so they are the only points where cached
/// entries can go stale-but-rehittable; [`CerEngine::note_allocation_event`]
/// runs the (size-bounded) eviction there and nowhere else.
///
/// Hit rates are workload- and configuration-dependent and are
/// reported per compile (`CompileReport::cer_cache`). Under the
/// default *adaptive* recomputation base the running reclaim rate
/// legitimately perturbs the resolved `base^ℓ` of every depth > 0
/// decision, so hits concentrate in entry-level frames and in
/// fixed-base (`recompute_base > 0`) configurations; exactness is
/// never traded for hit rate, because a hit must be bit-identical to
/// re-evaluating.
#[derive(Debug)]
pub struct CerEngine {
    params: CerParams,
    cache: HashMap<CerKey, CerDecision>,
    stats: CerCacheStats,
}

impl CerEngine {
    /// A fresh engine with an empty memo, evaluating under `params`.
    pub fn new(params: CerParams) -> Self {
        CerEngine {
            params,
            cache: HashMap::new(),
            stats: CerCacheStats::default(),
        }
    }

    /// Records an allocation event (`Alloc` or `Free`): the only
    /// moment the memo is invalidated. Eviction is size-bounded so
    /// recurring pressure states keep their entries.
    pub fn note_allocation_event(&mut self) {
        if self.cache.len() > CER_CACHE_EVICT_LEN {
            self.cache.clear();
            self.stats.invalidations += 1;
        }
    }

    /// Evaluates (or recalls) the decision for `module` at `inputs`.
    /// Bit-identical to calling [`decide`] directly with the engine's
    /// parameters.
    pub fn decide(&mut self, module: ModuleId, inputs: &CerInputs) -> CerDecision {
        let key = CerKey::new(module, inputs, &self.params);
        if let Some(d) = self.cache.get(&key) {
            self.stats.hits += 1;
            return *d;
        }
        let d = decide(inputs, &self.params);
        self.stats.misses += 1;
        self.cache.insert(key, d);
        d
    }

    /// Memo effectiveness counters.
    pub fn stats(&self) -> CerCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CerInputs {
        CerInputs {
            n_active: 50,
            n_anc: 4,
            g_uncomp: 100,
            g_p: 10_000,
            level: 1,
            comm_factor: 1.0,
            free_qubits: 100,
            capacity: 200,
            reclaim_rate: 1.0,
            frame_qubits: 50,
        }
    }

    #[test]
    fn cheap_uncompute_long_reservation_reclaims() {
        // Small uncompute, long wait until the parent cleans up.
        let d = decide(
            &CerInputs {
                g_uncomp: 10,
                g_p: 1_000_000,
                ..base()
            },
            &CerParams::default(),
        );
        assert!(d.reclaim);
        assert!(d.c1 <= d.c0);
    }

    #[test]
    fn deep_frames_resist_recomputation() {
        // Same costs, but deep in the call graph: 2^ℓ dominates.
        let shallow = decide(&CerInputs { level: 0, ..base() }, &CerParams::default());
        let deep = decide(
            &CerInputs {
                level: 12,
                ..base()
            },
            &CerParams::default(),
        );
        assert!(shallow.c1 < deep.c1);
        assert!(deep.c1 > deep.c0, "deep frame prefers leaving garbage");
        assert!(!deep.reclaim);
    }

    #[test]
    fn zero_gp_never_reclaims_uncoerced() {
        // Entry frame: nothing follows, C0 = 0.
        let d = decide(
            &CerInputs {
                g_p: 0,
                level: 0,
                ..base()
            },
            &CerParams::default(),
        );
        assert!(!d.reclaim);
        assert_eq!(d.c0, 0.0);
    }

    #[test]
    fn pressure_forces_reclamation() {
        let d = decide(
            &CerInputs {
                g_p: 0,
                free_qubits: 2,
                ..base()
            },
            &CerParams::default(),
        );
        assert!(d.reclaim);
        assert!(d.forced);
    }

    #[test]
    fn comm_factor_scales_both_sides() {
        let lo = decide(
            &CerInputs {
                comm_factor: 1.0,
                ..base()
            },
            &CerParams::default(),
        );
        let hi = decide(
            &CerInputs {
                comm_factor: 5.0,
                ..base()
            },
            &CerParams::default(),
        );
        assert_eq!(lo.reclaim, hi.reclaim, "S scales both C1 and C0");
        assert!(hi.c1 > lo.c1 && hi.c0 > lo.c0);
    }

    #[test]
    fn s_floor_applies() {
        let d = decide(
            &CerInputs {
                comm_factor: 0.0,
                ..base()
            },
            &CerParams {
                s_floor: 2.0,
                pressure_reserve: 0,
                pressure_fraction: 0.0,
                recompute_base: 2.0,
                c1_frame_scope: false,
            },
        );
        // With S floored at 2, C1 = 50·100·2·2 = 20000.
        assert_eq!(d.c1, 20_000.0);
    }

    #[test]
    fn cost_table_suffix_sums_match_naive_tail_walk() {
        use square_qir::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        let leaf = b
            .module("leaf", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.store();
                m.ccx(x, a, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 3, |m| {
                let (x, t, out) = (m.ancilla(0), m.ancilla(1), m.ancilla(2));
                m.x(x);
                m.call(leaf, &[x, t]);
                m.x(x);
                m.store();
                m.cx(t, out);
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let stats = ProgramStats::analyze(&p);
        let table = ModuleCostTable::build(&p, &stats);
        for id in [leaf, main] {
            let module = p.module(id);
            for (i, _) in module.compute().iter().enumerate() {
                let naive: u64 = module.compute()[i + 1..]
                    .iter()
                    .map(|s| stats.stmt_forward_gates(s))
                    .sum();
                assert_eq!(table.compute_tail(id, i), naive, "{id:?} compute[{i}]");
            }
            for (i, _) in module.store().iter().enumerate() {
                let naive: u64 = module.store()[i + 1..]
                    .iter()
                    .map(|s| stats.stmt_forward_gates(s))
                    .sum();
                assert_eq!(table.store_tail(id, i), naive, "{id:?} store[{i}]");
            }
            assert_eq!(table.custom_uncompute_gates(id), None);
        }
        // main compute: X(1) + call leaf (2 gates) + X(1) = tail after
        // stmt 0 is 3.
        assert_eq!(table.compute_tail(main, 0), 3);
    }

    #[test]
    fn cost_table_memoizes_custom_uncompute() {
        use square_qir::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        let main = b
            .module("main", 0, 2, |m| {
                let (x, out) = (m.ancilla(0), m.ancilla(1));
                m.x(x);
                m.store();
                m.cx(x, out);
                m.uncompute();
                m.x(x);
                m.x(x);
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let stats = ProgramStats::analyze(&p);
        let table = ModuleCostTable::build(&p, &stats);
        assert_eq!(table.custom_uncompute_gates(main), Some(2));
        assert_eq!(table.custom_tail(main, 0), 1);
        assert_eq!(table.custom_tail(main, 1), 0);
    }

    #[test]
    fn gate_class_costs_prefer_mbu_on_toffoli_built_slices() {
        let costs = GateClassCosts::default();
        // A __mcx5 frame: 3 ancillas written by 3 Toffolis. Unitary
        // inverse replays 3 Toffolis (18); MBU measures and corrects
        // 3 ancillas (6).
        let counts = SliceClassCounts {
            ccx: 3,
            ..SliceClassCounts::default()
        };
        assert_eq!(costs.slice_cost(&counts), 18);
        assert_eq!(costs.mbu_cost(3), 6);
        assert!(costs.mbu_cost(3) < costs.slice_cost(&counts));
        // A single-CNOT slice writing one ancilla: unitary (1) beats
        // measure-and-correct (2) — MBU is not a free lunch.
        let tiny = SliceClassCounts {
            cx: 1,
            ..SliceClassCounts::default()
        };
        assert!(costs.slice_cost(&tiny) < costs.mbu_cost(1));
    }

    #[test]
    fn engine_memo_is_bit_identical_and_counts_hits() {
        let params = CerParams::default();
        let mut engine = CerEngine::new(params);
        let module = ModuleId::from_index(0);
        let inputs = base();
        let fresh = engine.decide(module, &inputs);
        assert_eq!(fresh, decide(&inputs, &params));
        let recalled = engine.decide(module, &inputs);
        assert_eq!(recalled, fresh);
        assert_eq!(engine.stats().hits, 1);
        assert_eq!(engine.stats().misses, 1);
        // A different pressure state is a different key.
        let shifted = CerInputs {
            free_qubits: inputs.free_qubits - 1,
            ..inputs
        };
        let d2 = engine.decide(module, &shifted);
        assert_eq!(d2, decide(&shifted, &params));
        assert_eq!(engine.stats().misses, 2);
        assert!((engine.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn engine_key_canonicalizes_resolved_factors() {
        let params = CerParams::default();
        let mut engine = CerEngine::new(params);
        let module = ModuleId::from_index(0);
        // Entry-level frames: the reclaim rate only enters through
        // base^0 = 1, so a drifted rate must still hit.
        let a = CerInputs {
            level: 0,
            reclaim_rate: 0.3,
            ..base()
        };
        let b = CerInputs {
            level: 0,
            reclaim_rate: 0.9,
            ..base()
        };
        let da = engine.decide(module, &a);
        let db = engine.decide(module, &b);
        assert_eq!(engine.stats().hits, 1, "resolved factor shared");
        assert_eq!(da, db);
        assert_eq!(db, decide(&b, &params), "hit is bit-identical");
        // Sub-floor communication factors resolve to the floor.
        let lo = CerInputs {
            comm_factor: 0.2,
            ..base()
        };
        let hi = CerInputs {
            comm_factor: 0.7,
            ..base()
        };
        engine.decide(module, &lo);
        engine.decide(module, &hi);
        assert_eq!(engine.stats().hits, 2, "floored S shared");
        // But a drifted rate at depth > 0 changes base^ℓ: a miss.
        let deep = CerInputs {
            reclaim_rate: 0.35,
            ..base()
        };
        let d = engine.decide(module, &deep);
        assert_eq!(d, decide(&deep, &params));
        assert_eq!(engine.stats().hits, 2);
    }

    #[test]
    fn engine_eviction_only_at_allocation_events() {
        let mut engine = CerEngine::new(CerParams::default());
        // Fill past the eviction bound with distinct keys.
        for g in 0..(CER_CACHE_EVICT_LEN as u64 + 2) {
            let inputs = CerInputs {
                g_uncomp: g,
                ..base()
            };
            engine.decide(ModuleId::from_index(0), &inputs);
        }
        assert_eq!(engine.stats().invalidations, 0, "no event, no eviction");
        engine.note_allocation_event();
        assert_eq!(engine.stats().invalidations, 1);
        // Below the bound, events leave the memo alone.
        engine.decide(ModuleId::from_index(0), &base());
        engine.note_allocation_event();
        assert_eq!(engine.stats().invalidations, 1);
        let recalled = engine.decide(ModuleId::from_index(0), &base());
        assert_eq!(engine.stats().hits, 1);
        assert_eq!(recalled, decide(&base(), &CerParams::default()));
    }
}

use std::fmt;

use square_qir::QirError;
use square_route::RouteError;

/// Errors surfaced by the SQUARE compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The input program failed validation.
    Qir(QirError),
    /// Placement/routing failed (an internal invariant, or a machine
    /// misconfiguration such as placing two qubits on one slot).
    Route(RouteError),
    /// The machine ran out of physical qubits. The paper's Fig. 1
    /// "too many qubits" failure mode: the policy reserved more
    /// qubits than the machine has. Retry with a larger machine or a
    /// more eager policy.
    OutOfQubits {
        /// Qubits the failing allocation requested.
        requested: usize,
        /// Machine capacity.
        capacity: usize,
        /// Qubits live at the failure point.
        live: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Qir(e) => write!(f, "invalid program: {e}"),
            CompileError::Route(e) => write!(f, "routing failure: {e}"),
            CompileError::OutOfQubits {
                requested,
                capacity,
                live,
            } => write!(
                f,
                "out of qubits: requested {requested} with {live}/{capacity} in use"
            ),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Qir(e) => Some(e),
            CompileError::Route(e) => Some(e),
            CompileError::OutOfQubits { .. } => None,
        }
    }
}

impl From<QirError> for CompileError {
    fn from(e: QirError) -> Self {
        CompileError::Qir(e)
    }
}

impl From<RouteError> for CompileError {
    fn from(e: RouteError) -> Self {
        CompileError::Route(e)
    }
}

use std::fmt;

use square_qir::QirError;
use square_route::RouteError;

use crate::policy::Policy;

/// Errors surfaced by the SQUARE compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The input program failed validation.
    Qir(QirError),
    /// Placement/routing failed (an internal invariant, or a machine
    /// misconfiguration such as placing two qubits on one slot).
    Route(RouteError),
    /// The machine ran out of physical qubits. The paper's Fig. 1
    /// "too many qubits" failure mode: the policy reserved more
    /// qubits than the machine has (or than the `budget:N` cap
    /// allows). Retry with a larger machine, a larger budget, or a
    /// more eager policy.
    OutOfQubits {
        /// Qubits the failing allocation requested.
        requested: usize,
        /// Machine capacity (physical qubits, before any budget cap).
        capacity: usize,
        /// Qubits live at the failure point.
        live: usize,
        /// The policy that was running when allocation failed.
        policy: Policy,
        /// The `budget:N` cap in effect, if any.
        budget: Option<usize>,
        /// Name of the module whose allocation failed, when known.
        module: Option<String>,
        /// For budgeted failures: a lower bound on the smallest budget
        /// that could have satisfied this allocation (live + requested
        /// after exhausting every early-uncompute candidate).
        min_feasible: Option<usize>,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Qir(e) => write!(f, "invalid program: {e}"),
            CompileError::Route(e) => write!(f, "routing failure: {e}"),
            CompileError::OutOfQubits {
                requested,
                capacity,
                live,
                policy,
                budget,
                module,
                min_feasible,
            } => {
                write!(
                    f,
                    "out of qubits: requested {requested} with {live}/{capacity} in use ({policy}"
                )?;
                if let Some(n) = budget {
                    write!(f, ", budget:{n}")?;
                }
                write!(f, ")")?;
                if let Some(m) = module {
                    write!(f, " in module `{m}`")?;
                }
                if let Some(n) = min_feasible {
                    write!(f, "; minimum feasible budget ≥ {n}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Qir(e) => Some(e),
            CompileError::Route(e) => Some(e),
            CompileError::OutOfQubits { .. } => None,
        }
    }
}

impl From<QirError> for CompileError {
    fn from(e: QirError) -> Self {
        CompileError::Qir(e)
    }
}

impl From<RouteError> for CompileError {
    fn from(e: RouteError) -> Self {
        CompileError::Route(e)
    }
}

//! Budget-driven early uncomputation (`budget:N`, ROADMAP item 3).
//!
//! Grounded in *Reqomp: Space-constrained Uncomputation* — width as a
//! hard constraint rather than an outcome. When an allocation would
//! push the live-qubit count past the cap, the executor early-
//! uncomputes a completed garbage frame (the Pebble-game "remove a
//! pebble" move): its recorded compute slice is replayed inverted at
//! the current trace position, rolling its ancilla back to |0⟩ so the
//! slots can be freed. Recomputation then falls out of the existing
//! mechanical-inversion machinery for free: the early uncompute `U(F)`
//! lands inside every still-open ancestor's recorded region, so an
//! ancestor that later sweeps its own region replays `U(F)` inverted —
//! which *is* `F` forward (on remapped fresh ids), recomputing the
//! frame exactly where a reader inside the inverted slice needs it.
//!
//! Candidate frames must satisfy four rules that keep the move sound
//! and externally invisible (reference semantics see no difference, so
//! `sem::run` replay and the decision log are untouched):
//!
//! 1. **Flat region** — no interior `Free`s, so the inverse contains
//!    no `Alloc`s: replaying it monotonically *decreases* width and
//!    can never recurse into the budget engine at the brink.
//! 2. **No external writes** — every gate write target inside the
//!    region is one of the frame's own ancillas or an interior alloc.
//!    The inverse then perturbs no state the rest of the program
//!    observes.
//! 3. **Fresh** — no qubit the region touches has been written since
//!    the frame's compute ended (tracked by per-qubit write stamps;
//!    a `Free` counts as a write). External *reads* still hold the
//!    values the forward pass saw, so the inverse uncomputes exactly.
//! 4. **Unfrozen** — the frame is not inside the recorded region of a
//!    frame currently in its store/decision/sweep phase, whose pending
//!    mechanical sweep would otherwise free the same qubits twice.

use square_qir::{Gate, ModuleId, TraceOp, VirtId};

use crate::report::RecomputeStats;

/// Regions longer than this are never registered as candidates: the
/// registration scan is O(region) and a frame this large frees so few
/// qubits per gate that eviction would never pick it anyway.
pub const MAX_CANDIDATE_REGION: usize = 4096;

/// A completed garbage frame eligible for early uncomputation.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Module that produced the frame (for scoring fallbacks and
    /// diagnostics).
    pub module: ModuleId,
    /// Call depth of the frame (recompute amplification grows with
    /// depth, so deep frames score worse).
    pub level: usize,
    /// Recorded compute region `[start..end)` in trace coordinates.
    pub start: usize,
    /// Exclusive end of the compute region; also the freshness stamp —
    /// a write at position ≥ `end` to any touched qubit invalidates
    /// the candidate.
    pub end: usize,
    /// The frame's own (still-live, garbage) ancillas, freed after the
    /// inverse replay.
    pub anc: Vec<VirtId>,
    /// Every qubit the region references (args read, own ancillas,
    /// interior allocs) — the freshness check's footprint.
    pub touched: Vec<VirtId>,
    /// Live qubits an early uncompute frees: own ancillas plus
    /// interior allocs (garbage children swept along by the inverse).
    pub freed: usize,
    /// Measured gates of the recorded region (≈ the cost of one
    /// uncompute or recompute of this frame).
    pub gates: u64,
}

/// Mutable budget-engine state carried by the executor when
/// `budget:N` is active. Absent (`None`) on unbudgeted compiles, so
/// every hook is behind one `Option` check and `budget:∞` stays
/// bit-identical to the base policy.
#[derive(Debug)]
pub struct BudgetState {
    /// The hard cap N on simultaneously live qubits.
    pub cap: usize,
    /// `last_write[v]` = trace position of the latest state-changing
    /// op (gate write, alloc, free) on `VirtId(v)`; grown on demand.
    last_write: Vec<usize>,
    /// Registered early-uncompute candidates (pruned lazily on pick).
    pub candidates: Vec<Candidate>,
    /// Recorded `[compute_start, compute_end)` regions of frames in
    /// their store/decision/sweep phase (rule 4). A candidate inside
    /// any such region may be freed by that frame's pending mechanical
    /// sweep, so it must not be evicted concurrently; candidates
    /// *outside* every region (e.g. frames completed during a frozen
    /// frame's store block) stay evictable.
    pub frozen: Vec<(usize, usize)>,
    /// `(trace position, gates)` of every early uncompute emitted —
    /// an ancestor sweep whose region covers the position recomputes
    /// that frame, which is how recompute work is counted.
    events: Vec<(usize, u64)>,
    /// Counters reported in [`crate::CompileReport::recompute`].
    pub stats: RecomputeStats,
}

impl BudgetState {
    /// Fresh state for a compile under cap `cap`.
    pub fn new(cap: usize) -> Self {
        BudgetState {
            cap,
            last_write: Vec::new(),
            candidates: Vec::new(),
            frozen: Vec::new(),
            events: Vec::new(),
            stats: RecomputeStats::default(),
        }
    }

    /// Records a state-changing op on `v` at trace position `pos`.
    pub fn note_write(&mut self, v: VirtId, pos: usize) {
        let i = v.0 as usize;
        if i >= self.last_write.len() {
            self.last_write.resize(i + 1, 0);
        }
        self.last_write[i] = pos;
    }

    /// Latest write position of `v` (0 when never written).
    pub fn last_write(&self, v: VirtId) -> usize {
        self.last_write.get(v.0 as usize).copied().unwrap_or(0)
    }

    /// True while `start` lies inside some frozen frame's region
    /// (rule 4).
    pub fn is_frozen(&self, start: usize) -> bool {
        self.frozen.iter().any(|&(s, e)| s <= start && start < e)
    }

    /// True if every qubit `cand` touches is unwritten since its
    /// compute ended (rule 3).
    pub fn is_fresh(&self, cand: &Candidate) -> bool {
        cand.touched.iter().all(|q| self.last_write(*q) < cand.end)
    }

    /// Drops candidates that can no longer be uncomputed (stale), then
    /// returns the index of the best evictable candidate — lowest
    /// `score` among the unfrozen — or `None` when nothing is
    /// evictable. Frozen candidates are kept: they thaw when the
    /// covering frame's sweep completes without touching them.
    pub fn pick(&mut self, mut score: impl FnMut(&Candidate) -> f64) -> Option<usize> {
        let mut i = 0;
        while i < self.candidates.len() {
            if self.is_fresh(&self.candidates[i]) {
                i += 1;
            } else {
                self.candidates.swap_remove(i);
            }
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in self.candidates.iter().enumerate() {
            if self.is_frozen(cand.start) {
                continue;
            }
            let s = score(cand);
            if best.is_none_or(|(_, b)| s < b) {
                best = Some((i, s));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Records an early uncompute of `gates` gates emitted at trace
    /// position `pos`.
    pub fn note_early_uncompute(&mut self, pos: usize, gates: u64) {
        self.stats.early_uncomputed_frames += 1;
        self.stats.early_uncompute_gates += gates;
        self.events.push((pos, gates));
    }

    /// Counts recomputes implied by a mechanical sweep of
    /// `[start..end)`: every early uncompute emitted inside the region
    /// is replayed forward by the sweep's inversion. Events stay
    /// recorded — an outer ancestor that later sweeps a covering
    /// region recomputes the frame again.
    pub fn note_sweep(&mut self, start: usize, end: usize) {
        // `events` positions are strictly increasing (each append is
        // at the then-current trace end).
        let lo = self.events.partition_point(|&(p, _)| p < start);
        let hi = self.events.partition_point(|&(p, _)| p < end);
        for &(_, gates) in &self.events[lo..hi] {
            self.stats.recomputed_frames += 1;
            self.stats.recompute_gates += gates;
        }
    }
}

/// Scans a recorded compute region and builds a [`Candidate`] when the
/// frame satisfies rules 1–3 at registration time (rule 4 is dynamic).
/// `last_write` is the engine's stamp lookup; `anc` the frame's own
/// ancillas.
#[allow(clippy::too_many_arguments)]
pub fn scan_candidate(
    region: &[TraceOp],
    start: usize,
    module: ModuleId,
    level: usize,
    anc: &[VirtId],
    gates: u64,
    last_write: impl Fn(VirtId) -> usize,
) -> Option<Candidate> {
    if region.len() > MAX_CANDIDATE_REGION {
        return None;
    }
    let end = start + region.len();
    let mut interior: Vec<VirtId> = Vec::new();
    let mut touched: Vec<VirtId> = anc.to_vec();
    let touch = |touched: &mut Vec<VirtId>, v: VirtId| {
        if !touched.contains(&v) {
            touched.push(v);
        }
    };
    for op in region {
        match op {
            TraceOp::Alloc(v) => {
                interior.push(*v);
                touch(&mut touched, *v);
            }
            // Rule 1: an interior free means the inverse would
            // allocate — rejected so replay monotonically shrinks.
            TraceOp::Free(_) => return None,
            TraceOp::Gate(g) => {
                g.for_each_qubit(|q| touch(&mut touched, *q));
                // Rule 2: writes must stay inside the frame.
                let mut external_write = false;
                for_each_write(g, |w| {
                    if !interior.contains(&w) && !anc.contains(&w) {
                        external_write = true;
                    }
                });
                if external_write {
                    return None;
                }
            }
            // Measurement reads only: it touches its qubit (the
            // region's inverse re-measures it) but writes nothing.
            TraceOp::Measure { qubit, .. } => touch(&mut touched, *qubit),
            // A classically controlled gate writes whatever its inner
            // gate writes; rule 2 applies unchanged.
            TraceOp::CondGate { gate, .. } => {
                gate.for_each_qubit(|q| touch(&mut touched, *q));
                let mut external_write = false;
                for_each_write(gate, |w| {
                    if !interior.contains(&w) && !anc.contains(&w) {
                        external_write = true;
                    }
                });
                if external_write {
                    return None;
                }
            }
        }
    }
    // Rule 3 at registration: the store block (already executed) must
    // not have written anything the region touches.
    if touched.iter().any(|q| last_write(*q) >= end) {
        return None;
    }
    let freed = anc.len() + interior.len();
    Some(Candidate {
        module,
        level,
        start,
        end,
        anc: anc.to_vec(),
        touched,
        freed,
        gates,
    })
}

/// Worst-case simultaneous open-frame ancilla width of a call to the
/// entry module: its own ancillas plus the deepest single call chain
/// below it (each frame's ancillas stack only along one path at a
/// time). This is the eager-reclamation width floor, and under
/// `budget:N` it is the stack headroom the anticipatory pressure clamp
/// keeps clear of garbage. Note the contrast with `ancilla_transitive`
/// (the machine-sizing hint), which counts *total* forward allocations
/// and overshoots the simultaneous need by orders of magnitude.
pub fn stack_need(program: &square_qir::Program) -> usize {
    fn need(program: &square_qir::Program, id: ModuleId, memo: &mut [Option<usize>]) -> usize {
        if let Some(n) = memo[id.index()] {
            return n;
        }
        let module = program.module(id);
        let mut deepest = 0usize;
        for stmt in module.all_stmts() {
            if let square_qir::Stmt::Call { callee, .. } = stmt {
                deepest = deepest.max(need(program, *callee, memo));
            }
        }
        let n = module.ancillas() + deepest;
        memo[id.index()] = Some(n);
        n
    }
    let mut memo = vec![None; program.modules().len()];
    need(program, program.entry(), &mut memo)
}

/// Calls `f` for every qubit the gate writes, without allocating.
pub fn for_each_write(g: &Gate<VirtId>, mut f: impl FnMut(VirtId)) {
    match g {
        Gate::X { target }
        | Gate::Cx { target, .. }
        | Gate::Ccx { target, .. }
        | Gate::Mcx { target, .. } => f(*target),
        Gate::Swap { a, b } => {
            f(*a);
            f(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> VirtId {
        VirtId(n)
    }

    #[test]
    fn scan_accepts_a_flat_self_contained_region() {
        // CX(arg0 → anc0): reads external, writes own ancilla.
        let region = [TraceOp::Gate(Gate::Cx {
            control: v(0),
            target: v(1),
        })];
        let cand =
            scan_candidate(&region, 10, ModuleId::from_index(0), 1, &[v(1)], 1, |_| 0).unwrap();
        assert_eq!(cand.end, 11);
        assert_eq!(cand.freed, 1);
        assert!(cand.touched.contains(&v(0)) && cand.touched.contains(&v(1)));
    }

    #[test]
    fn scan_rejects_interior_frees_and_external_writes() {
        let freeing = [TraceOp::Free(v(5))];
        assert!(
            scan_candidate(&freeing, 0, ModuleId::from_index(0), 1, &[v(1)], 1, |_| 0).is_none()
        );
        // Writes arg0: inverting it would corrupt live state.
        let writing = [TraceOp::Gate(Gate::Cx {
            control: v(1),
            target: v(0),
        })];
        assert!(
            scan_candidate(&writing, 0, ModuleId::from_index(0), 1, &[v(1)], 1, |_| 0).is_none()
        );
    }

    #[test]
    fn scan_rejects_store_clobbered_regions() {
        let region = [TraceOp::Gate(Gate::X { target: v(1) })];
        // A write to the touched qubit after the region (position ≥ 1).
        assert!(
            scan_candidate(&region, 0, ModuleId::from_index(0), 1, &[v(1)], 1, |_| 7).is_none()
        );
    }

    #[test]
    fn interior_allocs_count_toward_freed_and_may_be_written() {
        let region = [
            TraceOp::Alloc(v(3)),
            TraceOp::Gate(Gate::Cx {
                control: v(1),
                target: v(3),
            }),
        ];
        let cand =
            scan_candidate(&region, 0, ModuleId::from_index(0), 2, &[v(1)], 1, |_| 0).unwrap();
        assert_eq!(cand.freed, 2);
    }

    #[test]
    fn staleness_and_freeze_gate_the_pick() {
        let mut b = BudgetState::new(8);
        let cand = Candidate {
            module: ModuleId::from_index(0),
            level: 1,
            start: 4,
            end: 6,
            anc: vec![v(2)],
            touched: vec![v(1), v(2)],
            freed: 1,
            gates: 3,
        };
        b.candidates.push(cand.clone());
        assert_eq!(b.pick(|c| c.gates as f64), Some(0));
        // Frozen: a frame whose recorded region covers ours is in its
        // sweep phase.
        b.frozen.push((2, 8));
        assert_eq!(b.pick(|c| c.gates as f64), None);
        assert_eq!(b.candidates.len(), 1, "frozen candidates are kept");
        // A frozen region that *ends* before our frame began (we
        // completed during its store phase) does not block eviction.
        b.frozen.clear();
        b.frozen.push((0, 3));
        assert_eq!(b.pick(|c| c.gates as f64), Some(0));
        b.frozen.clear();
        // Stale: a later write to a touched qubit drops it.
        b.note_write(v(1), 9);
        assert_eq!(b.pick(|c| c.gates as f64), None);
        assert!(b.candidates.is_empty());
    }

    #[test]
    fn sweep_accounting_counts_covered_events() {
        let mut b = BudgetState::new(8);
        b.note_early_uncompute(10, 5);
        b.note_early_uncompute(20, 7);
        b.note_sweep(0, 15);
        assert_eq!(b.stats.recomputed_frames, 1);
        assert_eq!(b.stats.recompute_gates, 5);
        b.note_sweep(0, 30);
        assert_eq!(b.stats.recomputed_frames, 3);
        assert_eq!(b.stats.recompute_gates, 17);
    }
}

//! # square-core — the SQUARE compiler
//!
//! The paper's primary contribution: an instrumentation-driven compiler
//! that executes a modular reversible program's (fully known) control
//! flow at compile time, deciding at every `Allocate` which physical
//! qubit to use (**LAA** — locality-aware allocation, Algorithm 1) and
//! at every `Free` whether to uncompute and reclaim or leave garbage
//! (**CER** — cost-effective reclamation, Algorithm 2), while an ASAP
//! scheduler with swap-chain / braid routing tracks the machine-level
//! consequences of every decision online.
//!
//! Four policies are provided (Table I): `Eager`, `Lazy`, `Square`
//! (LAA + CER) and `SquareLaaOnly` (LAA with Eager reclamation —
//! the "SQUARE (LAA only)" bars of Figs. 8a/9/10).
//!
//! ```
//! use square_core::{compile, CompilerConfig, Policy};
//! use square_qir::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.module("main", 0, 3, |m| {
//!     let (x, s, out) = (m.ancilla(0), m.ancilla(1), m.ancilla(2));
//!     m.x(x);
//!     m.cx(x, s);
//!     m.store();
//!     m.cx(s, out);
//! })?;
//! let program = b.finish(main)?;
//! let report = compile(&program, &CompilerConfig::nisq(Policy::Square)).unwrap();
//! assert!(report.aqv > 0);
//! # Ok::<(), square_qir::QirError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cer;
pub mod config;
pub mod executor;
pub mod heap;
pub mod laa;
pub mod policy;
pub mod report;

mod error;

pub use cer::{CerCacheStats, CerEngine, ModuleCostTable};
pub use config::{ArchSpec, ArchSpecParseError, CerParams, CompilerConfig, LaaWeights};
pub use error::CompileError;
pub use executor::{
    compile, compile_prepared, compile_prepared_on, compile_with_inputs, PreparedProgram,
};
pub use heap::{AncillaHeap, HeapError, HeapHandle};
pub use policy::{BudgetPolicy, Policy};
pub use report::{CompileReport, ReclaimDecision, RecomputeStats};
// Router selection is part of the compiler configuration; re-export
// the kind so downstream crates need not depend on square-route.
pub use square_route::RouterKind;

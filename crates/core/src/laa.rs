//! Locality-Aware Allocation (Algorithm 1 of the paper).
//!
//! For each requested ancilla, two candidates are scored — the best
//! qubit in the reclaimed-ancilla heap and the nearest brand-new qubit
//! — and the cheaper one wins. Scores balance the paper's three
//! considerations (Section III-A1):
//!
//! * **communication** — distance to the centroid of the qubits the
//!   new ancilla will interact with (obtained by look-ahead: the
//!   caller passes the frame's argument qubits, the compile-time
//!   analogue of `get_interact_qubits()`);
//! * **serialization** — reusing a qubit whose timeline is still busy
//!   adds a false dependency and delays the allocation site;
//! * **area expansion** — a fresh qubit grows the active region,
//!   lengthening future swap chains / braids; the premium scales with
//!   the paper's `√((N_active + 1)/N_active)` factor.

use square_arch::PhysId;
use square_qir::VirtId;
use square_route::Machine;

use crate::config::LaaWeights;
use crate::heap::AncillaHeap;

/// Outcome of one allocation decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocChoice {
    /// The chosen slot.
    pub phys: PhysId,
    /// Whether it came from the heap (reuse) or is brand new.
    pub reused: bool,
    /// The winning score (cycles-equivalent; for diagnostics).
    pub score: f64,
}

/// Picks the physical slot for one new ancilla under LAA.
///
/// Returns `None` when the machine is completely full (no heap qubits
/// and no free fresh slot) — the caller then reports capacity
/// exhaustion or forces reclamation.
pub fn choose_slot(
    machine: &Machine,
    heap: &mut AncillaHeap,
    interact: &[VirtId],
    weights: &LaaWeights,
) -> Option<AllocChoice> {
    let center = machine
        .placement()
        .centroid_of(interact)
        .or_else(|| machine.placement().active_centroid())
        .unwrap_or_else(|| {
            // Empty machine: start in the middle of the fabric.
            let mid = PhysId((machine.qubit_count() / 2) as u32);
            machine.topo().coord(mid)
        });
    // Serialization reference: the time at which the consumer could
    // start anyway. For look-ahead-less allocations (uncompute replay)
    // fall back to the schedule frontier — a reused qubit only pays a
    // penalty for availability *beyond* what the schedule already
    // imposes.
    let ready_ref = if interact.is_empty() {
        machine.clock().depth()
    } else {
        machine.ready_time(interact).max(1) - 1
    };

    // Candidate 1: best heap qubit (communication + serialization).
    let heap_candidate = heap.peek_best(|p| {
        let dist = dist_to(machine, p, center);
        let wait = machine.clock().avail(p).saturating_sub(ready_ref) as f64;
        weights.w_comm * dist + weights.w_serial * wait
    });

    // Candidate 2: nearest never-used qubit (communication + area).
    let fresh_candidate = machine.nearest_free(center, true).map(|p| {
        let dist = dist_to(machine, p, center);
        let n_active = machine.placement().active_count().max(1) as f64;
        let expansion = ((n_active + 1.0) / n_active).sqrt();
        let score = weights.w_comm * dist + weights.w_area * expansion;
        (p, score)
    });

    match (heap_candidate, fresh_candidate) {
        (Some((handle, hs)), Some((fp, fs))) => {
            if hs <= fs {
                let phys = heap.take(handle).expect("handle minted this decision");
                Some(AllocChoice {
                    phys,
                    reused: true,
                    score: hs,
                })
            } else {
                Some(AllocChoice {
                    phys: fp,
                    reused: false,
                    score: fs,
                })
            }
        }
        (Some((handle, hs)), None) => {
            let phys = heap.take(handle).expect("handle minted this decision");
            Some(AllocChoice {
                phys,
                reused: true,
                score: hs,
            })
        }
        (None, Some((fp, fs))) => Some(AllocChoice {
            phys: fp,
            reused: false,
            score: fs,
        }),
        // Heap empty and no fresh qubit: fall back to *any* free slot
        // (a previously used, freed one outside the heap cannot exist —
        // every freed slot enters the heap — so this is full capacity).
        (None, None) => machine.nearest_free(center, false).map(|p| AllocChoice {
            phys: p,
            reused: false,
            score: f64::INFINITY,
        }),
    }
}

/// Locality-blind allocation of the Eager/Lazy baselines: LIFO heap
/// pop, else a pseudo-random free cell.
///
/// Prior work's "global pool of identical qubits" carries no geometry
/// (Section III-A): when it maps onto a real lattice, fresh qubits
/// land wherever the pool hands them out. We model that with a
/// deterministic pseudo-random draw (`salt` advances per allocation),
/// which is precisely the locality blindness LAA was designed to fix.
pub fn choose_slot_naive(
    machine: &Machine,
    heap: &mut AncillaHeap,
    salt: u64,
) -> Option<AllocChoice> {
    if let Some(p) = heap.pop_lifo() {
        return Some(AllocChoice {
            phys: p,
            reused: true,
            score: 0.0,
        });
    }
    let n = machine.qubit_count() as u64;
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for _ in 0..64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let candidate = PhysId(((state >> 33) % n) as u32);
        if machine.placement().is_free(candidate) {
            return Some(AllocChoice {
                phys: candidate,
                reused: false,
                score: 0.0,
            });
        }
    }
    // Dense machine: rejection sampling gave up; linear fallback.
    (0..machine.qubit_count() as u32)
        .map(PhysId)
        .find(|&p| machine.placement().is_free(p))
        .map(|p| AllocChoice {
            phys: p,
            reused: false,
            score: 0.0,
        })
}

fn dist_to(machine: &Machine, p: PhysId, center: (i32, i32)) -> f64 {
    let (x, y) = machine.topo().coord(p);
    ((x - center.0).abs() + (y - center.1).abs()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use square_arch::GridTopology;
    use square_route::MachineConfig;

    fn machine_5x5() -> Machine {
        Machine::new(Box::new(GridTopology::new(5, 5)), MachineConfig::nisq())
    }

    #[test]
    fn prefers_nearby_heap_qubit() {
        let mut m = machine_5x5();
        let mut heap = AncillaHeap::new();
        // Interacting qubit at (2,2) = PhysId 12.
        m.place_at(VirtId(0), PhysId(12)).unwrap();
        // Heap holds a neighbor and a far corner.
        heap.push(PhysId(24)); // (4,4), dist 4
        heap.push(PhysId(13)); // (3,2), dist 1
        let choice = choose_slot(&m, &mut heap, &[VirtId(0)], &LaaWeights::default()).unwrap();
        assert_eq!(choice.phys, PhysId(13));
        assert!(choice.reused);
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn prefers_fresh_when_heap_is_far() {
        let mut m = machine_5x5();
        let mut heap = AncillaHeap::new();
        m.place_at(VirtId(0), PhysId(12)).unwrap();
        heap.push(PhysId(24)); // far corner (4,4): dist 4 → score 12
        let choice = choose_slot(&m, &mut heap, &[VirtId(0)], &LaaWeights::default()).unwrap();
        // Fresh neighbor at dist 1: 3·1 + 2·√(2/1) ≈ 5.8 < 12.
        assert!(!choice.reused);
        assert_eq!(heap.len(), 1, "far heap qubit left pooled");
        let d = dist_to(&m, choice.phys, (2, 2));
        assert!(d <= 1.0);
    }

    #[test]
    fn serialization_penalty_disfavors_busy_reuse() {
        let mut m = machine_5x5();
        let mut heap = AncillaHeap::new();
        m.place_at(VirtId(0), PhysId(12)).unwrap();
        // Make the neighbor slot busy until t=10000 by scheduling work
        // on a qubit placed there, then releasing it into the heap.
        m.place_at(VirtId(1), PhysId(13)).unwrap();
        for _ in 0..10_000 {
            m.apply(&square_qir::Gate::X { target: VirtId(1) }).unwrap();
        }
        m.release(VirtId(1)).unwrap();
        heap.push(PhysId(13));
        let choice = choose_slot(&m, &mut heap, &[VirtId(0)], &LaaWeights::default()).unwrap();
        // Busy neighbor scores 3·1 + 0.05·10000 = 503; fresh ≈ 5.8.
        assert!(!choice.reused, "busy heap qubit rejected");
    }

    #[test]
    fn naive_is_lifo_then_pool_random() {
        let mut m = machine_5x5();
        let mut heap = AncillaHeap::new();
        let c = choose_slot_naive(&m, &mut heap, 1).unwrap();
        assert!(m.placement().is_free(c.phys));
        m.place_at(VirtId(0), c.phys).unwrap();
        heap.push(PhysId(20));
        let c2 = choose_slot_naive(&m, &mut heap, 2).unwrap();
        assert_eq!(c2.phys, PhysId(20), "heap first");
        assert!(c2.reused);
        // Deterministic per salt.
        let mut m2 = machine_5x5();
        let mut h2 = AncillaHeap::new();
        let c3 = choose_slot_naive(&m2, &mut h2, 1).unwrap();
        assert_eq!(c3.phys, c.phys);
        let _ = &mut m2;
    }

    #[test]
    fn full_machine_yields_none() {
        let mut m = Machine::new(Box::new(GridTopology::new(2, 1)), MachineConfig::nisq());
        m.place_at(VirtId(0), PhysId(0)).unwrap();
        m.place_at(VirtId(1), PhysId(1)).unwrap();
        let mut heap = AncillaHeap::new();
        assert!(choose_slot(&m, &mut heap, &[], &LaaWeights::default()).is_none());
        assert!(choose_slot_naive(&m, &mut heap, 7).is_none());
    }
}

//! The instrumentation-driven compile-time executor (Section III-C).
//!
//! Quantum programs in SQUARE's domain have compile-time-known control
//! flow, so the compiler *executes* the program: every `Allocate` runs
//! the allocation heuristic, every gate is routed and scheduled on the
//! machine model, and every `Free` runs the reclamation heuristic.
//! Uncomputation is performed mechanically by replaying the frame's
//! recorded compute slice inverted (see `square_qir::trace`), which
//! reproduces both recursive recomputation (for reclaimed children)
//! and garbage sweeping (for lazy children) without any special
//! casing.

use std::sync::Arc;

use square_arch::{CommModel, Topology};
use square_qir::{
    analysis::ProgramStats, lower_mcx, trace::invert_slice_into, Gate, ModuleId, Operand, Program,
    Stmt, TraceOp, VirtId,
};
use square_route::{Machine, MachineConfig, RouterConfig, RouterKind};

use crate::cer::{CerEngine, CerInputs, ModuleCostTable};
use crate::config::CompilerConfig;
use crate::error::CompileError;
use crate::heap::AncillaHeap;
use crate::laa;
use crate::policy::Policy;
use crate::report::{CompileReport, DecisionStats, ReclaimDecision};

/// Compiles `program` with all entry-register inputs |0⟩.
///
/// # Errors
///
/// Program validation errors, routing failures, or capacity
/// exhaustion ([`CompileError::OutOfQubits`]).
pub fn compile(program: &Program, config: &CompilerConfig) -> Result<CompileReport, CompileError> {
    compile_with_inputs(program, &[], config)
}

/// Compiles `program`, preparing the entry register's first
/// `inputs.len()` qubits with X gates (computational-basis input) —
/// needed when the schedule will be noise-simulated.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with_inputs(
    program: &Program,
    inputs: &[bool],
    config: &CompilerConfig,
) -> Result<CompileReport, CompileError> {
    let prepared = PreparedProgram::new(program)?;
    compile_prepared(&prepared, inputs, config)
}

/// The reusable compile prefix of one program: validated, MCX-lowered,
/// analyzed, and cost-tabled.
///
/// Every field is a pure, deterministic function of the input program,
/// so the artifacts can be computed once and shared across any number
/// of compiles — this is what a long-running compile service lifts
/// into a content-hash-keyed cross-request cache (the
/// [`ModuleCostTable`] build in particular kills the dominant
/// per-request analysis cost on repeated programs).
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    lowered: Program,
    pstats: ProgramStats,
    costs: ModuleCostTable,
    capacity_hint: usize,
}

impl PreparedProgram {
    /// Validates `program` and builds every compile-prefix artifact.
    ///
    /// # Errors
    ///
    /// Program validation errors ([`CompileError::Qir`]).
    pub fn new(program: &Program) -> Result<Self, CompileError> {
        square_qir::validate::validate_program(program)?;
        let lowered = lower_mcx(program);
        let pstats = ProgramStats::analyze(&lowered);
        // Per-module cost terms (custom-uncompute totals, block suffix
        // sums) memoized up front — the per-frame hot path never
        // re-walks statement lists. Modules are mutually independent,
        // so the table is built in parallel.
        let costs = ModuleCostTable::build(&lowered, &pstats);
        let capacity_hint = pstats.module(lowered.entry()).ancilla_transitive as usize;
        Ok(PreparedProgram {
            lowered,
            pstats,
            costs,
            capacity_hint,
        })
    }

    /// The MCX-lowered program the executor runs.
    pub fn lowered(&self) -> &Program {
        &self.lowered
    }

    /// Worst-case simultaneous ancilla footprint of the entry module —
    /// the hint `Auto*` architectures size machines from.
    pub fn capacity_hint(&self) -> usize {
        self.capacity_hint
    }

    /// Per-module static analysis of the lowered program.
    pub fn stats(&self) -> &ProgramStats {
        &self.pstats
    }
}

/// Compiles from pre-built prefix artifacts, constructing a fresh
/// topology from `config.arch`.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_prepared(
    prepared: &PreparedProgram,
    inputs: &[bool],
    config: &CompilerConfig,
) -> Result<CompileReport, CompileError> {
    let topo: Arc<dyn Topology> = Arc::from(config.arch.build(prepared.capacity_hint));
    compile_prepared_on(prepared, inputs, config, topo)
}

/// Compiles from pre-built prefix artifacts onto a *shared* topology.
/// The topology must match `config.arch` (callers that cache
/// topologies key them by the arch spec plus the capacity hint); it is
/// never mutated, so any number of concurrent compiles may hold the
/// same `Arc` and reuse its lazily-built distance/next-hop tables.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_prepared_on(
    prepared: &PreparedProgram,
    inputs: &[bool],
    config: &CompilerConfig,
    topo: Arc<dyn Topology>,
) -> Result<CompileReport, CompileError> {
    let lowered = &prepared.lowered;
    // Braiding never consults the swap-chain router: normalize the
    // recorded selection to greedy so reports cannot claim a lookahead
    // router that never ran.
    let router = match config.comm {
        CommModel::SwapChains => config.router,
        CommModel::Braiding => RouterConfig {
            kind: RouterKind::Greedy,
            ..config.router
        },
    };
    let machine = Machine::with_shared(
        topo,
        MachineConfig {
            comm: config.comm,
            record_schedule: config.record_schedule,
            router,
        },
    );
    let heap = AncillaHeap::with_capacity(machine.qubit_count());
    let mut exec = Exec {
        program: lowered,
        pstats: &prepared.pstats,
        costs: &prepared.costs,
        cer: CerEngine::new(config.cer),
        config,
        machine,
        heap,
        trace: Vec::new(),
        inverse_scratch: Vec::new(),
        next_virt: 0,
        gates_emitted: 0,
        decisions: DecisionStats::default(),
        decision_log: Vec::new(),
        lookahead: false,
        layer_scratch: Vec::new(),
    };
    let lookahead = exec.machine.wants_lookahead();
    exec.lookahead = lookahead;
    let route_start = std::time::Instant::now();
    let entry_register = exec.run_entry(inputs)?;
    let route_ns = route_start.elapsed().as_nanos() as u64;
    let decisions = exec.decisions;
    let decision_log = std::mem::take(&mut exec.decision_log);
    let cer_cache = exec.cer.stats();
    let policy = config.policy;
    let comm = config.comm;
    let comm_factor = exec.machine.comm_factor();
    let machine_qubits = exec.machine.qubit_count();
    let trace = exec.trace;
    let route_report = exec.machine.finish();
    let router = router.kind;
    let aqv_value = square_metrics::aqv(route_report.segments.iter().map(|s| (s.start, s.end)));
    Ok(CompileReport {
        policy,
        comm,
        router,
        gates: route_report.stats.program_gates,
        swaps: route_report.stats.swaps,
        depth: route_report.depth,
        qubits: route_report.footprint,
        peak_active: route_report.peak_active,
        aqv: aqv_value,
        comm_factor,
        stats: route_report.stats,
        segments: route_report.segments,
        schedule: route_report.schedule,
        entry_register,
        final_placement: route_report.final_placement,
        decisions,
        decision_log,
        placement_history: route_report.placement_history,
        cer_cache,
        machine_qubits,
        route_ns,
        trace,
    })
}

/// Which block of a module [`Exec::run_block`] is executing (selects
/// the matching suffix-sum table for O(1) tail-gate look-ahead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Compute,
    Store,
    CustomUncompute,
}

struct Exec<'p> {
    program: &'p Program,
    pstats: &'p ProgramStats,
    /// Memoized per-module static cost terms (see [`ModuleCostTable`]),
    /// borrowed so a service can share one table across requests.
    costs: &'p ModuleCostTable,
    /// Incremental CER evaluator (decision memo, invalidated only at
    /// allocation events).
    cer: CerEngine,
    config: &'p CompilerConfig,
    machine: Machine,
    heap: AncillaHeap,
    trace: Vec<TraceOp>,
    /// Reused buffer for mechanical uncompute slices (avoids two Vec
    /// allocations per reclaimed frame).
    inverse_scratch: Vec<TraceOp>,
    next_virt: u32,
    /// Running count of `TraceOp::Gate` events emitted, snapshotted
    /// around compute blocks so `G_uncomp` is O(1) instead of a
    /// re-walk of the recorded slice.
    gates_emitted: u64,
    decisions: DecisionStats,
    /// Per-frame decisions in completion order (see [`ReclaimDecision`]).
    decision_log: Vec<ReclaimDecision>,
    /// True when the machine's router consumes upcoming-gate windows
    /// (gates the per-gate window construction off the hot path
    /// otherwise).
    lookahead: bool,
    /// Reused buffer for batching runs of consecutive gate statements
    /// into one [`Machine::apply_layer`] call.
    layer_scratch: Vec<Gate<VirtId>>,
}

impl Exec<'_> {
    fn fresh(&mut self) -> VirtId {
        let v = VirtId(self.next_virt);
        self.next_virt += 1;
        v
    }

    /// Routes and schedules a batched run of consecutive gates through
    /// [`Machine::apply_layer`] (which plans wide layers' swap chains
    /// in parallel, bit-identically to serial routing), then performs
    /// the same per-gate bookkeeping as [`Exec::emit`]: the layer's
    /// relocations are drained once — they accumulate in machine
    /// order, and no `Alloc`/`Free` can interleave within a gate run —
    /// and the gates are appended to the virtual trace. Drains `gates`.
    fn emit_gate_layer(&mut self, gates: &mut Vec<Gate<VirtId>>) -> Result<(), CompileError> {
        self.machine.apply_layer(gates)?;
        self.gates_emitted += gates.len() as u64;
        for (from, to) in self.machine.drain_relocations() {
            self.heap.relocate(from, to);
        }
        for g in gates.drain(..) {
            self.trace.push(TraceOp::Gate(g));
        }
        Ok(())
    }

    /// Applies one trace op to the machine and appends it to the
    /// virtual trace. `interact` guides placement of `Alloc` ops.
    fn emit(&mut self, op: TraceOp, interact: &[VirtId]) -> Result<(), CompileError> {
        match &op {
            TraceOp::Alloc(v) => {
                let choice = if self.config.policy.uses_laa() {
                    laa::choose_slot(&self.machine, &mut self.heap, interact, &self.config.laa)
                } else {
                    laa::choose_slot_naive(&self.machine, &mut self.heap, self.next_virt as u64)
                };
                let choice = choice.ok_or(CompileError::OutOfQubits {
                    requested: 1,
                    capacity: self.machine.qubit_count(),
                    live: self.machine.placement().active_count(),
                })?;
                self.machine.place_at(*v, choice.phys)?;
                self.cer.note_allocation_event();
            }
            TraceOp::Free(v) => {
                let phys = self.machine.release(*v)?;
                self.heap.push(phys);
                self.cer.note_allocation_event();
            }
            TraceOp::Gate(g) => {
                self.machine.apply(g)?;
                self.gates_emitted += 1;
                // Routing swaps may have moved pooled |0⟩ cells.
                for (from, to) in self.machine.drain_relocations() {
                    self.heap.relocate(from, to);
                }
            }
        }
        self.trace.push(op);
        Ok(())
    }

    fn run_entry(&mut self, inputs: &[bool]) -> Result<Vec<VirtId>, CompileError> {
        let entry_id = self.program.entry();
        let entry = self.program.module(entry_id);
        let anc: Vec<VirtId> = (0..entry.ancillas()).map(|_| self.fresh()).collect();
        for v in &anc {
            self.emit(TraceOp::Alloc(*v), &[])?;
        }
        for (i, bit) in inputs.iter().enumerate() {
            if *bit && i < anc.len() {
                self.emit(TraceOp::Gate(Gate::X { target: anc[i] }), &[])?;
            }
        }
        self.run_body(entry_id, &[], &anc, 0, 0)?;
        Ok(anc)
    }

    /// Executes a frame's compute + store blocks and applies the
    /// reclamation decision. `g_p` is the estimated gates remaining
    /// between this frame's end and its parent's uncompute block.
    fn run_body(
        &mut self,
        id: ModuleId,
        args: &[VirtId],
        anc: &[VirtId],
        depth: usize,
        g_p: u64,
    ) -> Result<(), CompileError> {
        let compute_start = self.trace.len();
        let gates_before_compute = self.gates_emitted;
        self.run_block(BlockKind::Compute, id, args, anc, depth, g_p)?;
        let compute_end = self.trace.len();
        let gates_after_compute = self.gates_emitted;
        self.run_block(BlockKind::Store, id, args, anc, depth, g_p)?;

        // Frames without ancilla have nothing to reclaim: skip the
        // decision (and the pointless uncompute) entirely.
        if depth > 0 && anc.is_empty() {
            return Ok(());
        }
        // G_uncomp: measured size of the compute slice (running gate
        // counter, O(1)), or the memoized static size of an explicit
        // uncompute block when the author supplied one (e.g. operand
        // unloading for in-place adders).
        let g_uncomp = match self.costs.custom_uncompute_gates(id) {
            Some(gates) => gates,
            None => gates_after_compute - gates_before_compute,
        };
        let n_anc = anc.len();
        let frame_qubits = args.len() + anc.len();
        let reclaim = self.decide(id, depth, g_uncomp, n_anc, g_p, frame_qubits);
        self.decision_log.push(ReclaimDecision {
            module: id,
            depth: depth as u32,
            reclaim,
        });
        if reclaim {
            self.decisions.reclaimed += 1;
            if self.program.module(id).custom_uncompute().is_some() {
                self.run_block(BlockKind::CustomUncompute, id, args, anc, depth, g_p)?;
            } else {
                // Invert the recorded compute slice into the reused
                // scratch buffer (no per-frame slice copy).
                let mut scratch = std::mem::take(&mut self.inverse_scratch);
                let mut next = self.next_virt;
                invert_slice_into(
                    &self.trace[compute_start..compute_end],
                    &mut scratch,
                    || {
                        let v = VirtId(next);
                        next += 1;
                        v
                    },
                );
                self.next_virt = next;
                let mut j = 0;
                while j < scratch.len() {
                    // Same layer batching as run_block: uncompute
                    // replays are gate-dense, so whole inverse slices
                    // usually route as a single layer.
                    if !self.lookahead && matches!(&scratch[j], TraceOp::Gate(_)) {
                        let mut layer = std::mem::take(&mut self.layer_scratch);
                        layer.clear();
                        while let Some(TraceOp::Gate(g)) = scratch.get(j) {
                            layer.push(g.clone());
                            j += 1;
                        }
                        let routed = self.emit_gate_layer(&mut layer);
                        self.layer_scratch = layer;
                        routed?;
                        continue;
                    }
                    if self.lookahead && matches!(&scratch[j], TraceOp::Gate(g) if g.arity() >= 2) {
                        let depth = self.config.router.lookahead_window;
                        let window = self.machine.lookahead_mut();
                        window.clear();
                        for op in &scratch[j + 1..] {
                            if let TraceOp::Gate(g) = op {
                                if g.arity() >= 2 {
                                    window.push(g.clone());
                                    if window.len() >= depth {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    self.emit(scratch[j].clone(), &[])?;
                    j += 1;
                }
                self.inverse_scratch = scratch;
            }
            if depth > 0 {
                for a in anc.iter().rev() {
                    self.emit(TraceOp::Free(*a), &[])?;
                }
            }
        } else {
            self.decisions.garbage += 1;
        }
        Ok(())
    }

    fn run_block(
        &mut self,
        block: BlockKind,
        id: ModuleId,
        args: &[VirtId],
        anc: &[VirtId],
        depth: usize,
        frame_g_p: u64,
    ) -> Result<(), CompileError> {
        // Copy the shared program reference out of `self` so the
        // statement slice borrows the program's lifetime, not `self`
        // (the historical code cloned every block to satisfy the
        // borrow checker).
        let program = self.program;
        let module = program.module(id);
        let stmts = match block {
            BlockKind::Compute => module.compute(),
            BlockKind::Store => module.store(),
            BlockKind::CustomUncompute => module
                .custom_uncompute()
                .expect("caller checked the block exists"),
        };
        let resolve = |op: &Operand| -> VirtId {
            match op {
                Operand::Param(i) => args[*i],
                Operand::Ancilla(i) => anc[*i],
            }
        };
        let mut i = 0;
        while i < stmts.len() {
            // Without a lookahead window to refill per gate, a maximal
            // run of consecutive gate statements routes as one layer —
            // the batched path that lets wide layers plan their swap
            // chains in parallel.
            if !self.lookahead && matches!(&stmts[i], Stmt::Gate(_)) {
                let mut layer = std::mem::take(&mut self.layer_scratch);
                layer.clear();
                while let Some(Stmt::Gate(g)) = stmts.get(i) {
                    layer.push(g.map(resolve));
                    i += 1;
                }
                let routed = self.emit_gate_layer(&mut layer);
                self.layer_scratch = layer;
                routed?;
                continue;
            }
            let stmt = &stmts[i];
            // O(1) memoized look-ahead: gates left in this block after
            // the current statement.
            let rest = match block {
                BlockKind::Compute => self.costs.compute_tail(id, i),
                BlockKind::Store => self.costs.store_tail(id, i),
                BlockKind::CustomUncompute => self.costs.custom_tail(id, i),
            };
            // Only multi-qubit gates route, so only they read the
            // window — skip the O(block) rebuild for 1-qubit gates.
            if self.lookahead && matches!(stmt, Stmt::Gate(g) if g.arity() >= 2) {
                self.fill_window(&stmts[i + 1..], args, anc);
            }
            self.exec_stmt(stmt, id, args, anc, depth, rest, frame_g_p)?;
            i += 1;
        }
        Ok(())
    }

    /// Refills the machine's lookahead window with the next
    /// [`RouterConfig::lookahead_window`] multi-qubit gates of the
    /// current block, resolved to virtual qubits — the front/extended
    /// set a SABRE-style router scores swaps against. The window ends
    /// at the first call statement: callee gate streams are not
    /// statically visible at this altitude.
    fn fill_window(&mut self, upcoming: &[Stmt], args: &[VirtId], anc: &[VirtId]) {
        let resolve = |op: &Operand| -> VirtId {
            match op {
                Operand::Param(i) => args[*i],
                Operand::Ancilla(i) => anc[*i],
            }
        };
        let depth = self.config.router.lookahead_window;
        let window = self.machine.lookahead_mut();
        window.clear();
        for stmt in upcoming {
            match stmt {
                Stmt::Gate(g) if g.arity() >= 2 => {
                    window.push(g.map(resolve));
                    if window.len() >= depth {
                        break;
                    }
                }
                Stmt::Gate(_) => {}
                Stmt::Call { .. } => break,
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        caller: ModuleId,
        args: &[VirtId],
        anc: &[VirtId],
        depth: usize,
        gates_after_stmt: u64,
        frame_g_p: u64,
    ) -> Result<(), CompileError> {
        let resolve = |op: &Operand| -> VirtId {
            match op {
                Operand::Param(i) => args[*i],
                Operand::Ancilla(i) => anc[*i],
            }
        };
        match stmt {
            Stmt::Gate(g) => {
                let g = g.map(resolve);
                self.emit(TraceOp::Gate(g), &[])
            }
            Stmt::Call { callee, args: a } => {
                let resolved: Vec<VirtId> = a.iter().map(resolve).collect();
                let callee_mod = self.program.module(*callee);
                // Look-ahead interaction set for the child's ancilla:
                // the qubits bound to its parameters.
                let child_anc: Vec<VirtId> =
                    (0..callee_mod.ancillas()).map(|_| self.fresh()).collect();
                for v in &child_anc {
                    self.emit(TraceOp::Alloc(*v), &resolved)?;
                }
                // G_p for the child: gates left in this frame after the
                // call, plus this frame's own uncompute estimate
                // (static compute size) — the distance to the point
                // where the child's garbage would be swept. If this
                // frame itself is unlikely to uncompute (running rate
                // ρ), the sweep horizon extends toward *our* parent's:
                // add the expected remainder (1−ρ)·g_p.
                let own_uncomp = self.pstats.module(caller).gates_compute;
                let total = self.decisions.reclaimed + self.decisions.garbage;
                let rate = (self.decisions.reclaimed as f64 + 1.0) / (total as f64 + 2.0);
                let g_p_child =
                    gates_after_stmt + own_uncomp + ((1.0 - rate) * frame_g_p as f64) as u64;
                self.run_body(*callee, &resolved, &child_anc, depth + 1, g_p_child)
            }
        }
    }

    fn decide(
        &mut self,
        id: ModuleId,
        depth: usize,
        g_uncomp: u64,
        n_anc: usize,
        g_p: u64,
        frame_qubits: usize,
    ) -> bool {
        match self.config.policy {
            Policy::Eager | Policy::SquareLaaOnly => true,
            Policy::Lazy => depth == 0,
            Policy::Square => {
                let total = self.decisions.reclaimed + self.decisions.garbage;
                let inputs = CerInputs {
                    n_active: self.machine.placement().active_count(),
                    n_anc,
                    g_uncomp,
                    g_p,
                    level: depth,
                    comm_factor: self.machine.comm_factor(),
                    free_qubits: self.machine.placement().free_count(),
                    capacity: self.machine.qubit_count(),
                    // Laplace-smoothed running reclaim rate.
                    reclaim_rate: (self.decisions.reclaimed as f64 + 1.0) / (total as f64 + 2.0),
                    frame_qubits,
                };
                let d = self.cer.decide(id, &inputs);
                if d.forced {
                    self.decisions.forced += 1;
                }
                d.reclaim
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchSpec;
    use square_qir::ProgramBuilder;

    /// Two-level program: child computes into an ancilla, parent
    /// stores the result, entry copies to output.
    fn nested_program() -> Program {
        let mut b = ProgramBuilder::new();
        let child = b
            .module("child", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.store();
                m.cx(a, out);
            })
            .unwrap();
        let parent = b
            .module("parent", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let t = m.ancilla(0);
                m.call(child, &[x, t]);
                m.store();
                m.cx(t, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 3, |m| {
                let (x, po, fo) = (m.ancilla(0), m.ancilla(1), m.ancilla(2));
                m.x(x);
                m.call(parent, &[x, po]);
                m.store();
                m.cx(po, fo);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    fn grid(policy: Policy) -> CompilerConfig {
        CompilerConfig::nisq(policy).with_arch(ArchSpec::Grid {
            width: 4,
            height: 4,
        })
    }

    #[test]
    fn all_policies_compile_nested_program() {
        let p = nested_program();
        for policy in Policy::ALL {
            let r = compile(&p, &grid(policy)).unwrap();
            assert!(r.gates > 0, "{policy}");
            assert!(r.aqv > 0, "{policy}");
            assert_eq!(r.aqv, r.aqv_from_segments(), "{policy}");
            assert_eq!(r.entry_register.len(), 3);
        }
    }

    #[test]
    fn eager_recomputes_lazy_reserves() {
        let p = nested_program();
        let eager = compile(&p, &grid(Policy::Eager)).unwrap();
        let lazy = compile(&p, &grid(Policy::Lazy)).unwrap();
        assert!(
            eager.gates > lazy.gates,
            "recursive recomputation: {} vs {}",
            eager.gates,
            lazy.gates
        );
        // On this tiny program routing relocations can scatter the
        // heap, so compare concurrency (peak) rather than footprint;
        // the footprint contrast shows on the real benchmarks.
        assert!(
            eager.peak_active <= lazy.peak_active,
            "qubit reservation: {} vs {}",
            eager.peak_active,
            lazy.peak_active
        );
        assert!(eager.decisions.reclaimed > 0);
        assert!(lazy.decisions.garbage > 0);
    }

    #[test]
    fn trace_replay_on_bits_matches_reference_semantics() {
        use std::collections::HashMap;
        let p = nested_program();
        for policy in Policy::ALL {
            let r = compile(&p, &grid(policy)).unwrap();
            // Replay the virtual trace on booleans.
            let mut bits: HashMap<VirtId, bool> = HashMap::new();
            for op in &r.trace {
                match op {
                    TraceOp::Alloc(v) => {
                        bits.insert(*v, false);
                    }
                    TraceOp::Free(v) => {
                        let val = bits.remove(v).expect("free of dead qubit");
                        assert!(!val, "{policy}: dirty ancilla freed");
                    }
                    TraceOp::Gate(g) => {
                        let get = |q: &VirtId| bits[q];
                        match g {
                            Gate::X { target } => *bits.get_mut(target).unwrap() ^= true,
                            Gate::Cx { control, target } => {
                                if get(control) {
                                    *bits.get_mut(target).unwrap() ^= true;
                                }
                            }
                            Gate::Ccx { c0, c1, target } => {
                                if get(c0) && get(c1) {
                                    *bits.get_mut(target).unwrap() ^= true;
                                }
                            }
                            Gate::Swap { a, b } => {
                                let (va, vb) = (get(a), get(b));
                                bits.insert(*a, vb);
                                bits.insert(*b, va);
                            }
                            Gate::Mcx { controls, target } => {
                                if controls.iter().all(get) {
                                    *bits.get_mut(target).unwrap() ^= true;
                                }
                            }
                        }
                    }
                }
            }
            // Final out = 1 (x=1 propagated through child and parent;
            // the store block shields it from the entry's uncompute,
            // which rolls the X prep itself back to |0⟩ under policies
            // that reclaim at top level).
            let vals: Vec<bool> = r.entry_register.iter().map(|v| bits[v]).collect();
            assert!(vals[2], "{policy}: output stored");
            // Reference semantics agree.
            let mut oracle = |_m: ModuleId, d: usize| match policy {
                Policy::Eager | Policy::SquareLaaOnly => true,
                Policy::Lazy => d == 0,
                Policy::Square => unreachable!("compared separately"),
            };
            if policy != Policy::Square {
                let sem = square_qir::sem::run(&p, &[], &mut oracle).unwrap();
                assert_eq!(sem.outputs, vals, "{policy}");
            }
        }
    }

    #[test]
    fn decision_log_replays_through_reference_semantics() {
        let p = nested_program();
        for policy in Policy::ALL {
            let r = compile(&p, &grid(policy)).unwrap();
            assert_eq!(
                r.decision_log.len() as u64,
                r.decisions.reclaimed + r.decisions.garbage,
                "{policy}: log covers every decision"
            );
            // The reference semantics, fed the recorded decisions,
            // visit exactly the same reclamation points.
            let lowered = square_qir::lower_mcx(&p);
            let mut oracle = square_qir::RecordedDecisions::new(r.decision_bools());
            let sem = square_qir::sem::run(&lowered, &[], &mut oracle).unwrap();
            assert!(oracle.in_sync(), "{policy}: decision sequence drift");
            assert_eq!(sem.outputs.len(), r.entry_register.len(), "{policy}");
        }
    }

    #[test]
    fn schedule_recording_also_records_placement_history() {
        let p = nested_program();
        let r = compile(&p, &grid(Policy::Square).with_schedule()).unwrap();
        let history = r.placement_history.as_ref().expect("recorded");
        assert!(!history.is_empty());
        // Every entry-register qubit's journey ends at its final
        // placement.
        for v in &r.entry_register {
            let journey = square_route::journey_of(history, *v);
            assert_eq!(journey.last(), r.final_placement.get(v), "{v}");
        }
        let bare = compile(&p, &grid(Policy::Square)).unwrap();
        assert!(bare.placement_history.is_none());
    }

    #[test]
    fn out_of_qubits_is_reported() {
        let p = nested_program();
        let cfg = CompilerConfig::nisq(Policy::Lazy).with_arch(ArchSpec::Grid {
            width: 2,
            height: 1,
        });
        let err = compile(&p, &cfg).unwrap_err();
        assert!(matches!(err, CompileError::OutOfQubits { .. }));
    }

    #[test]
    fn inputs_prepend_x_gates() {
        let p = nested_program();
        let r0 = compile(&p, &grid(Policy::Eager)).unwrap();
        let r1 = compile_with_inputs(&p, &[true, true], &grid(Policy::Eager)).unwrap();
        assert_eq!(r1.gates, r0.gates + 2);
    }

    #[test]
    fn square_policy_reclaims_under_pressure() {
        // A machine barely large enough forces CER's pressure path.
        let p = nested_program();
        let cfg = CompilerConfig::nisq(Policy::Square).with_arch(ArchSpec::Grid {
            width: 3,
            height: 2,
        });
        let r = compile(&p, &cfg).unwrap();
        assert!(r.decisions.forced > 0 || r.decisions.reclaimed > 0);
    }

    #[test]
    fn ft_target_uses_braids_not_swaps() {
        let p = nested_program();
        let cfg = CompilerConfig::ft(Policy::Square).with_arch(ArchSpec::Grid {
            width: 4,
            height: 4,
        });
        let r = compile(&p, &cfg).unwrap();
        assert_eq!(r.swaps, 0);
        assert!(r.stats.braids > 0);
    }
}

//! The instrumentation-driven compile-time executor (Section III-C).
//!
//! Quantum programs in SQUARE's domain have compile-time-known control
//! flow, so the compiler *executes* the program: every `Allocate` runs
//! the allocation heuristic, every gate is routed and scheduled on the
//! machine model, and every `Free` runs the reclamation heuristic.
//! Uncomputation is performed mechanically by replaying the frame's
//! recorded compute slice inverted (see `square_qir::trace`), which
//! reproduces both recursive recomputation (for reclaimed children)
//! and garbage sweeping (for lazy children) without any special
//! casing.

use std::sync::Arc;

use square_arch::{CommModel, Topology};
use square_qir::{
    analysis::ProgramStats, lower_mcx, scan_mbu_slice, trace::invert_slice_into, ClbitId, Gate,
    ModuleId, Operand, Program, Stmt, TraceOp, VirtId,
};
use square_route::{Machine, MachineConfig, RouterConfig, RouterKind};

use crate::budget::{scan_candidate, BudgetState};
use crate::cer::{early_reclaim_score, CerEngine, CerInputs, ModuleCostTable};
use crate::config::CompilerConfig;
use crate::error::CompileError;
use crate::heap::AncillaHeap;
use crate::laa;
use crate::policy::Policy;
use crate::report::{CompileReport, DecisionStats, MbuStats, ReclaimDecision, ReclaimLowering};

/// Compiles `program` with all entry-register inputs |0⟩.
///
/// # Errors
///
/// Program validation errors, routing failures, or capacity
/// exhaustion ([`CompileError::OutOfQubits`]).
pub fn compile(program: &Program, config: &CompilerConfig) -> Result<CompileReport, CompileError> {
    compile_with_inputs(program, &[], config)
}

/// Compiles `program`, preparing the entry register's first
/// `inputs.len()` qubits with X gates (computational-basis input) —
/// needed when the schedule will be noise-simulated.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with_inputs(
    program: &Program,
    inputs: &[bool],
    config: &CompilerConfig,
) -> Result<CompileReport, CompileError> {
    let prepared = PreparedProgram::new(program)?;
    compile_prepared(&prepared, inputs, config)
}

/// The reusable compile prefix of one program: validated, MCX-lowered,
/// analyzed, and cost-tabled.
///
/// Every field is a pure, deterministic function of the input program,
/// so the artifacts can be computed once and shared across any number
/// of compiles — this is what a long-running compile service lifts
/// into a content-hash-keyed cross-request cache (the
/// [`ModuleCostTable`] build in particular kills the dominant
/// per-request analysis cost on repeated programs).
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    lowered: Program,
    pstats: ProgramStats,
    costs: ModuleCostTable,
    capacity_hint: usize,
}

impl PreparedProgram {
    /// Validates `program` and builds every compile-prefix artifact.
    ///
    /// # Errors
    ///
    /// Program validation errors ([`CompileError::Qir`]).
    pub fn new(program: &Program) -> Result<Self, CompileError> {
        square_qir::validate::validate_program(program)?;
        let lowered = lower_mcx(program);
        let pstats = ProgramStats::analyze(&lowered);
        // Per-module cost terms (custom-uncompute totals, block suffix
        // sums) memoized up front — the per-frame hot path never
        // re-walks statement lists. Modules are mutually independent,
        // so the table is built in parallel.
        let costs = ModuleCostTable::build(&lowered, &pstats);
        let capacity_hint = pstats.module(lowered.entry()).ancilla_transitive as usize;
        Ok(PreparedProgram {
            lowered,
            pstats,
            costs,
            capacity_hint,
        })
    }

    /// The MCX-lowered program the executor runs.
    pub fn lowered(&self) -> &Program {
        &self.lowered
    }

    /// Worst-case simultaneous ancilla footprint of the entry module —
    /// the hint `Auto*` architectures size machines from.
    pub fn capacity_hint(&self) -> usize {
        self.capacity_hint
    }

    /// Per-module static analysis of the lowered program.
    pub fn stats(&self) -> &ProgramStats {
        &self.pstats
    }
}

/// Compiles from pre-built prefix artifacts, constructing a fresh
/// topology from `config.arch`.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_prepared(
    prepared: &PreparedProgram,
    inputs: &[bool],
    config: &CompilerConfig,
) -> Result<CompileReport, CompileError> {
    let topo: Arc<dyn Topology> = Arc::from(config.arch.build(prepared.capacity_hint));
    compile_prepared_on(prepared, inputs, config, topo)
}

/// Compiles from pre-built prefix artifacts onto a *shared* topology.
/// The topology must match `config.arch` (callers that cache
/// topologies key them by the arch spec plus the capacity hint); it is
/// never mutated, so any number of concurrent compiles may hold the
/// same `Arc` and reuse its lazily-built distance/next-hop tables.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_prepared_on(
    prepared: &PreparedProgram,
    inputs: &[bool],
    config: &CompilerConfig,
    topo: Arc<dyn Topology>,
) -> Result<CompileReport, CompileError> {
    let lowered = &prepared.lowered;
    // Braiding never consults the swap-chain router: normalize the
    // recorded selection to greedy so reports cannot claim a lookahead
    // router that never ran.
    let router = match config.comm {
        CommModel::SwapChains => config.router,
        CommModel::Braiding => RouterConfig {
            kind: RouterKind::Greedy,
            ..config.router
        },
    };
    let machine = Machine::with_shared(
        topo,
        MachineConfig {
            comm: config.comm,
            record_schedule: config.record_schedule,
            router,
        },
    );
    let heap = AncillaHeap::with_capacity(machine.qubit_count());
    let mut exec = Exec {
        program: lowered,
        pstats: &prepared.pstats,
        costs: &prepared.costs,
        cer: CerEngine::new(config.cer),
        config,
        machine,
        heap,
        trace: Vec::new(),
        inverse_scratch: Vec::new(),
        next_virt: 0,
        next_clbit: 0,
        gates_emitted: 0,
        decisions: DecisionStats::default(),
        decision_log: Vec::new(),
        mbu_stats: MbuStats::default(),
        lookahead: false,
        layer_scratch: Vec::new(),
        budget: config.budget.map(BudgetState::new),
        stack_need: if config.budget.is_some() {
            crate::budget::stack_need(lowered)
        } else {
            0
        },
        stack_width: 0,
        module_stack: Vec::new(),
    };
    let lookahead = exec.machine.wants_lookahead();
    exec.lookahead = lookahead;
    let route_start = std::time::Instant::now();
    let entry_register = exec.run_entry(inputs)?;
    let route_ns = route_start.elapsed().as_nanos() as u64;
    let decisions = exec.decisions;
    let decision_log = std::mem::take(&mut exec.decision_log);
    let mbu_stats = exec.mbu_stats;
    let cer_cache = exec.cer.stats();
    let recompute = exec.budget.as_ref().map(|b| b.stats).unwrap_or_default();
    let policy = config.policy;
    let comm = config.comm;
    let comm_factor = exec.machine.comm_factor();
    let machine_qubits = exec.machine.qubit_count();
    let trace = exec.trace;
    let route_report = exec.machine.finish();
    let router = router.kind;
    let aqv_value = square_metrics::aqv(route_report.segments.iter().map(|s| (s.start, s.end)));
    Ok(CompileReport {
        policy,
        comm,
        router,
        gates: route_report.stats.program_gates,
        swaps: route_report.stats.swaps,
        depth: route_report.depth,
        qubits: route_report.footprint,
        peak_active: route_report.peak_active,
        aqv: aqv_value,
        comm_factor,
        stats: route_report.stats,
        segments: route_report.segments,
        schedule: route_report.schedule,
        entry_register,
        final_placement: route_report.final_placement,
        decisions,
        decision_log,
        placement_history: route_report.placement_history,
        cer_cache,
        machine_qubits,
        route_ns,
        trace,
        budget: config.budget,
        recompute,
        mbu: config.mbu,
        mbu_stats,
    })
}

/// Which block of a module [`Exec::run_block`] is executing (selects
/// the matching suffix-sum table for O(1) tail-gate look-ahead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Compute,
    Store,
    CustomUncompute,
}

struct Exec<'p> {
    program: &'p Program,
    pstats: &'p ProgramStats,
    /// Memoized per-module static cost terms (see [`ModuleCostTable`]),
    /// borrowed so a service can share one table across requests.
    costs: &'p ModuleCostTable,
    /// Incremental CER evaluator (decision memo, invalidated only at
    /// allocation events).
    cer: CerEngine,
    config: &'p CompilerConfig,
    machine: Machine,
    heap: AncillaHeap,
    trace: Vec<TraceOp>,
    /// Reused buffer for mechanical uncompute slices (avoids two Vec
    /// allocations per reclaimed frame).
    inverse_scratch: Vec<TraceOp>,
    next_virt: u32,
    /// Classical-bit id supply: fresh per measurement event, never
    /// reused (MBU lowerings and module-declared clbits alike).
    next_clbit: u32,
    /// Running count of gate events emitted (unitary gates,
    /// measurements, and classically controlled corrections),
    /// snapshotted around compute blocks so `G_uncomp` is O(1) instead
    /// of a re-walk of the recorded slice.
    gates_emitted: u64,
    decisions: DecisionStats,
    /// Per-frame decisions in completion order (see [`ReclaimDecision`]).
    decision_log: Vec<ReclaimDecision>,
    /// Measurement-based-uncompute activity (stays default with MBU
    /// off).
    mbu_stats: MbuStats,
    /// True when the machine's router consumes upcoming-gate windows
    /// (gates the per-gate window construction off the hot path
    /// otherwise).
    lookahead: bool,
    /// Reused buffer for batching runs of consecutive gate statements
    /// into one [`Machine::apply_layer`] call.
    layer_scratch: Vec<Gate<VirtId>>,
    /// Early-uncompute engine, present only under `budget:N` — every
    /// budget hook is behind this `Option`, keeping unbudgeted
    /// compiles bit-identical to their pre-budget behavior.
    budget: Option<BudgetState>,
    /// Eager-floor stack need of the entry module (see
    /// [`crate::budget::stack_need`]); 0 when unbudgeted.
    stack_need: usize,
    /// Ancilla qubits belonging to currently open frames (the live
    /// call stack's width); live − stack = settled garbage, the
    /// quantity the budget clamp polices.
    stack_width: usize,
    /// Call stack of module ids, for attributing [`CompileError::
    /// OutOfQubits`] to the module whose allocation failed.
    module_stack: Vec<ModuleId>,
}

impl Exec<'_> {
    fn fresh(&mut self) -> VirtId {
        let v = VirtId(self.next_virt);
        self.next_virt += 1;
        v
    }

    fn fresh_clbit(&mut self) -> ClbitId {
        let c = ClbitId(self.next_clbit);
        self.next_clbit += 1;
        c
    }

    /// Routes and schedules a batched run of consecutive gates through
    /// [`Machine::apply_layer`] (which plans wide layers' swap chains
    /// in parallel, bit-identically to serial routing), then performs
    /// the same per-gate bookkeeping as [`Exec::emit`]: the layer's
    /// relocations are drained once — they accumulate in machine
    /// order, and no `Alloc`/`Free` can interleave within a gate run —
    /// and the gates are appended to the virtual trace. Drains `gates`.
    fn emit_gate_layer(&mut self, gates: &mut Vec<Gate<VirtId>>) -> Result<(), CompileError> {
        self.machine.apply_layer(gates)?;
        self.gates_emitted += gates.len() as u64;
        for (from, to) in self.machine.drain_relocations() {
            self.heap.relocate(from, to);
        }
        for g in gates.drain(..) {
            if let Some(b) = &mut self.budget {
                let pos = self.trace.len();
                crate::budget::for_each_write(&g, |w| b.note_write(w, pos));
            }
            self.trace.push(TraceOp::Gate(g));
        }
        Ok(())
    }

    /// Applies one trace op to the machine and appends it to the
    /// virtual trace. `interact` guides placement of `Alloc` ops.
    fn emit(&mut self, op: TraceOp, interact: &[VirtId]) -> Result<(), CompileError> {
        match &op {
            TraceOp::Alloc(v) => {
                // Under `budget:N`, evict (early-uncompute) garbage
                // frames until this allocation fits under the cap.
                if self.budget.is_some() {
                    self.ensure_headroom()?;
                }
                let choice = if self.config.policy.uses_laa() {
                    laa::choose_slot(&self.machine, &mut self.heap, interact, &self.config.laa)
                } else {
                    laa::choose_slot_naive(&self.machine, &mut self.heap, self.next_virt as u64)
                };
                let choice = match choice {
                    Some(c) => c,
                    None => return Err(self.out_of_qubits(1, None)),
                };
                self.machine.place_at(*v, choice.phys)?;
                self.cer.note_allocation_event();
            }
            TraceOp::Free(v) => {
                let phys = self.machine.release(*v)?;
                self.heap.push(phys);
                self.cer.note_allocation_event();
            }
            TraceOp::Gate(g) => {
                self.machine.apply(g)?;
                self.gates_emitted += 1;
                // Routing swaps may have moved pooled |0⟩ cells.
                for (from, to) in self.machine.drain_relocations() {
                    self.heap.relocate(from, to);
                }
            }
            TraceOp::Measure { qubit, clbit } => {
                self.machine.measure(*qubit, *clbit)?;
                self.gates_emitted += 1;
            }
            TraceOp::CondGate { clbit, gate } => {
                self.machine.apply_guarded(gate, *clbit)?;
                self.gates_emitted += 1;
                for (from, to) in self.machine.drain_relocations() {
                    self.heap.relocate(from, to);
                }
            }
        }
        if let Some(b) = &mut self.budget {
            // Freshness stamps (budget rule 3): allocs and frees
            // change state; gates stamp only their write targets, so
            // later *reads* of a candidate's inputs don't stale it.
            // Measurements read without writing; a guarded gate stamps
            // its inner gate's targets (it may fire at runtime).
            let pos = self.trace.len();
            match &op {
                TraceOp::Alloc(v) | TraceOp::Free(v) => b.note_write(*v, pos),
                TraceOp::Gate(g) => crate::budget::for_each_write(g, |w| b.note_write(w, pos)),
                TraceOp::Measure { .. } => {}
                TraceOp::CondGate { gate, .. } => {
                    crate::budget::for_each_write(gate, |w| b.note_write(w, pos));
                }
            }
        }
        self.trace.push(op);
        Ok(())
    }

    /// Builds the structured capacity-exhaustion diagnostic at the
    /// failure point.
    fn out_of_qubits(&self, requested: usize, min_feasible: Option<usize>) -> CompileError {
        let module = self
            .module_stack
            .last()
            .map(|id| self.program.module(*id).name().to_string());
        CompileError::OutOfQubits {
            requested,
            capacity: self.machine.qubit_count(),
            live: self.machine.placement().active_count(),
            policy: self.config.policy,
            budget: self.config.budget,
            module,
            min_feasible,
        }
    }

    /// Budget rule engine: while the next allocation would exceed the
    /// cap, early-uncompute the cheapest evictable garbage frame
    /// (CER-scored: uncompute-now + recompute-later per qubit freed).
    /// Errors with the minimum feasible budget when the candidate pool
    /// runs dry first.
    fn ensure_headroom(&mut self) -> Result<(), CompileError> {
        loop {
            let live = self.machine.placement().active_count();
            let budget = self.budget.as_mut().expect("caller checked budget");
            if live < budget.cap {
                return Ok(());
            }
            let total = self.decisions.reclaimed + self.decisions.garbage;
            let rate = (self.decisions.reclaimed as f64 + 1.0) / (total as f64 + 2.0);
            let params = self.config.cer;
            let Some(idx) =
                budget.pick(|c| early_reclaim_score(&params, c.gates, c.freed, rate, c.level))
            else {
                // Nothing evictable: even perfect reclamation cannot
                // fit this allocation — report the honest lower bound
                // on a workable budget.
                return Err(self.out_of_qubits(1, Some(live + 1)));
            };
            self.early_uncompute(idx)?;
        }
    }

    /// Evicts candidate `idx`: replays its recorded compute slice
    /// inverted at the current trace position (rolling its ancillas
    /// back to |0⟩, freeing any interior garbage allocs along the
    /// way), then frees the ancillas. The frame's region stays in the
    /// trace, so a covering ancestor sweep recomputes it mechanically.
    fn early_uncompute(&mut self, idx: usize) -> Result<(), CompileError> {
        let budget = self.budget.as_mut().expect("caller checked budget");
        let cand = budget.candidates.swap_remove(idx);
        let u_start = self.trace.len();
        let mut scratch = std::mem::take(&mut self.inverse_scratch);
        let mut next = self.next_virt;
        invert_slice_into(&self.trace[cand.start..cand.end], &mut scratch, || {
            let v = VirtId(next);
            next += 1;
            v
        });
        self.next_virt = next;
        // Flat regions (rule 1) invert to gates + frees only, so this
        // replay never allocates and never re-enters ensure_headroom.
        let replayed = self.replay_ops(&mut scratch);
        self.inverse_scratch = scratch;
        replayed?;
        for a in cand.anc.iter().rev() {
            self.emit(TraceOp::Free(*a), &[])?;
        }
        self.budget
            .as_mut()
            .expect("still budgeted")
            .note_early_uncompute(u_start, cand.gates);
        Ok(())
    }

    fn run_entry(&mut self, inputs: &[bool]) -> Result<Vec<VirtId>, CompileError> {
        let entry_id = self.program.entry();
        self.module_stack.push(entry_id);
        let entry = self.program.module(entry_id);
        let anc: Vec<VirtId> = (0..entry.ancillas()).map(|_| self.fresh()).collect();
        for v in &anc {
            self.emit(TraceOp::Alloc(*v), &[])?;
        }
        for (i, bit) in inputs.iter().enumerate() {
            if *bit && i < anc.len() {
                self.emit(TraceOp::Gate(Gate::X { target: anc[i] }), &[])?;
            }
        }
        self.run_body(entry_id, &[], &anc, 0, 0)?;
        Ok(anc)
    }

    /// Executes a frame's compute + store blocks and applies the
    /// reclamation decision. `g_p` is the estimated gates remaining
    /// between this frame's end and its parent's uncompute block.
    fn run_body(
        &mut self,
        id: ModuleId,
        args: &[VirtId],
        anc: &[VirtId],
        depth: usize,
        g_p: u64,
    ) -> Result<(), CompileError> {
        self.module_stack.push(id);
        self.stack_width += anc.len();
        let result = self.run_body_inner(id, args, anc, depth, g_p);
        self.stack_width -= anc.len();
        self.module_stack.pop();
        result
    }

    fn run_body_inner(
        &mut self,
        id: ModuleId,
        args: &[VirtId],
        anc: &[VirtId],
        depth: usize,
        g_p: u64,
    ) -> Result<(), CompileError> {
        // Fresh classical bits for this activation's declared clbits
        // (mirrors the reference semantics: each call measures into
        // its own bits, never a sibling's).
        let clbits: Vec<ClbitId> = (0..self.program.module(id).clbits())
            .map(|_| self.fresh_clbit())
            .collect();
        let compute_start = self.trace.len();
        let gates_before_compute = self.gates_emitted;
        self.run_block(BlockKind::Compute, id, args, anc, &clbits, depth, g_p)?;
        let compute_end = self.trace.len();
        let gates_after_compute = self.gates_emitted;
        // Budget rule 4: from here until this frame's fate is settled,
        // a mechanical sweep of `[compute_start..compute_end)` may be
        // pending — freeze every candidate inside it so an eviction
        // cannot free qubits the sweep will free again.
        if let Some(b) = &mut self.budget {
            b.frozen.push((compute_start, compute_end));
        }
        let result = self.run_settle(
            id,
            args,
            anc,
            &clbits,
            depth,
            g_p,
            compute_start,
            compute_end,
            gates_after_compute - gates_before_compute,
        );
        if let Some(b) = &mut self.budget {
            b.frozen.pop();
        }
        result
    }

    /// The post-compute tail of a frame: store block, reclamation
    /// decision, and the uncompute or garbage bookkeeping. Split from
    /// [`Exec::run_body_inner`] so the budget freeze bracket covers
    /// every exit path.
    #[allow(clippy::too_many_arguments)]
    fn run_settle(
        &mut self,
        id: ModuleId,
        args: &[VirtId],
        anc: &[VirtId],
        clbits: &[ClbitId],
        depth: usize,
        g_p: u64,
        compute_start: usize,
        compute_end: usize,
        measured_gates: u64,
    ) -> Result<(), CompileError> {
        self.run_block(BlockKind::Store, id, args, anc, clbits, depth, g_p)?;

        // Frames without ancilla have nothing to reclaim: skip the
        // decision (and the pointless uncompute) entirely.
        if depth > 0 && anc.is_empty() {
            return Ok(());
        }
        // Measurement-based uncompute: when enabled, scan the recorded
        // compute slice for eligibility (Toffoli-class writes to this
        // frame's ancillas only, interior activity balanced) and price
        // both lowerings under the per-gate-class cost model. The
        // entry frame never qualifies — its "ancillas" are the
        // program's I/O register, which a reset would destroy.
        let mbu_plan =
            if self.config.mbu && depth > 0 && self.program.module(id).custom_uncompute().is_none()
            {
                scan_mbu_slice(&self.trace[compute_start..compute_end], |q| {
                    anc.contains(&q)
                })
            } else {
                None
            };
        let use_mbu = match &mbu_plan {
            Some(plan) => {
                let costs = self.costs.gate_class_costs();
                costs.mbu_cost(plan.written.len()) < costs.slice_cost(&plan.counts)
            }
            None => false,
        };
        // G_uncomp: gate events of the lowering this frame would
        // actually use — two per written ancilla under MBU, else the
        // measured size of the compute slice (running gate counter,
        // O(1)), or the memoized static size of an explicit uncompute
        // block when the author supplied one (e.g. operand unloading
        // for in-place adders).
        let g_uncomp = if use_mbu {
            2 * mbu_plan.as_ref().map_or(0, |p| p.written.len()) as u64
        } else {
            match self.costs.custom_uncompute_gates(id) {
                Some(gates) => gates,
                None => measured_gates,
            }
        };
        let n_anc = anc.len();
        let frame_qubits = args.len() + anc.len();
        let reclaim = self.decide(id, depth, g_uncomp, n_anc, g_p, frame_qubits)?;
        let lowering = if reclaim && use_mbu {
            ReclaimLowering::Mbu
        } else {
            ReclaimLowering::Unitary
        };
        self.decision_log.push(ReclaimDecision {
            module: id,
            depth: depth as u32,
            reclaim,
            lowering,
        });
        if reclaim {
            self.decisions.reclaimed += 1;
            if self.program.module(id).custom_uncompute().is_some() {
                self.run_block(
                    BlockKind::CustomUncompute,
                    id,
                    args,
                    anc,
                    clbits,
                    depth,
                    g_p,
                )?;
            } else if use_mbu {
                // Measure-and-correct: each written ancilla is read
                // into a fresh classical bit and flipped back to |0⟩
                // exactly when the outcome was 1. Untouched ancillas
                // are already |0⟩ and need no events at all.
                let plan = mbu_plan.expect("use_mbu implies a plan");
                let costs = self.costs.gate_class_costs();
                self.mbu_stats.mbu_frames += 1;
                self.mbu_stats.measurements += plan.written.len() as u64;
                self.mbu_stats.cond_corrections += plan.written.len() as u64;
                self.mbu_stats.mbu_gates += costs.mbu_cost(plan.written.len());
                self.mbu_stats.unitary_gates_avoided += costs.slice_cost(&plan.counts);
                for q in plan.written {
                    let clbit = self.fresh_clbit();
                    self.emit(TraceOp::Measure { qubit: q, clbit }, &[])?;
                    self.emit(
                        TraceOp::CondGate {
                            clbit,
                            gate: Gate::X { target: q },
                        },
                        &[],
                    )?;
                }
            } else {
                // An early uncompute emitted inside this region is
                // replayed forward by the inversion below — count it
                // as recompute work before sweeping.
                if let Some(b) = &mut self.budget {
                    b.note_sweep(compute_start, compute_end);
                }
                // Invert the recorded compute slice into the reused
                // scratch buffer (no per-frame slice copy).
                let mut scratch = std::mem::take(&mut self.inverse_scratch);
                let mut next = self.next_virt;
                invert_slice_into(
                    &self.trace[compute_start..compute_end],
                    &mut scratch,
                    || {
                        let v = VirtId(next);
                        next += 1;
                        v
                    },
                );
                self.next_virt = next;
                let replayed = self.replay_ops(&mut scratch);
                self.inverse_scratch = scratch;
                replayed?;
            }
            if depth > 0 {
                for a in anc.iter().rev() {
                    self.emit(TraceOp::Free(*a), &[])?;
                }
            }
        } else {
            self.decisions.garbage += 1;
            // Budget engine: a garbage frame is exactly what early
            // uncomputation evicts later — register it if its region
            // satisfies the static eligibility rules. The entry frame
            // (depth 0) is excluded: its "ancillas" are the program's
            // I/O register.
            if depth > 0 {
                if let Some(b) = &mut self.budget {
                    let cand = scan_candidate(
                        &self.trace[compute_start..compute_end],
                        compute_start,
                        id,
                        depth,
                        anc,
                        measured_gates,
                        |q| b.last_write(q),
                    );
                    if let Some(cand) = cand {
                        b.candidates.push(cand);
                    }
                }
            }
        }
        Ok(())
    }

    /// Replays a mechanically inverted slice onto the machine, with
    /// the same layer batching and lookahead-window handling as
    /// [`Exec::run_block`]. Shared by frame sweeps and budget-driven
    /// early uncomputes. Leaves `scratch`'s contents in place (the
    /// caller returns the buffer to `inverse_scratch` for reuse).
    fn replay_ops(&mut self, scratch: &mut [TraceOp]) -> Result<(), CompileError> {
        let mut j = 0;
        while j < scratch.len() {
            // Same layer batching as run_block: uncompute replays are
            // gate-dense, so whole inverse slices usually route as a
            // single layer.
            if !self.lookahead && matches!(&scratch[j], TraceOp::Gate(_)) {
                let mut layer = std::mem::take(&mut self.layer_scratch);
                layer.clear();
                while let Some(TraceOp::Gate(g)) = scratch.get(j) {
                    layer.push(g.clone());
                    j += 1;
                }
                let routed = self.emit_gate_layer(&mut layer);
                self.layer_scratch = layer;
                routed?;
                continue;
            }
            if self.lookahead && matches!(&scratch[j], TraceOp::Gate(g) if g.arity() >= 2) {
                let depth = self.config.router.lookahead_window;
                let window = self.machine.lookahead_mut();
                window.clear();
                for op in &scratch[j + 1..] {
                    if let TraceOp::Gate(g) = op {
                        if g.arity() >= 2 {
                            window.push(g.clone());
                            if window.len() >= depth {
                                break;
                            }
                        }
                    }
                }
            }
            self.emit(scratch[j].clone(), &[])?;
            j += 1;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_block(
        &mut self,
        block: BlockKind,
        id: ModuleId,
        args: &[VirtId],
        anc: &[VirtId],
        clbits: &[ClbitId],
        depth: usize,
        frame_g_p: u64,
    ) -> Result<(), CompileError> {
        // Copy the shared program reference out of `self` so the
        // statement slice borrows the program's lifetime, not `self`
        // (the historical code cloned every block to satisfy the
        // borrow checker).
        let program = self.program;
        let module = program.module(id);
        let stmts = match block {
            BlockKind::Compute => module.compute(),
            BlockKind::Store => module.store(),
            BlockKind::CustomUncompute => module
                .custom_uncompute()
                .expect("caller checked the block exists"),
        };
        let resolve = |op: &Operand| -> VirtId {
            match op {
                Operand::Param(i) => args[*i],
                Operand::Ancilla(i) => anc[*i],
            }
        };
        let mut i = 0;
        while i < stmts.len() {
            // Without a lookahead window to refill per gate, a maximal
            // run of consecutive gate statements routes as one layer —
            // the batched path that lets wide layers plan their swap
            // chains in parallel.
            if !self.lookahead && matches!(&stmts[i], Stmt::Gate(_)) {
                let mut layer = std::mem::take(&mut self.layer_scratch);
                layer.clear();
                while let Some(Stmt::Gate(g)) = stmts.get(i) {
                    layer.push(g.map(resolve));
                    i += 1;
                }
                let routed = self.emit_gate_layer(&mut layer);
                self.layer_scratch = layer;
                routed?;
                continue;
            }
            let stmt = &stmts[i];
            // O(1) memoized look-ahead: gates left in this block after
            // the current statement.
            let rest = match block {
                BlockKind::Compute => self.costs.compute_tail(id, i),
                BlockKind::Store => self.costs.store_tail(id, i),
                BlockKind::CustomUncompute => self.costs.custom_tail(id, i),
            };
            // Only multi-qubit gates route, so only they read the
            // window — skip the O(block) rebuild for 1-qubit gates.
            if self.lookahead && matches!(stmt, Stmt::Gate(g) if g.arity() >= 2) {
                self.fill_window(&stmts[i + 1..], args, anc);
            }
            self.exec_stmt(stmt, id, args, anc, clbits, depth, rest, frame_g_p)?;
            i += 1;
        }
        Ok(())
    }

    /// Refills the machine's lookahead window with the next
    /// [`RouterConfig::lookahead_window`] multi-qubit gates of the
    /// current block, resolved to virtual qubits — the front/extended
    /// set a SABRE-style router scores swaps against. The window ends
    /// at the first call statement: callee gate streams are not
    /// statically visible at this altitude.
    fn fill_window(&mut self, upcoming: &[Stmt], args: &[VirtId], anc: &[VirtId]) {
        let resolve = |op: &Operand| -> VirtId {
            match op {
                Operand::Param(i) => args[*i],
                Operand::Ancilla(i) => anc[*i],
            }
        };
        let depth = self.config.router.lookahead_window;
        let window = self.machine.lookahead_mut();
        window.clear();
        for stmt in upcoming {
            match stmt {
                Stmt::Gate(g) if g.arity() >= 2 => {
                    window.push(g.map(resolve));
                    if window.len() >= depth {
                        break;
                    }
                }
                Stmt::Gate(_) => {}
                // Measurements and guarded corrections are local
                // single-cell events: nothing for a router to score.
                Stmt::Measure { .. } | Stmt::CondGate { .. } => {}
                Stmt::Call { .. } => break,
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        caller: ModuleId,
        args: &[VirtId],
        anc: &[VirtId],
        clbits: &[ClbitId],
        depth: usize,
        gates_after_stmt: u64,
        frame_g_p: u64,
    ) -> Result<(), CompileError> {
        let resolve = |op: &Operand| -> VirtId {
            match op {
                Operand::Param(i) => args[*i],
                Operand::Ancilla(i) => anc[*i],
            }
        };
        match stmt {
            Stmt::Gate(g) => {
                let g = g.map(resolve);
                self.emit(TraceOp::Gate(g), &[])
            }
            Stmt::Measure { qubit, clbit } => {
                let qubit = resolve(qubit);
                self.emit(
                    TraceOp::Measure {
                        qubit,
                        clbit: clbits[*clbit],
                    },
                    &[],
                )
            }
            Stmt::CondGate { clbit, gate } => {
                let gate = gate.map(resolve);
                self.emit(
                    TraceOp::CondGate {
                        clbit: clbits[*clbit],
                        gate,
                    },
                    &[],
                )
            }
            Stmt::Call { callee, args: a } => {
                let resolved: Vec<VirtId> = a.iter().map(resolve).collect();
                let callee_mod = self.program.module(*callee);
                // Look-ahead interaction set for the child's ancilla:
                // the qubits bound to its parameters.
                let child_anc: Vec<VirtId> =
                    (0..callee_mod.ancillas()).map(|_| self.fresh()).collect();
                for v in &child_anc {
                    self.emit(TraceOp::Alloc(*v), &resolved)?;
                }
                // G_p for the child: gates left in this frame after the
                // call, plus this frame's own uncompute estimate
                // (static compute size) — the distance to the point
                // where the child's garbage would be swept. If this
                // frame itself is unlikely to uncompute (running rate
                // ρ), the sweep horizon extends toward *our* parent's:
                // add the expected remainder (1−ρ)·g_p.
                let own_uncomp = self.pstats.module(caller).gates_compute;
                let total = self.decisions.reclaimed + self.decisions.garbage;
                let rate = (self.decisions.reclaimed as f64 + 1.0) / (total as f64 + 2.0);
                let g_p_child =
                    gates_after_stmt + own_uncomp + ((1.0 - rate) * frame_g_p as f64) as u64;
                self.run_body(*callee, &resolved, &child_anc, depth + 1, g_p_child)
            }
        }
    }

    /// How many garbage qubits past the line the program would be if
    /// this frame's `incoming` qubits joined the garbage pool now: the
    /// anticipatory clamp invariant is `garbage + stack_need ≤ eff`,
    /// which guarantees the deepest remaining call chain (and every
    /// sweep transient, whose width mirrors the forward width) always
    /// fits under the cap. Returns 0 when the frame can safely go
    /// garbage.
    fn budget_excess(&self, incoming: usize) -> usize {
        let Some(cap) = self.config.budget else {
            return 0;
        };
        let eff = cap.min(self.machine.qubit_count());
        let active = self.machine.placement().active_count();
        // Open-frame qubits are stack, not garbage; everything else
        // live is garbage from settled frames.
        let garbage = active.saturating_sub(self.stack_width);
        (garbage + incoming + self.stack_need).saturating_sub(eff)
    }

    /// Tries to clear `excess` overcommitted garbage qubits by early-
    /// uncomputing pool candidates, cheapest (CER-scored) first. Only
    /// trades while the candidate's uncompute is no dearer than the
    /// `g_uncomp` the deciding frame would pay — evicting old cheap
    /// garbage to admit new expensive garbage is the profitable move;
    /// the reverse is what forced reclamation is for. Returns the
    /// excess still uncovered.
    fn try_evict(&mut self, mut excess: usize, g_uncomp: u64) -> Result<usize, CompileError> {
        while excess > 0 {
            let total = self.decisions.reclaimed + self.decisions.garbage;
            let rate = (self.decisions.reclaimed as f64 + 1.0) / (total as f64 + 2.0);
            let params = self.config.cer;
            let budget = self.budget.as_mut().expect("caller checked budget");
            let Some(idx) =
                budget.pick(|c| early_reclaim_score(&params, c.gates, c.freed, rate, c.level))
            else {
                break;
            };
            if budget.candidates[idx].gates > g_uncomp {
                break;
            }
            let freed = budget.candidates[idx].freed;
            self.early_uncompute(idx)?;
            excess = excess.saturating_sub(freed);
        }
        Ok(excess)
    }

    fn decide(
        &mut self,
        id: ModuleId,
        depth: usize,
        g_uncomp: u64,
        n_anc: usize,
        g_p: u64,
        frame_qubits: usize,
    ) -> Result<bool, CompileError> {
        let base = match self.config.policy {
            Policy::Eager | Policy::SquareLaaOnly => true,
            Policy::Lazy => depth == 0,
            Policy::Square => {
                let total = self.decisions.reclaimed + self.decisions.garbage;
                // Under `budget:N` CER sees the capped machine: the cap
                // is the capacity and the headroom under it the free
                // pool, so the paper's own pressure rule engages as the
                // live width nears the budget. Both values are part of
                // the memo key, so budgeted decisions memoize apart
                // from unbudgeted ones.
                let n_active = self.machine.placement().active_count();
                let (capacity, free_qubits) = match self.config.budget {
                    Some(cap) => {
                        let eff = cap.min(self.machine.qubit_count());
                        (eff, eff.saturating_sub(n_active))
                    }
                    None => (
                        self.machine.qubit_count(),
                        self.machine.placement().free_count(),
                    ),
                };
                let inputs = CerInputs {
                    n_active,
                    n_anc,
                    g_uncomp,
                    g_p,
                    level: depth,
                    comm_factor: self.machine.comm_factor(),
                    free_qubits,
                    capacity,
                    // Laplace-smoothed running reclaim rate.
                    reclaim_rate: (self.decisions.reclaimed as f64 + 1.0) / (total as f64 + 2.0),
                    frame_qubits,
                };
                let d = self.cer.decide(id, &inputs);
                if d.forced {
                    self.decisions.forced += 1;
                }
                d.reclaim
            }
        };
        // Anticipatory budget clamp: a frame may only go garbage while
        // the invariant `garbage + stack_need ≤ eff` survives it. When
        // it would not, first try to restore headroom by evicting
        // settled garbage (the Reqomp move — the base decision and the
        // decision log are untouched); only when the pool cannot cover
        // the excess is the frame force-reclaimed.
        if !base && depth > 0 && self.config.budget.is_some() {
            let excess = self.budget_excess(n_anc);
            if excess > 0 && self.try_evict(excess, g_uncomp)? > 0 {
                self.decisions.forced += 1;
                return Ok(true);
            }
        }
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchSpec;
    use square_qir::ProgramBuilder;

    /// Two-level program: child computes into an ancilla, parent
    /// stores the result, entry copies to output.
    fn nested_program() -> Program {
        let mut b = ProgramBuilder::new();
        let child = b
            .module("child", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let a = m.ancilla(0);
                m.cx(x, a);
                m.store();
                m.cx(a, out);
            })
            .unwrap();
        let parent = b
            .module("parent", 2, 1, |m| {
                let (x, out) = (m.param(0), m.param(1));
                let t = m.ancilla(0);
                m.call(child, &[x, t]);
                m.store();
                m.cx(t, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 3, |m| {
                let (x, po, fo) = (m.ancilla(0), m.ancilla(1), m.ancilla(2));
                m.x(x);
                m.call(parent, &[x, po]);
                m.store();
                m.cx(po, fo);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    fn grid(policy: Policy) -> CompilerConfig {
        CompilerConfig::nisq(policy).with_arch(ArchSpec::Grid {
            width: 4,
            height: 4,
        })
    }

    #[test]
    fn all_policies_compile_nested_program() {
        let p = nested_program();
        for policy in Policy::ALL {
            let r = compile(&p, &grid(policy)).unwrap();
            assert!(r.gates > 0, "{policy}");
            assert!(r.aqv > 0, "{policy}");
            assert_eq!(r.aqv, r.aqv_from_segments(), "{policy}");
            assert_eq!(r.entry_register.len(), 3);
        }
    }

    #[test]
    fn eager_recomputes_lazy_reserves() {
        let p = nested_program();
        let eager = compile(&p, &grid(Policy::Eager)).unwrap();
        let lazy = compile(&p, &grid(Policy::Lazy)).unwrap();
        assert!(
            eager.gates > lazy.gates,
            "recursive recomputation: {} vs {}",
            eager.gates,
            lazy.gates
        );
        // On this tiny program routing relocations can scatter the
        // heap, so compare concurrency (peak) rather than footprint;
        // the footprint contrast shows on the real benchmarks.
        assert!(
            eager.peak_active <= lazy.peak_active,
            "qubit reservation: {} vs {}",
            eager.peak_active,
            lazy.peak_active
        );
        assert!(eager.decisions.reclaimed > 0);
        assert!(lazy.decisions.garbage > 0);
    }

    #[test]
    fn trace_replay_on_bits_matches_reference_semantics() {
        let p = nested_program();
        for policy in Policy::ALL {
            let r = compile(&p, &grid(policy)).unwrap();
            // Final out = 1 (x=1 propagated through child and parent;
            // the store block shields it from the entry's uncompute,
            // which rolls the X prep itself back to |0⟩ under policies
            // that reclaim at top level).
            let vals = replay_bits(&r.trace, &r.entry_register);
            assert!(vals[2], "{policy}: output stored");
            // Reference semantics agree.
            let mut oracle = |_m: ModuleId, d: usize| match policy {
                Policy::Eager | Policy::SquareLaaOnly => true,
                Policy::Lazy => d == 0,
                Policy::Square => unreachable!("compared separately"),
            };
            if policy != Policy::Square {
                let sem = square_qir::sem::run(&p, &[], &mut oracle).unwrap();
                assert_eq!(sem.outputs, vals, "{policy}");
            }
        }
    }

    #[test]
    fn decision_log_replays_through_reference_semantics() {
        let p = nested_program();
        for policy in Policy::ALL {
            let r = compile(&p, &grid(policy)).unwrap();
            assert_eq!(
                r.decision_log.len() as u64,
                r.decisions.reclaimed + r.decisions.garbage,
                "{policy}: log covers every decision"
            );
            // The reference semantics, fed the recorded decisions,
            // visit exactly the same reclamation points.
            let lowered = square_qir::lower_mcx(&p);
            let mut oracle = square_qir::RecordedDecisions::new(r.decision_bools());
            let sem = square_qir::sem::run(&lowered, &[], &mut oracle).unwrap();
            assert!(oracle.in_sync(), "{policy}: decision sequence drift");
            assert_eq!(sem.outputs.len(), r.entry_register.len(), "{policy}");
        }
    }

    #[test]
    fn schedule_recording_also_records_placement_history() {
        let p = nested_program();
        let r = compile(&p, &grid(Policy::Square).with_schedule()).unwrap();
        let history = r.placement_history.as_ref().expect("recorded");
        assert!(!history.is_empty());
        // Every entry-register qubit's journey ends at its final
        // placement.
        for v in &r.entry_register {
            let journey = square_route::journey_of(history, *v);
            assert_eq!(journey.last(), r.final_placement.get(v), "{v}");
        }
        let bare = compile(&p, &grid(Policy::Square)).unwrap();
        assert!(bare.placement_history.is_none());
    }

    #[test]
    fn out_of_qubits_is_reported() {
        let p = nested_program();
        let cfg = CompilerConfig::nisq(Policy::Lazy).with_arch(ArchSpec::Grid {
            width: 2,
            height: 1,
        });
        let err = compile(&p, &cfg).unwrap_err();
        match err {
            CompileError::OutOfQubits {
                policy,
                budget,
                module,
                min_feasible,
                ..
            } => {
                assert_eq!(policy, Policy::Lazy);
                assert_eq!(budget, None);
                assert!(module.is_some(), "failure attributed to a module");
                assert_eq!(min_feasible, None, "unbudgeted failures have no min-N");
            }
            other => panic!("expected OutOfQubits, got {other}"),
        }
    }

    /// Three sequential garbage-producing calls: under Lazy all three
    /// frames stay live (peak 5: x, out + three garbage ancillas), but
    /// every frame is a textbook early-uncompute candidate, so
    /// `budget:4` must fit by evicting each settled frame before the
    /// next one's garbage would break the clamp invariant.
    fn sequential_garbage_program() -> Program {
        let mut b = ProgramBuilder::new();
        let child = b
            .module("child", 1, 1, |m| {
                let x = m.param(0);
                let a = m.ancilla(0);
                m.cx(x, a);
                m.store();
            })
            .unwrap();
        let main = b
            .module("main", 0, 2, |m| {
                let (x, out) = (m.ancilla(0), m.ancilla(1));
                m.x(x);
                m.call(child, &[x]);
                m.call(child, &[x]);
                m.call(child, &[x]);
                m.store();
                m.cx(x, out);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    /// Replays a virtual trace on booleans (with a classical-bit side
    /// channel for measurement feedback), panicking on any dirty free,
    /// and returns the final values of `outputs`.
    fn replay_bits(trace: &[TraceOp], outputs: &[VirtId]) -> Vec<bool> {
        use std::collections::HashMap;
        fn apply_gate(g: &Gate<VirtId>, bits: &mut HashMap<VirtId, bool>) {
            let get = |q: &VirtId| bits[q];
            match g {
                Gate::X { target } => *bits.get_mut(target).unwrap() ^= true,
                Gate::Cx { control, target } => {
                    if get(control) {
                        *bits.get_mut(target).unwrap() ^= true;
                    }
                }
                Gate::Ccx { c0, c1, target } => {
                    if get(c0) && get(c1) {
                        *bits.get_mut(target).unwrap() ^= true;
                    }
                }
                Gate::Swap { a, b } => {
                    let (va, vb) = (get(a), get(b));
                    bits.insert(*a, vb);
                    bits.insert(*b, va);
                }
                Gate::Mcx { controls, target } => {
                    if controls.iter().all(get) {
                        *bits.get_mut(target).unwrap() ^= true;
                    }
                }
            }
        }
        let mut bits: HashMap<VirtId, bool> = HashMap::new();
        let mut clbits: HashMap<ClbitId, bool> = HashMap::new();
        for op in trace {
            match op {
                TraceOp::Alloc(v) => {
                    bits.insert(*v, false);
                }
                TraceOp::Free(v) => {
                    let val = bits.remove(v).expect("free of dead qubit");
                    assert!(!val, "dirty ancilla freed");
                }
                TraceOp::Gate(g) => apply_gate(g, &mut bits),
                TraceOp::Measure { qubit, clbit } => {
                    clbits.insert(*clbit, bits[qubit]);
                }
                TraceOp::CondGate { clbit, gate } => {
                    if clbits[clbit] {
                        apply_gate(gate, &mut bits);
                    }
                }
            }
        }
        outputs.iter().map(|v| bits[v]).collect()
    }

    #[test]
    fn budget_evicts_garbage_to_fit_under_the_cap() {
        let p = sequential_garbage_program();
        let base = CompilerConfig::nisq(Policy::Lazy).with_arch(ArchSpec::Grid {
            width: 4,
            height: 4,
        });
        let unbudgeted = compile(&p, &base).unwrap();
        assert!(
            unbudgeted.peak_active >= 5,
            "lazy keeps all three garbage frames live (peak {})",
            unbudgeted.peak_active
        );
        let capped = compile(&p, &base.clone().with_budget(Some(4))).unwrap();
        assert!(
            capped.peak_active <= 4,
            "cap enforced: peak {} > 4",
            capped.peak_active
        );
        assert_eq!(capped.budget, Some(4));
        assert!(capped.recompute.early_uncomputed_frames >= 1);
        assert!(capped.recompute.early_uncompute_gates >= 1);
        // The entry's final sweep covers the early uncompute, so the
        // frame is recomputed (and recounted) mechanically.
        assert!(capped.recompute.recomputed_frames >= 1);
        // Early uncomputation is externally invisible: the decision
        // log is unchanged and the trace still replays cleanly to the
        // same outputs.
        assert_eq!(capped.decision_log, unbudgeted.decision_log);
        let vals = replay_bits(&capped.trace, &capped.entry_register);
        assert_eq!(
            vals,
            replay_bits(&unbudgeted.trace, &unbudgeted.entry_register)
        );
        let lowered = square_qir::lower_mcx(&p);
        let mut oracle = square_qir::RecordedDecisions::new(capped.decision_bools());
        let sem = square_qir::sem::run(&lowered, &[], &mut oracle).unwrap();
        assert!(oracle.in_sync());
        assert_eq!(sem.outputs, vals);
    }

    #[test]
    fn budget_reports_min_feasible_when_unsatisfiable() {
        let p = sequential_garbage_program();
        // Budget 2 cannot even hold the entry register plus one call.
        let cfg = CompilerConfig::nisq(Policy::Lazy)
            .with_arch(ArchSpec::Grid {
                width: 4,
                height: 4,
            })
            .with_budget(Some(2));
        match compile(&p, &cfg).unwrap_err() {
            CompileError::OutOfQubits {
                budget,
                min_feasible,
                ..
            } => {
                assert_eq!(budget, Some(2));
                let min = min_feasible.expect("budgeted failure reports min-N");
                assert!(min == 3, "min feasible should be 3, got {min}");
            }
            other => panic!("expected OutOfQubits, got {other}"),
        }
    }

    #[test]
    fn non_binding_budget_is_field_identical_to_base() {
        // A cap at machine capacity can never bind, and the CER clamp
        // resolves to the same (capacity, free) pair — so every field
        // except `budget` itself must be bit-identical to the base
        // policy, for all four bases.
        for p in [nested_program(), sequential_garbage_program()] {
            for policy in Policy::ALL {
                let cfg = grid(policy);
                let base = compile(&p, &cfg).unwrap();
                let capped = compile(&p, &cfg.clone().with_budget(Some(16))).unwrap();
                assert_eq!(base.gates, capped.gates, "{policy}");
                assert_eq!(base.swaps, capped.swaps, "{policy}");
                assert_eq!(base.depth, capped.depth, "{policy}");
                assert_eq!(base.qubits, capped.qubits, "{policy}");
                assert_eq!(base.peak_active, capped.peak_active, "{policy}");
                assert_eq!(base.aqv, capped.aqv, "{policy}");
                assert_eq!(base.decisions, capped.decisions, "{policy}");
                assert_eq!(base.decision_log, capped.decision_log, "{policy}");
                assert_eq!(base.trace, capped.trace, "{policy}");
                assert_eq!(capped.budget, Some(16));
                assert_eq!(base.recompute, capped.recompute, "{policy}: all zero");
                assert_eq!(capped.recompute.early_uncomputed_frames, 0);
            }
        }
    }

    /// A Toffoli-built AND tree: the child writes both ancillas with
    /// Ccx only, so its compute slice is MBU-eligible and the weighted
    /// cost model (Ccx = 6, measure + correction = 2) picks
    /// measure-and-correct over the unitary inverse.
    fn toffoli_program() -> Program {
        let mut b = ProgramBuilder::new();
        let child = b
            .module("and2", 3, 2, |m| {
                let (x, y, out) = (m.param(0), m.param(1), m.param(2));
                let (a, t) = (m.ancilla(0), m.ancilla(1));
                m.ccx(x, y, a);
                m.ccx(x, a, t);
                m.store();
                m.cx(t, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 4, |m| {
                let (x, y, t, out) = (m.ancilla(0), m.ancilla(1), m.ancilla(2), m.ancilla(3));
                m.x(x);
                m.x(y);
                m.call(child, &[x, y, t]);
                m.store();
                m.cx(t, out);
            })
            .unwrap();
        b.finish(main).unwrap()
    }

    #[test]
    fn mbu_reclaims_toffoli_built_frames_cheaper() {
        let p = toffoli_program();
        let off = compile(&p, &grid(Policy::Eager)).unwrap();
        let on = compile(&p, &grid(Policy::Eager).with_mbu(true)).unwrap();
        assert!(!off.mbu && on.mbu);
        assert_eq!(off.mbu_stats, MbuStats::default());
        assert!(on.mbu_stats.mbu_frames >= 1);
        assert_eq!(on.mbu_stats.measurements, 2, "both written ancillas");
        assert_eq!(on.mbu_stats.cond_corrections, 2);
        assert!(
            on.mbu_stats.unitary_gates_avoided > on.mbu_stats.mbu_gates,
            "MBU only chosen when strictly cheaper: {} vs {}",
            on.mbu_stats.unitary_gates_avoided,
            on.mbu_stats.mbu_gates
        );
        assert!(on
            .decision_log
            .iter()
            .any(|d| d.lowering == ReclaimLowering::Mbu));
        assert!(
            on.depth < off.depth,
            "measure-and-correct beats Toffoli inverses: {} vs {}",
            on.depth,
            off.depth
        );
        // Both compiles land the same outputs, and the reference
        // semantics (which always uncomputes unitarily) agrees when
        // fed the MBU run's decision log — the lowering is
        // output-invisible.
        let vals_on = replay_bits(&on.trace, &on.entry_register);
        let vals_off = replay_bits(&off.trace, &off.entry_register);
        assert_eq!(vals_on, vals_off);
        assert!(vals_on[3], "AND(1,1) stored");
        let lowered = square_qir::lower_mcx(&p);
        let mut oracle = square_qir::RecordedDecisions::new(on.decision_bools());
        let sem = square_qir::sem::run(&lowered, &[], &mut oracle).unwrap();
        assert!(oracle.in_sync());
        assert_eq!(sem.outputs, vals_on);
    }

    #[test]
    fn mbu_never_engages_without_inner_reclaims() {
        // Lazy reclaims only the entry frame, and MBU is gated to
        // depth > 0 (the entry "ancillas" are the I/O register) — so
        // an MBU-enabled Lazy compile must be field-identical to the
        // baseline apart from the report flag.
        let p = nested_program();
        let base = compile(&p, &grid(Policy::Lazy)).unwrap();
        let on = compile(&p, &grid(Policy::Lazy).with_mbu(true)).unwrap();
        assert_eq!(base.gates, on.gates);
        assert_eq!(base.swaps, on.swaps);
        assert_eq!(base.depth, on.depth);
        assert_eq!(base.qubits, on.qubits);
        assert_eq!(base.aqv, on.aqv);
        assert_eq!(base.decisions, on.decisions);
        assert_eq!(base.decision_log, on.decision_log);
        assert_eq!(base.trace, on.trace);
        assert!(!base.mbu && on.mbu);
        assert_eq!(on.mbu_stats, MbuStats::default());
    }

    #[test]
    fn mbu_weighted_compare_keeps_cheap_frames_unitary() {
        // Under Eager, the innermost child's compute slice is a single
        // CNOT (cx = 1 beats measure + correction = 2: stays unitary),
        // while the parent's slice contains the child's whole
        // compute/uncompute round trip (three CNOTs) — there MBU's two
        // events win, flattening the recursive uncompute.
        let p = nested_program();
        let on = compile(&p, &grid(Policy::Eager).with_mbu(true)).unwrap();
        let child = on.decision_log.iter().find(|d| d.depth == 2).unwrap();
        assert_eq!(child.lowering, ReclaimLowering::Unitary);
        let parent = on.decision_log.iter().find(|d| d.depth == 1).unwrap();
        assert_eq!(parent.lowering, ReclaimLowering::Mbu);
        let off = compile(&p, &grid(Policy::Eager)).unwrap();
        assert!(on.gates < off.gates, "{} vs {}", on.gates, off.gates);
        assert_eq!(
            replay_bits(&on.trace, &on.entry_register),
            replay_bits(&off.trace, &off.entry_register)
        );
    }

    #[test]
    fn inputs_prepend_x_gates() {
        let p = nested_program();
        let r0 = compile(&p, &grid(Policy::Eager)).unwrap();
        let r1 = compile_with_inputs(&p, &[true, true], &grid(Policy::Eager)).unwrap();
        assert_eq!(r1.gates, r0.gates + 2);
    }

    #[test]
    fn square_policy_reclaims_under_pressure() {
        // A machine barely large enough forces CER's pressure path.
        let p = nested_program();
        let cfg = CompilerConfig::nisq(Policy::Square).with_arch(ArchSpec::Grid {
            width: 3,
            height: 2,
        });
        let r = compile(&p, &cfg).unwrap();
        assert!(r.decisions.forced > 0 || r.decisions.reclaimed > 0);
    }

    #[test]
    fn ft_target_uses_braids_not_swaps() {
        let p = nested_program();
        let cfg = CompilerConfig::ft(Policy::Square).with_arch(ArchSpec::Grid {
            width: 4,
            height: 4,
        });
        let r = compile(&p, &cfg).unwrap();
        assert_eq!(r.swaps, 0);
        assert!(r.stats.braids > 0);
    }
}

//! The ancilla heap: an arena-backed free list of reclaimed physical
//! qubits.
//!
//! Prior work (and our Eager/Lazy baselines) treats all qubits as
//! identical and keeps a LIFO pool (Section III-A). SQUARE instead
//! scans the pool for the best-scoring qubit under the LAA metric; the
//! heap therefore supports both disciplines.
//!
//! # Representation
//!
//! The heap is two structures that stay in lock-step:
//!
//! * an **arena** of per-qubit cells, indexed directly by [`PhysId`],
//!   holding each slot's pool position and a monotonically increasing
//!   *generation* counter; and
//! * a dense **free list** (`pool`) of the currently pooled qubits, in
//!   exactly the order the historical `Vec`-scan heap maintained
//!   (push appends, removal is `swap_remove`), so the LAA tie-breaking
//!   behaviour — and therefore compiled circuits — are bit-identical
//!   to the pre-arena implementation.
//!
//! The arena makes every bookkeeping operation O(1): release into the
//! pool, LIFO allocation, membership queries, handle-based removal,
//! and routing relocation (all previously linear scans). Only the LAA
//! best-candidate *scoring* walk remains linear in pool size — it
//! evaluates an arbitrary caller-supplied metric per candidate — and
//! it now runs over a dense cache-friendly vector.
//!
//! # Generation-tagged handles
//!
//! [`AncillaHeap::push`] mints a [`HeapHandle`] stamped with the
//! slot's current generation; taking the slot (by handle or by scan)
//! bumps the generation, so a stale handle can never alias a later
//! resident of the same slot. Double releases and stale takes are
//! caught in O(1) and reported as [`HeapError`]s in every build
//! profile (the historical heap only `debug_assert`ed).

use std::fmt;

use square_arch::PhysId;

/// Pool position marker for a slot that is not currently pooled.
const NOT_POOLED: u32 = u32::MAX;

/// One arena cell: where the qubit sits in the free list (if pooled)
/// and how many times the slot has been vacated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cell {
    /// Index into `pool`, or [`NOT_POOLED`].
    pos: u32,
    /// Bumped every time the slot leaves the pool; stale handles from
    /// earlier residencies fail their generation check.
    generation: u32,
}

impl Cell {
    fn vacant() -> Self {
        Cell {
            pos: NOT_POOLED,
            generation: 0,
        }
    }
}

/// A generation-tagged reference to one pooled qubit, minted by
/// [`AncillaHeap::push`] and redeemed by [`AncillaHeap::take`].
///
/// A handle is invalidated the moment its slot leaves the pool (by
/// any path: [`AncillaHeap::take`], [`AncillaHeap::take_best`], or
/// [`AncillaHeap::pop_lifo`]); redeeming it afterwards fails with
/// [`HeapError::StaleHandle`] instead of silently aliasing whatever
/// occupies the slot next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeapHandle {
    /// The physical slot this handle refers to.
    pub phys: PhysId,
    generation: u32,
}

impl HeapHandle {
    /// The generation this handle was minted under (diagnostics).
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

/// Misuse of the heap caught by the arena bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The qubit is already pooled: a double release.
    DoubleRelease(PhysId),
    /// The handle's slot was re-allocated (or never pooled) since the
    /// handle was minted.
    StaleHandle(PhysId),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::DoubleRelease(p) => write!(f, "double release of pooled qubit {p}"),
            HeapError::StaleHandle(p) => write!(f, "stale heap handle for qubit {p}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Pool of reclaimed physical qubits awaiting reuse.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AncillaHeap {
    cells: Vec<Cell>,
    pool: Vec<PhysId>,
}

impl AncillaHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty heap with arena cells pre-sized for a machine of
    /// `capacity` qubits (avoids growth reallocation mid-compile).
    pub fn with_capacity(capacity: usize) -> Self {
        AncillaHeap {
            cells: vec![Cell::vacant(); capacity],
            pool: Vec::with_capacity(capacity),
        }
    }

    /// Number of pooled qubits.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when no reclaimed qubits are pooled.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// True when `p` is currently pooled. O(1).
    pub fn contains(&self, p: PhysId) -> bool {
        self.cells
            .get(p.0 as usize)
            .is_some_and(|c| c.pos != NOT_POOLED)
    }

    fn cell_mut(&mut self, p: PhysId) -> &mut Cell {
        let idx = p.0 as usize;
        if idx >= self.cells.len() {
            self.cells.resize(idx + 1, Cell::vacant());
        }
        &mut self.cells[idx]
    }

    /// Removes `pool[pos]` in O(1) (`swap_remove`), fixing the moved
    /// element's arena back-pointer and bumping the vacated slot's
    /// generation. Preserves exactly the pool-order evolution of the
    /// historical `Vec::swap_remove` heap.
    fn remove_at(&mut self, pos: u32) -> PhysId {
        let p = self.pool.swap_remove(pos as usize);
        if let Some(&moved) = self.pool.get(pos as usize) {
            self.cells[moved.0 as usize].pos = pos;
        }
        let cell = &mut self.cells[p.0 as usize];
        cell.pos = NOT_POOLED;
        cell.generation = cell.generation.wrapping_add(1);
        p
    }

    /// Returns a reclaimed qubit to the pool, minting a handle for it.
    ///
    /// # Errors
    ///
    /// [`HeapError::DoubleRelease`] when `p` is already pooled.
    pub fn try_push(&mut self, p: PhysId) -> Result<HeapHandle, HeapError> {
        let pos = self.pool.len() as u32;
        let cell = self.cell_mut(p);
        if cell.pos != NOT_POOLED {
            return Err(HeapError::DoubleRelease(p));
        }
        cell.pos = pos;
        let generation = cell.generation;
        self.pool.push(p);
        Ok(HeapHandle {
            phys: p,
            generation,
        })
    }

    /// Returns a reclaimed qubit to the pool.
    ///
    /// # Panics
    ///
    /// On a double release — a compiler-internal invariant violation
    /// (the historical heap only caught this in debug builds).
    pub fn push(&mut self, p: PhysId) -> HeapHandle {
        self.try_push(p).expect("ancilla heap")
    }

    /// Redeems a handle: removes its qubit from the pool in O(1).
    ///
    /// # Errors
    ///
    /// [`HeapError::StaleHandle`] when the slot left the pool since
    /// the handle was minted (generation mismatch) or was never
    /// pooled.
    pub fn take(&mut self, handle: HeapHandle) -> Result<PhysId, HeapError> {
        let cell = self
            .cells
            .get(handle.phys.0 as usize)
            .copied()
            .unwrap_or_else(Cell::vacant);
        if cell.pos == NOT_POOLED || cell.generation != handle.generation {
            return Err(HeapError::StaleHandle(handle.phys));
        }
        Ok(self.remove_at(cell.pos))
    }

    /// The current handle for a pooled qubit, if pooled.
    pub fn handle_of(&self, p: PhysId) -> Option<HeapHandle> {
        let cell = self.cells.get(p.0 as usize)?;
        (cell.pos != NOT_POOLED).then_some(HeapHandle {
            phys: p,
            generation: cell.generation,
        })
    }

    /// Pops the most recently reclaimed qubit (the LIFO discipline of
    /// locality-blind allocators). O(1).
    pub fn pop_lifo(&mut self) -> Option<PhysId> {
        let last = self.pool.len().checked_sub(1)?;
        Some(self.remove_at(last as u32))
    }

    /// Removes and returns the qubit minimizing `score`; `None` on an
    /// empty heap. Ties break toward the most recently freed qubit.
    pub fn take_best(&mut self, mut score: impl FnMut(PhysId) -> f64) -> Option<PhysId> {
        if self.pool.is_empty() {
            return None;
        }
        let mut best_i = 0;
        let mut best_s = f64::INFINITY;
        for (i, &p) in self.pool.iter().enumerate() {
            let s = score(p);
            if s <= best_s {
                best_s = s;
                best_i = i;
            }
        }
        Some(self.remove_at(best_i as u32))
    }

    /// Peeks the best-scoring qubit without removing it, returning a
    /// handle redeemable in O(1) via [`AncillaHeap::take`].
    pub fn peek_best(&self, mut score: impl FnMut(PhysId) -> f64) -> Option<(HeapHandle, f64)> {
        self.pool
            .iter()
            .map(|&p| (p, score(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(p, s)| {
                let handle = self.handle_of(p).expect("pooled qubit has a handle");
                (handle, s)
            })
    }

    /// Iterates the pooled qubits (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = PhysId> + '_ {
        self.pool.iter().copied()
    }

    /// Renames a pooled slot after a routing swap relocated its |0⟩
    /// (see `Machine::drain_relocations`). No-op if `from` is not
    /// pooled (the free cell was not ours — e.g. a never-used slot).
    /// O(1); the renamed qubit keeps its pool position, so scan order
    /// matches the historical in-place rename.
    pub fn relocate(&mut self, from: PhysId, to: PhysId) {
        let Some(from_cell) = self.cells.get(from.0 as usize).copied() else {
            return;
        };
        if from_cell.pos == NOT_POOLED {
            return;
        }
        debug_assert!(!self.contains(to), "relocation target {to} already pooled");
        let pos = from_cell.pos;
        // Vacate `from` (bumping its generation: handles to the old
        // name must not resolve) and seat `to` at the same position.
        let cell = &mut self.cells[from.0 as usize];
        cell.pos = NOT_POOLED;
        cell.generation = cell.generation.wrapping_add(1);
        self.cell_mut(to).pos = pos;
        self.pool[pos as usize] = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut h = AncillaHeap::new();
        h.push(PhysId(1));
        h.push(PhysId(2));
        h.push(PhysId(3));
        assert_eq!(h.pop_lifo(), Some(PhysId(3)));
        assert_eq!(h.pop_lifo(), Some(PhysId(2)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn take_best_minimizes_score() {
        let mut h = AncillaHeap::new();
        for i in 0..5 {
            h.push(PhysId(i));
        }
        // Score = distance from 3.
        let got = h.take_best(|p| (p.0 as f64 - 3.0).abs()).unwrap();
        assert_eq!(got, PhysId(3));
        assert_eq!(h.len(), 4);
        assert!(!h.iter().any(|p| p == PhysId(3)));
        assert!(!h.contains(PhysId(3)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut h = AncillaHeap::new();
        h.push(PhysId(7));
        let (handle, s) = h.peek_best(|p| p.0 as f64).unwrap();
        assert_eq!(handle.phys, PhysId(7));
        assert_eq!(s, 7.0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn peek_handle_redeems_in_o1() {
        let mut h = AncillaHeap::new();
        for i in 0..4 {
            h.push(PhysId(i));
        }
        let (handle, _) = h.peek_best(|p| (p.0 as f64 - 2.0).abs()).unwrap();
        assert_eq!(h.take(handle), Ok(PhysId(2)));
        assert_eq!(h.len(), 3);
        // Second redemption of the same handle is stale.
        assert_eq!(h.take(handle), Err(HeapError::StaleHandle(PhysId(2))));
    }

    #[test]
    fn double_release_is_caught() {
        let mut h = AncillaHeap::new();
        h.push(PhysId(5));
        assert_eq!(
            h.try_push(PhysId(5)),
            Err(HeapError::DoubleRelease(PhysId(5)))
        );
        // Release → take → release is fine.
        assert_eq!(h.pop_lifo(), Some(PhysId(5)));
        assert!(h.try_push(PhysId(5)).is_ok());
    }

    #[test]
    fn generations_prevent_cross_residency_aliasing() {
        let mut h = AncillaHeap::new();
        let first = h.push(PhysId(9));
        assert_eq!(h.pop_lifo(), Some(PhysId(9)));
        // Same slot, next residency: the old handle must not alias it.
        let second = h.push(PhysId(9));
        assert_ne!(first.generation(), second.generation());
        assert_eq!(h.take(first), Err(HeapError::StaleHandle(PhysId(9))));
        assert_eq!(h.take(second), Ok(PhysId(9)));
    }

    #[test]
    fn relocate_renames_pooled_slot() {
        let mut h = AncillaHeap::new();
        h.push(PhysId(3));
        h.relocate(PhysId(3), PhysId(9));
        assert!(h.contains(PhysId(9)));
        assert!(!h.contains(PhysId(3)));
        assert_eq!(h.pop_lifo(), Some(PhysId(9)));
        // Unknown source is a no-op.
        h.push(PhysId(1));
        h.relocate(PhysId(5), PhysId(6));
        assert_eq!(h.pop_lifo(), Some(PhysId(1)));
    }

    #[test]
    fn relocate_invalidates_old_name_handles() {
        let mut h = AncillaHeap::new();
        let handle = h.push(PhysId(3));
        h.relocate(PhysId(3), PhysId(9));
        assert_eq!(h.take(handle), Err(HeapError::StaleHandle(PhysId(3))));
        let renamed = h.handle_of(PhysId(9)).unwrap();
        assert_eq!(h.take(renamed), Ok(PhysId(9)));
        assert!(h.is_empty());
    }

    #[test]
    fn empty_heap_yields_none() {
        let mut h = AncillaHeap::new();
        assert!(h.pop_lifo().is_none());
        assert!(h.take_best(|_| 0.0).is_none());
        assert!(h.peek_best(|_| 0.0).is_none());
        assert!(h.is_empty());
    }

    #[test]
    fn pool_order_matches_historical_swap_remove_evolution() {
        // Reference model: the pre-arena Vec heap. After removing an
        // interior element, the last element takes its place; scan
        // order (and thus LAA tie-breaking) must match.
        let mut h = AncillaHeap::new();
        for i in 0..5 {
            h.push(PhysId(i));
        }
        // Remove PhysId(1): historical swap_remove puts 4 at index 1.
        let got = h.take_best(|p| if p.0 == 1 { 0.0 } else { 1.0 }).unwrap();
        assert_eq!(got, PhysId(1));
        let order: Vec<u32> = h.iter().map(|p| p.0).collect();
        assert_eq!(order, vec![0, 4, 2, 3]);
        // Ties break toward the later scan position.
        let tied = h.take_best(|_| 7.0).unwrap();
        assert_eq!(tied, PhysId(3));
    }

    #[test]
    fn with_capacity_presizes_arena() {
        let mut h = AncillaHeap::with_capacity(16);
        assert!(h.is_empty());
        h.push(PhysId(15));
        assert!(h.contains(PhysId(15)));
        // Beyond the pre-sized arena still works (grows on demand).
        h.push(PhysId(40));
        assert!(h.contains(PhysId(40)));
    }
}

//! The ancilla heap: the pool of reclaimed physical qubits.
//!
//! Prior work (and our Eager/Lazy baselines) treats all qubits as
//! identical and keeps a LIFO pool (Section III-A). SQUARE instead
//! scans the pool for the best-scoring qubit under the LAA metric; the
//! heap therefore supports both disciplines.

use square_arch::PhysId;

/// Pool of reclaimed physical qubits awaiting reuse.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AncillaHeap {
    slots: Vec<PhysId>,
}

impl AncillaHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled qubits.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no reclaimed qubits are pooled.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns a reclaimed qubit to the pool.
    pub fn push(&mut self, p: PhysId) {
        debug_assert!(!self.slots.contains(&p), "double free of {p}");
        self.slots.push(p);
    }

    /// Pops the most recently reclaimed qubit (the LIFO discipline of
    /// locality-blind allocators).
    pub fn pop_lifo(&mut self) -> Option<PhysId> {
        self.slots.pop()
    }

    /// Removes and returns the qubit minimizing `score`; `None` on an
    /// empty heap. Ties break toward the most recently freed qubit.
    pub fn take_best(&mut self, mut score: impl FnMut(PhysId) -> f64) -> Option<PhysId> {
        if self.slots.is_empty() {
            return None;
        }
        let mut best_i = 0;
        let mut best_s = f64::INFINITY;
        for (i, &p) in self.slots.iter().enumerate() {
            let s = score(p);
            if s <= best_s {
                best_s = s;
                best_i = i;
            }
        }
        Some(self.slots.swap_remove(best_i))
    }

    /// Peeks the best-scoring qubit without removing it.
    pub fn peek_best(&self, mut score: impl FnMut(PhysId) -> f64) -> Option<(PhysId, f64)> {
        self.slots
            .iter()
            .map(|&p| (p, score(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Iterates the pooled qubits (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = PhysId> + '_ {
        self.slots.iter().copied()
    }

    /// Renames a pooled slot after a routing swap relocated its |0⟩
    /// (see `Machine::drain_relocations`). No-op if `from` is not
    /// pooled (the free cell was not ours — e.g. a never-used slot).
    pub fn relocate(&mut self, from: PhysId, to: PhysId) {
        if let Some(slot) = self.slots.iter_mut().find(|p| **p == from) {
            *slot = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut h = AncillaHeap::new();
        h.push(PhysId(1));
        h.push(PhysId(2));
        h.push(PhysId(3));
        assert_eq!(h.pop_lifo(), Some(PhysId(3)));
        assert_eq!(h.pop_lifo(), Some(PhysId(2)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn take_best_minimizes_score() {
        let mut h = AncillaHeap::new();
        for i in 0..5 {
            h.push(PhysId(i));
        }
        // Score = distance from 3.
        let got = h.take_best(|p| (p.0 as f64 - 3.0).abs()).unwrap();
        assert_eq!(got, PhysId(3));
        assert_eq!(h.len(), 4);
        assert!(!h.iter().any(|p| p == PhysId(3)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut h = AncillaHeap::new();
        h.push(PhysId(7));
        let (p, s) = h.peek_best(|p| p.0 as f64).unwrap();
        assert_eq!(p, PhysId(7));
        assert_eq!(s, 7.0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn relocate_renames_pooled_slot() {
        let mut h = AncillaHeap::new();
        h.push(PhysId(3));
        h.relocate(PhysId(3), PhysId(9));
        assert_eq!(h.pop_lifo(), Some(PhysId(9)));
        // Unknown source is a no-op.
        h.push(PhysId(1));
        h.relocate(PhysId(5), PhysId(6));
        assert_eq!(h.pop_lifo(), Some(PhysId(1)));
    }

    #[test]
    fn empty_heap_yields_none() {
        let mut h = AncillaHeap::new();
        assert!(h.pop_lifo().is_none());
        assert!(h.take_best(|_| 0.0).is_none());
        assert!(h.peek_best(|_| 0.0).is_none());
        assert!(h.is_empty());
    }
}

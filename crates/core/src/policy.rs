//! Ancilla-reuse policies (Table I of the paper).

use std::fmt;

/// Which allocation/reclamation strategy the compiler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Reclaim qubits whenever possible: every frame uncomputes. Pays
    /// *recursive recomputation* — an ℓ-deep call tree re-executes its
    /// leaves up to 2^ℓ times (Section III, Baseline 1). Allocation is
    /// the locality-blind LIFO heap of prior work.
    Eager,
    /// Reclaim only at the top level of the call graph: children leave
    /// garbage that the entry's single uncompute sweeps. Pays *qubit
    /// reservation* — garbage blocks reuse until program end
    /// (Section III, Baseline 2). LIFO allocation.
    Lazy,
    /// Full SQUARE: locality-aware allocation + cost-effective
    /// reclamation (Section III-A).
    Square,
    /// Locality-aware allocation with Eager reclamation — isolates the
    /// allocation heuristic's contribution ("SQUARE (LAA only)" in
    /// Figs. 8a/9/10).
    SquareLaaOnly,
}

impl Policy {
    /// All policies, in the order the paper's figures present them.
    pub const ALL: [Policy; 4] = [
        Policy::Lazy,
        Policy::Eager,
        Policy::SquareLaaOnly,
        Policy::Square,
    ];

    /// The three-policy subset used by Fig. 8b/8c.
    pub const BASELINE_THREE: [Policy; 3] = [Policy::Lazy, Policy::Eager, Policy::Square];

    /// True if allocation uses the locality-aware heuristic.
    pub fn uses_laa(&self) -> bool {
        matches!(self, Policy::Square | Policy::SquareLaaOnly)
    }

    /// True if reclamation uses the CER cost model (otherwise the
    /// decision is fixed by the policy).
    pub fn uses_cer(&self) -> bool {
        matches!(self, Policy::Square)
    }

    /// Parses a CLI-style policy name, case-insensitively: `lazy`,
    /// `eager`, `square`, and `laa` / `square-laa` for
    /// [`Policy::SquareLaaOnly`].
    pub fn parse(name: &str) -> Option<Policy> {
        match name.to_ascii_lowercase().as_str() {
            "lazy" => Some(Policy::Lazy),
            "eager" => Some(Policy::Eager),
            "square" => Some(Policy::Square),
            "laa" | "square-laa" | "square_laa" => Some(Policy::SquareLaaOnly),
            _ => None,
        }
    }

    /// The CLI name accepted back by [`Policy::parse`].
    pub fn cli_name(&self) -> &'static str {
        match self {
            Policy::Eager => "eager",
            Policy::Lazy => "lazy",
            Policy::Square => "square",
            Policy::SquareLaaOnly => "laa",
        }
    }

    /// Report label, matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Eager => "EAGER",
            Policy::Lazy => "LAZY",
            Policy::Square => "SQUARE",
            Policy::SquareLaaOnly => "SQUARE(LAA only)",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A base [`Policy`] plus an optional qubit budget — the fifth policy
/// dimension. This is what CLI front ends parse: the spec grammar is a
/// comma-separated combination of at most one base-policy name and at
/// most one `budget:N` clause, in either order:
///
/// * `square` — the base policy, unbudgeted.
/// * `square,budget:64` — square under a 64-qubit hard width cap.
/// * `budget:64` — the base defaults to `square`.
/// * `lazy,budget:inf` — explicit "no cap" (identical to bare `lazy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BudgetPolicy {
    /// The underlying reclamation/allocation policy.
    pub base: Policy,
    /// Hard cap on simultaneously live qubits; `None` means ∞.
    pub budget: Option<usize>,
}

impl BudgetPolicy {
    /// Wraps a bare policy with no cap.
    pub fn unbudgeted(base: Policy) -> BudgetPolicy {
        BudgetPolicy { base, budget: None }
    }

    /// Parses a policy spec (see the type docs for the grammar).
    /// Case-insensitive; `budget:inf` and `budget:∞` mean no cap.
    pub fn parse(spec: &str) -> Option<BudgetPolicy> {
        let mut base: Option<Policy> = None;
        let mut budget: Option<Option<usize>> = None;
        for part in spec.split(',') {
            let part = part.trim().to_ascii_lowercase();
            if let Some(value) = part.strip_prefix("budget:") {
                if budget.is_some() {
                    return None;
                }
                budget = Some(match value {
                    "inf" | "∞" => None,
                    n => Some(n.parse::<usize>().ok()?),
                });
            } else {
                if base.is_some() {
                    return None;
                }
                base = Some(Policy::parse(&part)?);
            }
        }
        if base.is_none() && budget.is_none() {
            return None;
        }
        Some(BudgetPolicy {
            base: base.unwrap_or(Policy::Square),
            budget: budget.flatten(),
        })
    }

    /// The CLI spelling accepted back by [`BudgetPolicy::parse`].
    pub fn cli_name(&self) -> String {
        match self.budget {
            None => self.base.cli_name().to_string(),
            Some(n) => format!("{},budget:{n}", self.base.cli_name()),
        }
    }
}

impl fmt::Display for BudgetPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.base.label())?;
        if let Some(n) = self.budget {
            write!(f, " ·budget:{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_match_table_one() {
        assert!(!Policy::Eager.uses_laa());
        assert!(!Policy::Lazy.uses_laa());
        assert!(Policy::Square.uses_laa());
        assert!(Policy::SquareLaaOnly.uses_laa());
        assert!(Policy::Square.uses_cer());
        assert!(!Policy::SquareLaaOnly.uses_cer());
    }

    #[test]
    fn parse_round_trips_cli_names() {
        for p in Policy::ALL {
            assert_eq!(Policy::parse(p.cli_name()), Some(p));
            assert_eq!(Policy::parse(&p.cli_name().to_uppercase()), Some(p));
        }
        assert_eq!(Policy::parse("nonsense"), None);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = Policy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn budget_policy_parses_the_spec_grammar() {
        assert_eq!(
            BudgetPolicy::parse("square"),
            Some(BudgetPolicy::unbudgeted(Policy::Square))
        );
        assert_eq!(
            BudgetPolicy::parse("square,budget:64"),
            Some(BudgetPolicy {
                base: Policy::Square,
                budget: Some(64),
            })
        );
        // Order-insensitive, case-insensitive, base defaults to square.
        assert_eq!(
            BudgetPolicy::parse("BUDGET:7 , lazy"),
            Some(BudgetPolicy {
                base: Policy::Lazy,
                budget: Some(7),
            })
        );
        assert_eq!(
            BudgetPolicy::parse("budget:64"),
            Some(BudgetPolicy {
                base: Policy::Square,
                budget: Some(64),
            })
        );
        // Explicit "no cap".
        assert_eq!(
            BudgetPolicy::parse("eager,budget:inf"),
            Some(BudgetPolicy::unbudgeted(Policy::Eager))
        );
        assert_eq!(
            BudgetPolicy::parse("budget:∞"),
            Some(BudgetPolicy::unbudgeted(Policy::Square))
        );
        // Rejections: empty, duplicates, junk.
        assert_eq!(BudgetPolicy::parse(""), None);
        assert_eq!(BudgetPolicy::parse("square,lazy"), None);
        assert_eq!(BudgetPolicy::parse("budget:3,budget:4"), None);
        assert_eq!(BudgetPolicy::parse("budget:abc"), None);
        assert_eq!(BudgetPolicy::parse("nonsense,budget:3"), None);
    }

    #[test]
    fn budget_policy_cli_name_round_trips() {
        let specs = [
            BudgetPolicy::unbudgeted(Policy::Lazy),
            BudgetPolicy {
                base: Policy::Square,
                budget: Some(55),
            },
        ];
        for s in specs {
            assert_eq!(BudgetPolicy::parse(&s.cli_name()), Some(s));
        }
    }
}

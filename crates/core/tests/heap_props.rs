//! Property tests for the arena-backed ancilla heap: a byte script
//! drives the heap and a naive reference model (the historical
//! `Vec` + `swap_remove` pool) in lock-step, checking that
//!
//! * pool content and *order* match the model exactly (LAA
//!   tie-breaking depends on scan order, so this is what guarantees
//!   bit-identical compiled circuits);
//! * double releases are always rejected and never corrupt state;
//! * handles never alias across generations: once a slot leaves the
//!   pool, every handle minted for its earlier residency is dead,
//!   even after the same qubit is pushed again;
//! * alloc/release round-trips preserve the free count.

use proptest::prelude::*;
use square_arch::PhysId;
use square_core::{AncillaHeap, HeapError, HeapHandle};

/// Reference model: the historical linear-scan pool.
#[derive(Default)]
struct ModelPool {
    slots: Vec<PhysId>,
}

impl ModelPool {
    fn push(&mut self, p: PhysId) -> bool {
        if self.slots.contains(&p) {
            return false;
        }
        self.slots.push(p);
        true
    }

    fn pop_lifo(&mut self) -> Option<PhysId> {
        self.slots.pop()
    }

    fn take_best(&mut self, mut score: impl FnMut(PhysId) -> f64) -> Option<PhysId> {
        if self.slots.is_empty() {
            return None;
        }
        let mut best_i = 0;
        let mut best_s = f64::INFINITY;
        for (i, &p) in self.slots.iter().enumerate() {
            let s = score(p);
            if s <= best_s {
                best_s = s;
                best_i = i;
            }
        }
        Some(self.slots.swap_remove(best_i))
    }

    fn relocate(&mut self, from: PhysId, to: PhysId) {
        if let Some(slot) = self.slots.iter_mut().find(|p| **p == from) {
            *slot = to;
        }
    }
}

const UNIVERSE: u32 = 24;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn heap_matches_reference_model(
        script in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>()),
            0..300,
        ),
    ) {
        let mut heap = AncillaHeap::with_capacity(8);
        let mut model = ModelPool::default();
        // Every handle ever minted, with whether the model says its
        // residency has ended (it must then be stale).
        let mut minted: Vec<HeapHandle> = Vec::new();
        let mut round_trips = 0u64;

        for (op, x, y) in script {
            match op % 5 {
                // Push (possibly a double release).
                0 => {
                    let p = PhysId(u32::from(x) % UNIVERSE);
                    let model_ok = model.push(p);
                    match heap.try_push(p) {
                        Ok(handle) => {
                            prop_assert!(model_ok, "heap accepted a double release of {p}");
                            minted.push(handle);
                        }
                        Err(e) => {
                            prop_assert!(!model_ok, "heap rejected a legal push: {e}");
                            prop_assert_eq!(e, HeapError::DoubleRelease(p));
                        }
                    }
                }
                // LIFO pop.
                1 => {
                    let got = heap.pop_lifo();
                    prop_assert_eq!(got, model.pop_lifo());
                    if got.is_some() {
                        round_trips += 1;
                    }
                }
                // Scored removal (a pseudo-random but deterministic
                // metric; exercises tie-breaking when m is small).
                2 => {
                    let a = u64::from(x) | 1;
                    let m = u64::from(y % 4) + 1;
                    let score = |p: PhysId| ((u64::from(p.0) * a) % m) as f64;
                    let got = heap.take_best(score);
                    prop_assert_eq!(got, model.take_best(score));
                    if got.is_some() {
                        round_trips += 1;
                    }
                }
                // Redeem an arbitrary previously-minted handle: it
                // must succeed exactly when its slot is still in its
                // original residency (i.e. the model still pools the
                // qubit AND no newer handle exists for it).
                3 => {
                    if minted.is_empty() {
                        continue;
                    }
                    let handle = minted[usize::from(x) % minted.len()];
                    let newest_for_phys = minted
                        .iter()
                        .rfind(|h| h.phys == handle.phys)
                        .copied()
                        .expect("handle exists");
                    let current = model.slots.contains(&handle.phys)
                        && handle == newest_for_phys;
                    match heap.take(handle) {
                        Ok(p) => {
                            prop_assert!(current, "stale handle {handle:?} redeemed");
                            prop_assert_eq!(p, handle.phys);
                            let model_got = model.take_best(
                                |q| if q == p { 0.0 } else { f64::INFINITY },
                            );
                            prop_assert_eq!(model_got, Some(p));
                            round_trips += 1;
                        }
                        Err(e) => {
                            prop_assert!(!current, "live handle {handle:?} rejected: {e}");
                            prop_assert_eq!(e, HeapError::StaleHandle(handle.phys));
                        }
                    }
                }
                // Routing relocation: rename a pooled slot.
                _ => {
                    let from = PhysId(u32::from(x) % UNIVERSE);
                    let to = PhysId(UNIVERSE + (u32::from(y) % UNIVERSE));
                    // Model precondition (mirrors the executor):
                    // relocation targets are cells that are not
                    // pooled; our `to` universe is disjoint unless a
                    // previous relocation moved something there.
                    if model.slots.contains(&to) {
                        continue;
                    }
                    model.relocate(from, to);
                    heap.relocate(from, to);
                }
            }

            // Lock-step invariants after every operation.
            prop_assert_eq!(heap.len(), model.slots.len(), "free count diverged");
            let heap_order: Vec<PhysId> = heap.iter().collect();
            prop_assert_eq!(&heap_order, &model.slots, "pool order diverged");
            for &p in &model.slots {
                prop_assert!(heap.contains(p));
            }
        }
        // Round-trip conservation: every successful removal paired
        // with its push leaves the final free count consistent.
        let pushes = minted.len() as u64;
        prop_assert_eq!(heap.len() as u64 + round_trips, pushes, "alloc/release round-trip lost slots");
    }
}

//! Concurrency tests for the squared service: many client threads
//! hammering one server with interleaved identical and distinct
//! requests, and every response checked **byte-identical** to a
//! one-shot compile of the same cell through the same encoder the
//! CLI uses. Dedupe and caching must never cross-contaminate cells.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::thread;

use serde::Value;
use square_bench::{report_json, SweepArch};
use square_core::{compile, Policy, RouterKind};
use square_service::server::{serve, ServerConfig};
use square_service::{CompileService, ServiceConfig};

/// One test cell: a source plus its compile options.
#[derive(Clone)]
struct Cell {
    source: String,
    policy: Policy,
    arch: SweepArch,
    router: RouterKind,
}

impl Cell {
    /// The ground truth: a one-shot compile through the public API,
    /// serialized by the same encoder the server uses.
    fn expected_report(&self) -> String {
        let program = square_lang::parse_program(&self.source).expect("corpus parses");
        let config = self.arch.config(self.policy).with_router(self.router);
        let report = compile(&program, &config).expect("corpus compiles");
        serde_json::to_string(&report_json(&report)).expect("serializes")
    }

    fn request_line(&self, id: usize) -> String {
        let escaped = serde_json::to_string(&Value::String(self.source.clone())).unwrap();
        format!(
            "{{\"id\": {id}, \"source\": {escaped}, \"policy\": \"{}\", \"arch\": \"{}\", \"router\": \"{}\"}}\n",
            self.policy.cli_name(),
            self.arch,
            self.router.cli_name()
        )
    }
}

fn corpus_sources() -> Vec<String> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/sq");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/sq exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sq"))
        .collect();
    files.sort();
    files
        .iter()
        .map(|p| square_service::gate::wire_source(p).expect("corpus file resolves"))
        .collect()
}

/// Distinct cells over the corpus: different policies, archs and
/// routers, so the cache has to keep them apart.
fn distinct_cells() -> Vec<Cell> {
    let sources = corpus_sources();
    let mut cells = Vec::new();
    for (i, source) in sources.iter().enumerate() {
        for &policy in &[Policy::Square, Policy::Eager] {
            cells.push(Cell {
                source: source.clone(),
                policy,
                arch: SweepArch::NisqAuto,
                router: RouterKind::Greedy,
            });
        }
        // Stagger some extra cells so archs/routers interleave too.
        if i % 2 == 0 {
            cells.push(Cell {
                source: source.clone(),
                policy: Policy::Lazy,
                arch: SweepArch::Grid {
                    width: 12,
                    height: 12,
                },
                router: RouterKind::Lookahead,
            });
        }
    }
    cells
}

/// Boots an in-process server on an OS-picked port.
fn boot_server() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let service = Arc::new(CompileService::new(ServiceConfig::default()));
    thread::spawn(move || {
        serve(
            listener,
            service,
            ServerConfig {
                workers: 4,
                queue_depth: 8,
            },
        )
        .expect("serve");
    });
    addr
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    (BufReader::new(stream.try_clone().expect("clone")), stream)
}

fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> Value {
    writer.write_all(line.as_bytes()).expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    assert!(!response.is_empty(), "server closed connection");
    serde_json::from_str(&response).expect("valid response JSON")
}

#[test]
fn hammered_server_serves_byte_identical_reports() {
    let cells = distinct_cells();
    let expected: Vec<String> = cells.iter().map(Cell::expected_report).collect();
    let addr = boot_server();

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 24;
    let cells = Arc::new(cells);
    let expected = Arc::new(expected);
    thread::scope(|scope| {
        for client in 0..CLIENTS {
            let cells = Arc::clone(&cells);
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                let (mut reader, mut writer) = connect(addr);
                for i in 0..REQUESTS {
                    // Even clients walk forward from a staggered
                    // offset (lots of identical in-flight requests);
                    // odd clients walk backward (distinct interleave).
                    let idx = if client % 2 == 0 {
                        (client / 2 + i) % cells.len()
                    } else {
                        (cells.len() * REQUESTS - client - i) % cells.len()
                    };
                    let response = roundtrip(&mut reader, &mut writer, &cells[idx].request_line(i));
                    assert_eq!(
                        response.get("ok").and_then(Value::as_bool),
                        Some(true),
                        "request failed: {response:?}"
                    );
                    assert_eq!(
                        response.get("id").and_then(Value::as_u64),
                        Some(i as u64),
                        "response id mismatch"
                    );
                    let served = serde_json::to_string(
                        response.get("report").expect("response carries report"),
                    )
                    .expect("serializes");
                    assert_eq!(
                        served, expected[idx],
                        "served report differs from one-shot compile (cell {idx})"
                    );
                }
            });
        }
    });

    // Duplicate traffic must have hit the shared caches.
    let (mut reader, mut writer) = connect(addr);
    let stats = roundtrip(&mut reader, &mut writer, "{\"cmd\": \"stats\"}\n");
    let cache = stats.get("cache").expect("stats carries cache");
    let report_hits = cache
        .get("reports")
        .and_then(|r| r.get("hits"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let coalesced = cache.get("coalesced").and_then(Value::as_u64).unwrap_or(0);
    assert!(
        report_hits + coalesced > 0,
        "duplicate traffic produced no cache hits: {stats:?}"
    );
    // Every distinct cell compiled at least once, but far fewer
    // compiles than requests.
    let compiles = cache.get("compiles").and_then(Value::as_u64).unwrap_or(0);
    let requests = cache.get("requests").and_then(Value::as_u64).unwrap_or(0);
    assert!(compiles >= cells.len() as u64);
    assert!(
        compiles < requests,
        "no request ever reused a cached compile"
    );

    let ack = roundtrip(&mut reader, &mut writer, "{\"cmd\": \"shutdown\"}\n");
    assert_eq!(ack.get("ok").and_then(Value::as_bool), Some(true));
}

#[test]
fn protocol_errors_do_not_poison_the_session() {
    let addr = boot_server();
    let (mut reader, mut writer) = connect(addr);

    let pong = roundtrip(&mut reader, &mut writer, "{\"cmd\": \"ping\"}\n");
    assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));

    let bad = roundtrip(&mut reader, &mut writer, "this is not json\n");
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        bad.get("error_kind").and_then(Value::as_str),
        Some("bad_request")
    );

    // A future-protocol client gets a structured version error, not a
    // field-level parse failure, and the session keeps serving.
    let wrong_v = roundtrip(&mut reader, &mut writer, "{\"v\": 99, \"cmd\": \"ping\"}\n");
    assert_eq!(wrong_v.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        wrong_v.get("error_kind").and_then(Value::as_str),
        Some("unsupported_version")
    );

    // Current-version and version-less lines both work.
    let pong = roundtrip(&mut reader, &mut writer, "{\"v\": 1, \"cmd\": \"ping\"}\n");
    assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));
    assert_eq!(pong.get("v").and_then(Value::as_u64), Some(1));

    let unparsable = roundtrip(
        &mut reader,
        &mut writer,
        "{\"id\": 9, \"source\": \"entry module main(0 params, 1 ancilla) { compute { nope; } }\"}\n",
    );
    assert_eq!(unparsable.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(unparsable.get("id").and_then(Value::as_u64), Some(9));
    let message = unparsable
        .get("error")
        .and_then(Value::as_str)
        .expect("error message");
    assert!(message.contains("parse error"), "got: {message}");

    // The session still works after both failures.
    let source = &corpus_sources()[0];
    let cell = Cell {
        source: source.clone(),
        policy: Policy::Square,
        arch: SweepArch::NisqAuto,
        router: RouterKind::Greedy,
    };
    let good = roundtrip(&mut reader, &mut writer, &cell.request_line(10));
    assert_eq!(good.get("ok").and_then(Value::as_bool), Some(true));

    let ack = roundtrip(&mut reader, &mut writer, "{\"cmd\": \"shutdown\"}\n");
    assert_eq!(ack.get("shutdown").and_then(Value::as_bool), Some(true));
}

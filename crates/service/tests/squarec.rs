//! End-to-end tests of the `squarec` driver and the frontend's
//! compile-equivalence guarantee.
//!
//! Two layers:
//!
//! * **Driver**: the actual binary run against the committed
//!   `examples/sq/` corpus (all four policies, `--validate`), against
//!   broken input (diagnostics + exit code), and through a
//!   `--dump-catalog` / `--roundtrip` cycle.
//! * **API**: every catalog benchmark must survive
//!   `pretty → parse → compile` with a report *field-identical* to
//!   compiling the in-memory program — the external `.sq` path is the
//!   same compiler, not a near miss. (NISQ set here; the full catalog
//!   including MUL64 runs under `--ignored` in the `frontend` CI job.)

use std::path::{Path, PathBuf};
use std::process::Command;

use square_core::{compile, CompileReport, CompilerConfig, Policy};
use square_qir::pretty::program_listing;
use square_workloads::{build, Benchmark};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/sq")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("examples/sq exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "sq"))
        .collect();
    files.sort();
    assert!(files.len() >= 3, "committed corpus went missing: {files:?}");
    files
}

fn squarec() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_squarec"));
    // The corpus imports `std`, resolved from the cwd-relative `lib/`
    // default; run the driver from the workspace root like a user would.
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    cmd
}

#[test]
fn corpus_compiles_under_every_policy() {
    for file in corpus_files() {
        for policy in Policy::ALL {
            let out = squarec()
                .arg(&file)
                .args(["--policy", policy.cli_name()])
                .output()
                .expect("squarec runs");
            assert!(
                out.status.success(),
                "{} under {}: {}",
                file.display(),
                policy.cli_name(),
                String::from_utf8_lossy(&out.stderr)
            );
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(stdout.contains("aqv"), "missing table header:\n{stdout}");
        }
    }
}

#[test]
fn corpus_validates_with_the_oracle_stack() {
    let out = squarec()
        .args(corpus_files())
        .args(["--all-policies", "--validate", "--roundtrip"])
        .output()
        .expect("squarec runs");
    assert!(
        out.status.success(),
        "validation failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("round-trip OK"), "{stderr}");
}

#[test]
fn parse_errors_exit_nonzero_with_spans() {
    let dir = std::env::temp_dir().join("squarec_test_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.sq");
    std::fs::write(
        &bad,
        "entry module main(0 params, 1 ancilla) {\n  compute {\n    ccz a0;\n  }\n}\n",
    )
    .unwrap();
    let out = squarec().arg(&bad).output().expect("squarec runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown gate `ccz`"), "{stderr}");
    assert!(stderr.contains(":3:5"), "line/col anchor missing: {stderr}");
    assert!(stderr.contains("did you mean `ccx`?"), "{stderr}");
}

#[test]
fn usage_errors_exit_two() {
    let out = squarec().output().expect("squarec runs");
    assert_eq!(out.status.code(), Some(2));
    let out = squarec()
        .args(["x.sq", "--policy", "bogus"])
        .output()
        .expect("squarec runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn dumped_catalog_round_trips_through_the_driver() {
    let dir = std::env::temp_dir().join("squarec_test_catalog");
    let _ = std::fs::remove_dir_all(&dir);
    let out = squarec()
        .arg("--dump-catalog")
        .arg(&dir)
        .output()
        .expect("squarec runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dumped: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(dumped.len(), 17, "one .sq per catalog benchmark");
    // Round-trip the cheap files through the driver (listing mode so
    // nothing compiles; the full compile equivalence is tested below).
    let small: Vec<&PathBuf> = dumped
        .iter()
        .filter(|p| {
            let stem = p.file_stem().unwrap().to_string_lossy().into_owned();
            Benchmark::NISQ
                .iter()
                .any(|b| square_workloads::sq_file_stem(*b) == stem)
        })
        .collect();
    assert_eq!(small.len(), 7);
    let out = squarec()
        .args(&small)
        .args(["--roundtrip", "--emit", "listing"])
        .output()
        .expect("squarec runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Field-by-field comparison of everything the evaluation consumes.
fn assert_reports_identical(a: &CompileReport, b: &CompileReport, what: &str) {
    assert_eq!(a.gates, b.gates, "{what}: gates");
    assert_eq!(a.swaps, b.swaps, "{what}: swaps");
    assert_eq!(a.depth, b.depth, "{what}: depth");
    assert_eq!(a.qubits, b.qubits, "{what}: qubits");
    assert_eq!(a.peak_active, b.peak_active, "{what}: peak_active");
    assert_eq!(a.aqv, b.aqv, "{what}: aqv");
    assert_eq!(a.comm_factor, b.comm_factor, "{what}: comm_factor");
    assert_eq!(a.machine_qubits, b.machine_qubits, "{what}: machine_qubits");
    assert_eq!(a.decisions, b.decisions, "{what}: decision stats");
    assert_eq!(a.decision_log, b.decision_log, "{what}: decision log");
    assert_eq!(a.entry_register, b.entry_register, "{what}: entry register");
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    assert_eq!(a.trace, b.trace, "{what}: trace");
}

fn check_compile_equivalence(benches: &[Benchmark]) {
    for &bench in benches {
        let program = build(bench).expect("benchmark builds");
        let parsed = square_lang::parse_program(&program_listing(&program))
            .unwrap_or_else(|d| panic!("{bench}: listing failed to parse: {d:?}"));
        assert_eq!(parsed, program, "{bench}: round-trip changed the program");
        for policy in Policy::ALL {
            let config = CompilerConfig::nisq(policy);
            let direct = compile(&program, &config).expect("in-memory compile");
            let via_sq = compile(&parsed, &config).expect(".sq compile");
            assert_reports_identical(&direct, &via_sq, &format!("{bench}/{}", policy.cli_name()));
        }
    }
}

#[test]
fn catalog_compiles_identically_through_sq_nisq_set() {
    check_compile_equivalence(&Benchmark::NISQ);
}

#[test]
#[ignore = "full catalog × 4 policies: run with --ignored (release)"]
fn catalog_compiles_identically_through_sq_full() {
    check_compile_equivalence(&Benchmark::ALL);
}

//! The TCP front end: sessions, the bounded worker pool, shutdown.
//!
//! Each accepted connection gets a session thread that reads protocol
//! lines and writes one response line per request, in order. Compile
//! work never runs on session threads — it is dispatched to a bounded
//! worker pool, so total concurrent compiles are capped at the worker
//! count no matter how many clients connect, and a full queue applies
//! backpressure to the submitting sessions.
//!
//! All logging goes to **stderr**; stdout is never written, so
//! `squared`'s own output (and anything piping the protocol) stays
//! clean for `jq`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;

use serde::Value;

use crate::proto::{Request, Response};
use crate::service::CompileService;

/// Worker-pool sizing for a server.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Concurrent compile workers (0 ⇒ available parallelism).
    pub workers: usize,
    /// Bounded job-queue depth (0 ⇒ 4 × workers).
    pub queue_depth: usize,
}

impl ServerConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism().map_or(4, |n| n.get())
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of compile workers fed from one bounded queue.
/// Submission blocks when the queue is full — that is the service's
/// backpressure.
struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize, queue_depth: usize) -> Self {
        let (sender, receiver) = sync_channel::<Job>(queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..workers.max(1))
            .map(|_| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                thread::spawn(move || loop {
                    // Hold the lock only to dequeue, never while
                    // running the job.
                    let job = match receiver.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => break,
                    };
                    job();
                })
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Runs `job` on the pool, blocking the caller and returning its
    /// result once a worker has finished it.
    fn run<T: Send + 'static>(&self, job: impl FnOnce() -> T + Send + 'static) -> T {
        let (tx, rx) = std::sync::mpsc::channel();
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(move || {
                let _ = tx.send(job());
            }))
            .expect("worker pool hung up");
        rx.recv().expect("worker died mid-job")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs the accept loop until a client sends `{"cmd":"shutdown"}`.
/// Session threads are detached; when `serve` returns, in-flight
/// sessions finish their current response and die with the process.
///
/// # Errors
///
/// Propagates listener I/O errors (a failed `accept` on a live
/// listener); per-connection errors only end that session.
pub fn serve(
    listener: TcpListener,
    service: Arc<CompileService>,
    config: ServerConfig,
) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    let pool = Arc::new(WorkerPool::new(
        config.resolved_workers(),
        if config.queue_depth > 0 {
            config.queue_depth
        } else {
            config.resolved_workers() * 4
        },
    ));
    let shutdown = Arc::new(AtomicBool::new(false));
    eprintln!(
        "squared: listening on {addr} ({} workers)",
        config.resolved_workers()
    );

    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("squared: accept failed: {e}");
                continue;
            }
        };
        // Responses are single small lines; Nagle + delayed ACK would
        // add ~40ms to every request on loopback.
        let _ = stream.set_nodelay(true);
        let service = Arc::clone(&service);
        let pool = Arc::clone(&pool);
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || {
            if let Err(e) = session(&stream, &service, &pool, &shutdown, addr) {
                eprintln!("squared: session ended: {e}");
            }
        });
    }
    eprintln!("squared: shutting down");
    Ok(())
}

/// One connection: read a line, answer a line, repeat until EOF.
fn session(
    stream: &TcpStream,
    service: &Arc<CompileService>,
    pool: &WorkerPool,
    shutdown: &AtomicBool,
    listen_addr: std::net::SocketAddr,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream.try_clone()?;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(&line) {
            Err(e) => Response::parse_error(&Value::Null, &e),
            Ok(Request::Ping { id }) => Response::Pong { id },
            Ok(Request::Stats { id }) => Response::Stats {
                id,
                stats: service.stats(),
            },
            Ok(Request::Shutdown { id }) => {
                let ack = Response::Shutdown { id };
                write_line(&mut writer, &ack.serialize())?;
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(listen_addr);
                return Ok(());
            }
            Ok(Request::Compile { id, req }) => {
                let job_service = Arc::clone(service);
                let job_req = req.clone();
                let outcome = pool.run(move || job_service.compile_source(&job_req));
                match outcome {
                    Ok(outcome) => Response::Compile {
                        id,
                        req,
                        outcome,
                        stats: service.stats(),
                    },
                    Err(e) => Response::service_error(&id, &e),
                }
            }
        };
        write_line(&mut writer, &response.serialize())?;
    }
}

fn write_line(writer: &mut TcpStream, value: &Value) -> std::io::Result<()> {
    let text = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

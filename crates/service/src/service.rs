//! The shared compile path behind every front end.
//!
//! [`CompileService`] owns the four cross-request caches and the
//! in-flight dedupe table. `squared` sessions, `squarec --serve`, the
//! load generator's in-process mode and the service latency gate all
//! call [`CompileService::compile_source`]; the report `Value` it
//! returns is produced by the same [`report_json`] encoder the CLI
//! uses, so a served response serializes byte-identically to a
//! one-shot `squarec --json` compile of the same cell.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use serde::{Serialize, Value};
use square_arch::Topology;
use square_bench::{report_json, SweepArch};
use square_core::{
    compile_prepared_on, CerCacheStats, Policy, PreparedProgram, RecomputeStats, RouterKind,
};
use square_qir::Program;

use crate::cache::{content_hash, CacheStats, LruCache};

/// Cache capacities for a [`CompileService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Parsed-program cache entries (keyed by source hash).
    pub programs_cap: usize,
    /// Prepared-program (lowered QIR + cost table) cache entries.
    pub prepared_cap: usize,
    /// Shared-topology cache entries (keyed by arch + capacity).
    pub topologies_cap: usize,
    /// Finished-report cache entries (keyed by full request cell).
    pub reports_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            programs_cap: 256,
            prepared_cap: 128,
            topologies_cap: 64,
            reports_cap: 512,
        }
    }
}

/// One compile request: a source program plus the cell to compile it
/// under.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// `.sq` source text.
    pub source: String,
    /// Reclamation policy.
    pub policy: Policy,
    /// Target architecture.
    pub arch: SweepArch,
    /// Swap-chain router (normalized to greedy on braided archs,
    /// matching the compiler itself).
    pub router: RouterKind,
    /// Optional `budget:N` hard width cap. Part of the cell identity:
    /// a budgeted compile of the same source is a different cell (and
    /// a different report) from the unbudgeted one.
    pub budget: Option<usize>,
    /// Whether measurement-based uncomputation may replace unitary
    /// inverse blocks. Part of the cell identity, like `budget`: the
    /// MBU compile of a source is a different cell with a different
    /// report.
    pub mbu: bool,
}

/// A served compile result.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// The report, already lowered to the shared JSON data model.
    pub report: Arc<Value>,
    /// Wall-clock milliseconds this cell took to produce when it was
    /// actually compiled (a cache hit reports the original cost).
    pub compile_ms: f64,
    /// FNV-1a content hash of the request source.
    pub program_hash: String,
    /// True when the report came straight from the finished-report
    /// cache.
    pub cached: bool,
    /// True when this request piggybacked on an identical request
    /// already in flight.
    pub coalesced: bool,
}

/// Why a request failed. Errors are never cached: a follower of a
/// failed in-flight leader sees the error once, and the next request
/// for the cell retries from scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The source did not parse; carries the fully rendered
    /// multi-error diagnostic listing.
    Parse(String),
    /// The compiler rejected or failed the program.
    Compile(String),
    /// The machine (or the `budget:N` cap) ran out of qubits. Kept
    /// structured — rather than flattened to a message — so front ends
    /// can surface the offending module, the live/capacity split and
    /// the minimum feasible budget as typed fields.
    OutOfQubits(Box<square_core::CompileError>),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Parse(msg) => write!(f, "parse error: {msg}"),
            ServiceError::Compile(msg) => write!(f, "compile error: {msg}"),
            ServiceError::OutOfQubits(e) => write!(f, "compile error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A snapshot of every cache plus the service-level counters,
/// embedded in each response and served by the `stats` command.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Parsed-program cache.
    pub programs: CacheStats,
    /// Prepared-program cache.
    pub prepared: CacheStats,
    /// Shared-topology cache.
    pub topologies: CacheStats,
    /// Finished-report cache.
    pub reports: CacheStats,
    /// Total compile requests accepted.
    pub requests: u64,
    /// Requests that ran the compiler (neither cached nor coalesced).
    pub compiles: u64,
    /// Requests coalesced onto an identical in-flight compile.
    pub coalesced: u64,
    /// Cumulative CER decision-memo counters summed over every compile
    /// this service actually ran (cache hits and coalesced followers
    /// add nothing — they did no CER work).
    pub cer_cache: CerCacheStats,
    /// Cumulative budget-driven early-uncompute/recompute counters,
    /// summed the same way.
    pub recompute: RecomputeStats,
}

impl Serialize for ServiceStats {
    fn serialize(&self) -> Value {
        Value::map([
            ("programs", self.programs.serialize()),
            ("prepared", self.prepared.serialize()),
            ("topologies", self.topologies.serialize()),
            ("reports", self.reports.serialize()),
            ("requests", Value::UInt(self.requests)),
            ("compiles", Value::UInt(self.compiles)),
            ("coalesced", Value::UInt(self.coalesced)),
            (
                "cer_cache",
                Value::map([
                    ("hits", Value::UInt(self.cer_cache.hits)),
                    ("misses", Value::UInt(self.cer_cache.misses)),
                    ("invalidations", Value::UInt(self.cer_cache.invalidations)),
                ]),
            ),
            (
                "recompute",
                Value::map([
                    (
                        "early_uncomputed_frames",
                        Value::UInt(self.recompute.early_uncomputed_frames),
                    ),
                    (
                        "early_uncompute_gates",
                        Value::UInt(self.recompute.early_uncompute_gates),
                    ),
                    (
                        "recomputed_frames",
                        Value::UInt(self.recompute.recomputed_frames),
                    ),
                    (
                        "recompute_gates",
                        Value::UInt(self.recompute.recompute_gates),
                    ),
                ]),
            ),
        ])
    }
}

/// The full identity of a compile: same key ⇒ byte-identical report.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CellKey {
    hash: String,
    policy: Policy,
    arch: SweepArch,
    router: RouterKind,
    budget: Option<usize>,
    mbu: bool,
}

/// A finished compile: the shared report plus the leader's compile time.
type CellResult = Result<(Arc<Value>, f64), ServiceError>;

/// A compile in progress. Followers block on the condvar until the
/// leader publishes into `done`.
struct Inflight {
    done: Mutex<Option<CellResult>>,
    cv: Condvar,
}

/// The concurrent compile service: shared caches + in-flight dedupe
/// around the square-core compile pipeline. Cheap to share as
/// `Arc<CompileService>`; every method takes `&self`.
pub struct CompileService {
    programs: Mutex<LruCache<String, Arc<Program>>>,
    prepared: Mutex<LruCache<String, Arc<PreparedProgram>>>,
    topologies: Mutex<LruCache<(SweepArch, usize), Arc<dyn Topology>>>,
    reports: Mutex<LruCache<CellKey, (Arc<Value>, f64)>>,
    inflight: Mutex<HashMap<CellKey, Arc<Inflight>>>,
    requests: AtomicU64,
    compiles: AtomicU64,
    coalesced: AtomicU64,
    cer_totals: Mutex<CerCacheStats>,
    recompute_totals: Mutex<RecomputeStats>,
}

impl CompileService {
    /// Creates a service with the given cache capacities.
    pub fn new(config: ServiceConfig) -> Self {
        CompileService {
            programs: Mutex::new(LruCache::new(config.programs_cap)),
            prepared: Mutex::new(LruCache::new(config.prepared_cap)),
            topologies: Mutex::new(LruCache::new(config.topologies_cap)),
            reports: Mutex::new(LruCache::new(config.reports_cap)),
            inflight: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            cer_totals: Mutex::new(CerCacheStats::default()),
            recompute_totals: Mutex::new(RecomputeStats::default()),
        }
    }

    /// Compiles one request, going through the caches:
    ///
    /// 1. finished-report cache — hit returns immediately;
    /// 2. in-flight table — an identical compile already running makes
    ///    this request a follower that waits for the leader's result;
    /// 3. otherwise this request leads: parse, prepare and compile
    ///    (each prefix stage itself cache-assisted), publish to any
    ///    followers and the report cache.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Parse`] with rendered diagnostics when the
    /// source does not parse; [`ServiceError::Compile`] when the
    /// compiler rejects the program. Errors are not cached.
    pub fn compile_source(&self, req: &CompileRequest) -> Result<CompileOutcome, ServiceError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        // The compiler never runs the swap-chain router on braided
        // archs; fold that into the key so `ft`+lookahead and
        // `ft`+greedy share one cell instead of compiling twice.
        let router = if req.arch.is_braided() {
            RouterKind::Greedy
        } else {
            req.router
        };
        let program_hash = content_hash(req.source.as_bytes());
        let key = CellKey {
            hash: program_hash.clone(),
            policy: req.policy,
            arch: req.arch,
            router,
            budget: req.budget,
            mbu: req.mbu,
        };

        if let Some((report, compile_ms)) = self.reports.lock().unwrap().get(&key) {
            return Ok(CompileOutcome {
                report,
                compile_ms,
                program_hash,
                cached: true,
                coalesced: false,
            });
        }

        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Inflight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if !leader {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut done = flight.done.lock().unwrap();
            while done.is_none() {
                done = flight.cv.wait(done).unwrap();
            }
            return match done.as_ref().unwrap() {
                Ok((report, compile_ms)) => Ok(CompileOutcome {
                    report: Arc::clone(report),
                    compile_ms: *compile_ms,
                    program_hash,
                    cached: false,
                    coalesced: true,
                }),
                Err(e) => Err(e.clone()),
            };
        }

        let result = self.compile_cell(req, &key);
        if let Ok((report, compile_ms)) = &result {
            self.compiles.fetch_add(1, Ordering::Relaxed);
            self.reports
                .lock()
                .unwrap()
                .insert(key.clone(), (Arc::clone(report), *compile_ms));
        }
        // Publish before unregistering so a follower that grabbed the
        // flight entry just before removal still wakes with a result.
        *flight.done.lock().unwrap() = Some(result.clone());
        flight.cv.notify_all();
        self.inflight.lock().unwrap().remove(&key);

        result.map(|(report, compile_ms)| CompileOutcome {
            report,
            compile_ms,
            program_hash,
            cached: false,
            coalesced: false,
        })
    }

    /// The leader's actual compile: every prefix stage consults its
    /// shared cache before doing work.
    fn compile_cell(
        &self,
        req: &CompileRequest,
        key: &CellKey,
    ) -> Result<(Arc<Value>, f64), ServiceError> {
        let start = Instant::now();

        // Each lookup binds through a `let` so the guard drops before
        // the miss path re-locks the same cache to insert.
        let cached_program = self.programs.lock().unwrap().get(&key.hash);
        let program = match cached_program {
            Some(p) => p,
            None => {
                let display = format!("sq:{}", key.hash);
                let parsed = square_lang::parse_program(&req.source).map_err(|diags| {
                    ServiceError::Parse(square_lang::render(&req.source, &display, &diags))
                })?;
                let parsed = Arc::new(parsed);
                self.programs
                    .lock()
                    .unwrap()
                    .insert(key.hash.clone(), Arc::clone(&parsed));
                parsed
            }
        };

        let cached_prepared = self.prepared.lock().unwrap().get(&key.hash);
        let prepared = match cached_prepared {
            Some(p) => p,
            None => {
                let built = PreparedProgram::new(&program)
                    .map_err(|e| ServiceError::Compile(e.to_string()))?;
                let built = Arc::new(built);
                self.prepared
                    .lock()
                    .unwrap()
                    .insert(key.hash.clone(), Arc::clone(&built));
                built
            }
        };

        let config = key
            .arch
            .config(key.policy)
            .with_router(key.router)
            .with_budget(key.budget)
            .with_mbu(key.mbu);
        // Fixed-size archs build the same machine for every program;
        // auto-sized ones depend on the program's ancilla footprint.
        // Key accordingly so a fixed arch is one shared entry.
        let capacity = if arch_is_auto_sized(key.arch) {
            prepared.capacity_hint()
        } else {
            0
        };
        let topo_key = (key.arch, capacity);
        let cached_topo = self.topologies.lock().unwrap().get(&topo_key);
        let topo = match cached_topo {
            Some(t) => t,
            None => {
                let built: Arc<dyn Topology> =
                    Arc::from(config.arch.build(prepared.capacity_hint()));
                self.topologies
                    .lock()
                    .unwrap()
                    .insert(topo_key, Arc::clone(&built));
                built
            }
        };

        let report = compile_prepared_on(&prepared, &[], &config, topo).map_err(|e| match e {
            e @ square_core::CompileError::OutOfQubits { .. } => {
                ServiceError::OutOfQubits(Box::new(e))
            }
            other => ServiceError::Compile(other.to_string()),
        })?;
        {
            let mut totals = self.cer_totals.lock().unwrap();
            totals.hits += report.cer_cache.hits;
            totals.misses += report.cer_cache.misses;
            totals.invalidations += report.cer_cache.invalidations;
        }
        {
            let mut totals = self.recompute_totals.lock().unwrap();
            totals.early_uncomputed_frames += report.recompute.early_uncomputed_frames;
            totals.early_uncompute_gates += report.recompute.early_uncompute_gates;
            totals.recomputed_frames += report.recompute.recomputed_frames;
            totals.recompute_gates += report.recompute.recompute_gates;
        }
        let compile_ms = start.elapsed().as_secs_f64() * 1e3;
        Ok((Arc::new(report_json(&report)), compile_ms))
    }

    /// Drops every finished report (counters survive) while leaving
    /// the program/prepared/topology caches warm. The latency gate
    /// uses this to re-measure real compiles under steady-state
    /// prefix caches.
    pub fn flush_reports(&self) {
        self.reports.lock().unwrap().flush();
    }

    /// A snapshot of all cache and service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            programs: self.programs.lock().unwrap().stats(),
            prepared: self.prepared.lock().unwrap().stats(),
            topologies: self.topologies.lock().unwrap().stats(),
            reports: self.reports.lock().unwrap().stats(),
            requests: self.requests.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            cer_cache: *self.cer_totals.lock().unwrap(),
            recompute: *self.recompute_totals.lock().unwrap(),
        }
    }
}

/// True for the `Auto*` arch variants whose machine size depends on
/// the program being compiled.
fn arch_is_auto_sized(arch: SweepArch) -> bool {
    matches!(
        arch,
        SweepArch::NisqAuto | SweepArch::FtAuto | SweepArch::HeavyHexAuto | SweepArch::RingAuto
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "entry module main(0 params, 3 ancilla) {\n  \
         compute { x a0; cx a0 a1; }\n  store { cx a1 a2; }\n}\n";

    fn request(source: &str) -> CompileRequest {
        CompileRequest {
            source: source.to_string(),
            policy: Policy::Square,
            arch: SweepArch::NisqAuto,
            router: RouterKind::Greedy,
            budget: None,
            mbu: false,
        }
    }

    #[test]
    fn second_identical_request_hits_the_report_cache() {
        let svc = CompileService::new(ServiceConfig::default());
        let first = svc.compile_source(&request(SRC)).unwrap();
        assert!(!first.cached && !first.coalesced);
        let second = svc.compile_source(&request(SRC)).unwrap();
        assert!(second.cached);
        assert_eq!(first.report, second.report);
        assert_eq!(first.program_hash, second.program_hash);
        let stats = svc.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.reports.hits, 1);
    }

    #[test]
    fn flush_reports_keeps_prefix_caches_warm() {
        let svc = CompileService::new(ServiceConfig::default());
        svc.compile_source(&request(SRC)).unwrap();
        svc.flush_reports();
        let again = svc.compile_source(&request(SRC)).unwrap();
        assert!(!again.cached, "flushed report must recompile");
        let stats = svc.stats();
        assert_eq!(stats.compiles, 2);
        assert!(stats.prepared.hits >= 1, "prepared cache stayed warm");
        assert!(stats.topologies.hits >= 1, "topology cache stayed warm");
    }

    #[test]
    fn braided_arch_router_variants_share_one_cell() {
        let svc = CompileService::new(ServiceConfig::default());
        let mut req = request(SRC);
        req.arch = SweepArch::FtAuto;
        req.router = RouterKind::Lookahead;
        let first = svc.compile_source(&req).unwrap();
        req.router = RouterKind::Greedy;
        let second = svc.compile_source(&req).unwrap();
        assert!(second.cached, "ft+lookahead and ft+greedy are one cell");
        assert_eq!(first.report, second.report);
    }

    #[test]
    fn budget_is_part_of_the_cell_key() {
        let svc = CompileService::new(ServiceConfig::default());
        let unbudgeted = svc.compile_source(&request(SRC)).unwrap();
        let mut capped = request(SRC);
        capped.budget = Some(3);
        let budgeted = svc.compile_source(&capped).unwrap();
        assert!(
            !budgeted.cached,
            "a budgeted compile must not hit the unbudgeted cell"
        );
        // The budgeted report carries the budget/recompute fields, the
        // unbudgeted one must not (byte-stability of existing cells).
        assert_eq!(
            budgeted.report.get("budget").and_then(Value::as_u64),
            Some(3)
        );
        assert!(unbudgeted.report.get("budget").is_none());
        // And the budgeted cell caches under its own key.
        let again = svc.compile_source(&capped).unwrap();
        assert!(again.cached);
    }

    const CHILD_SRC: &str = "module fun1(4 params, 1 ancilla) {\n  \
         compute { ccx p0 p1 p2; cx p2 a0; }\n  store { cx a0 p3; }\n}\n\
         entry module main(0 params, 4 ancilla) {\n  \
         compute { call fun1(a0, a1, a2, a3); }\n}\n";

    #[test]
    fn mbu_is_part_of_the_cell_key() {
        let svc = CompileService::new(ServiceConfig::default());
        let plain = svc.compile_source(&request(CHILD_SRC)).unwrap();
        let mut req = request(CHILD_SRC);
        req.mbu = true;
        let mbu = svc.compile_source(&req).unwrap();
        assert!(!mbu.cached, "an MBU compile must not hit the plain cell");
        // The MBU report carries the gated block, the plain one must
        // not (byte-stability of existing cells).
        assert!(mbu.report.get("mbu").is_some());
        assert!(plain.report.get("mbu").is_none());
        // And the MBU cell caches under its own key.
        let again = svc.compile_source(&req).unwrap();
        assert!(again.cached);
    }

    #[test]
    fn stats_accumulate_cer_work_across_compiles() {
        let svc = CompileService::new(ServiceConfig::default());
        // A child-frame program under SQUARE consults CER at frame
        // completion, so the cumulative memo counters move.
        svc.compile_source(&request(CHILD_SRC)).unwrap();
        let first = svc.stats();
        assert!(
            first.cer_cache.hits + first.cer_cache.misses > 0,
            "{:?}",
            first.cer_cache
        );
        // A report-cache hit does no CER work and adds nothing.
        svc.compile_source(&request(CHILD_SRC)).unwrap();
        let second = svc.stats();
        assert_eq!(first.cer_cache, second.cer_cache);
        assert_eq!(first.recompute, second.recompute);
        // Both cumulative blocks ride along in the serialized snapshot.
        let wire = serde_json::to_string(&second.serialize()).unwrap();
        assert!(wire.contains("\"cer_cache\""), "{wire}");
        assert!(wire.contains("\"recompute\""), "{wire}");
    }

    #[test]
    fn out_of_qubits_surfaces_structured() {
        let svc = CompileService::new(ServiceConfig::default());
        let mut req = request(SRC);
        req.budget = Some(1);
        match svc.compile_source(&req).unwrap_err() {
            ServiceError::OutOfQubits(e) => match *e {
                square_core::CompileError::OutOfQubits {
                    budget,
                    min_feasible,
                    ..
                } => {
                    assert_eq!(budget, Some(1));
                    assert!(min_feasible.is_some());
                }
                other => panic!("wrong compile error: {other}"),
            },
            other => panic!("expected structured out-of-qubits, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_rendered_and_not_cached() {
        let svc = CompileService::new(ServiceConfig::default());
        let bad = request("entry module main(0 params, 1 ancilla) { compute { nope; } }");
        let err = svc.compile_source(&bad).unwrap_err();
        match &err {
            ServiceError::Parse(msg) => assert!(!msg.is_empty()),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert_eq!(svc.stats().compiles, 0);
        // Retrying reruns the parse (errors are never cached) and
        // fails the same way.
        assert_eq!(svc.compile_source(&bad).unwrap_err(), err);
    }
}

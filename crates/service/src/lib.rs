//! # square-service — the `squared` concurrent compile service
//!
//! A long-running compile server for `.sq` programs. Clients connect
//! over TCP, send newline-delimited JSON requests naming a source
//! program plus a `(policy, arch, router)` cell, and receive the same
//! report JSON that `squarec --json` prints — the two front ends share
//! one compile path ([`CompileService`]), so a served response is
//! byte-identical to a one-shot CLI compile of the same cell.
//!
//! What makes the service worth running over a fleet of one-shot
//! processes is the shared state between requests:
//!
//! * **Parsed programs** and **prepared programs** (lowered QIR +
//!   [`ModuleCostTable`](square_core::ModuleCostTable) memos) are
//!   cached by source content hash.
//! * **Topologies** — including the graph-backed layouts whose
//!   all-pairs BFS distance/next-hop tables build lazily — are cached
//!   per `(arch, capacity)` and shared across concurrent compiles via
//!   `Arc<dyn Topology>`.
//! * **Full reports** are cached per `(program, policy, arch, router)`
//!   cell, and identical cells *in flight* are coalesced so a burst of
//!   duplicate requests costs one compile.
//!
//! Every response carries hit/miss/eviction counters for all four
//! caches. The crate also ships the `squared` server bin, the
//! `loadgen` traffic generator, the `service_gate` latency-baseline
//! harness, and the `squarec` CLI (which grew a `--serve` flag).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod gate;
pub mod proto;
pub mod server;
pub mod service;

pub use cache::{content_hash, CacheStats, LruCache};
pub use service::{
    CompileOutcome, CompileRequest, CompileService, ServiceConfig, ServiceError, ServiceStats,
};

//! The service latency baseline and regression gate.
//!
//! Mirrors `square_bench::baseline` for the service path: per-program
//! **request latency** through a live [`CompileService`] (p50/p99/min
//! nanoseconds), normalized by the same fixed calibration workload so
//! baselines recorded on one machine gate runs on another. Each cell
//! also pins the deterministic circuit fingerprint (gates, swaps,
//! depth, qubits, aqv) pulled from the served report — fingerprint
//! drift through the service path is always a failure, exactly like
//! the compile-time gate.
//!
//! Latency samples are taken with the finished-report cache flushed
//! before every request (each sample pays a real compile) while the
//! program / prepared / topology caches stay warm — the steady state
//! of a long-running server under novel cells. An informational
//! warm-cache throughput figure is also recorded but never gated: it
//! is dominated by scheduler noise on shared CI runners.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use serde::{Serialize, Value};
use square_bench::SweepArch;
use square_core::{Policy, RouterKind};
use square_workloads::{sq_source, Benchmark};

use crate::service::{CompileRequest, CompileService, ServiceConfig};

/// Bump when the baseline JSON shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Catalog programs included in the default gate corpus alongside the
/// checked-in `.sq` examples: small, fast benchmarks spanning the
/// arithmetic / oracle / modular-exponentiation families.
pub const CATALOG_PROGRAMS: [Benchmark; 3] =
    [Benchmark::Rd53, Benchmark::Adder4, Benchmark::Modexp];

/// One measured program: latency distribution + circuit fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCell {
    /// Corpus name (`adder` for `adder.sq`, `catalog:RD53` for
    /// catalog programs).
    pub program: String,
    /// Median request latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_ns: u64,
    /// Fastest observed request, nanoseconds.
    pub min_ns: u64,
    /// Timed samples taken.
    pub samples: usize,
    /// Fingerprint: program gates.
    pub gates: u64,
    /// Fingerprint: routing swaps.
    pub swaps: u64,
    /// Fingerprint: schedule depth.
    pub depth: u64,
    /// Fingerprint: physical qubits touched.
    pub qubits: u64,
    /// Fingerprint: active quantum volume.
    pub aqv: u64,
}

impl ServiceCell {
    fn fingerprint(&self) -> (u64, u64, u64, u64, u64) {
        (self.gates, self.swaps, self.depth, self.qubits, self.aqv)
    }
}

impl Serialize for ServiceCell {
    fn serialize(&self) -> Value {
        Value::map([
            ("program", Value::String(self.program.clone())),
            ("p50_ns", Value::UInt(self.p50_ns)),
            ("p99_ns", Value::UInt(self.p99_ns)),
            ("min_ns", Value::UInt(self.min_ns)),
            ("samples", Value::UInt(self.samples as u64)),
            ("gates", Value::UInt(self.gates)),
            ("swaps", Value::UInt(self.swaps)),
            ("depth", Value::UInt(self.depth)),
            ("qubits", Value::UInt(self.qubits)),
            ("aqv", Value::UInt(self.aqv)),
        ])
    }
}

/// A recorded service baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBaseline {
    /// Schema marker ([`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Median calibration-workload runtime on the recording machine,
    /// nanoseconds (`square_bench::baseline::calibrate`).
    pub calibration_ns: u64,
    /// Informational warm-cache throughput (requests/second over the
    /// whole corpus from 8 in-process clients). Recorded, rendered,
    /// never gated.
    pub throughput_rps: f64,
    /// Per-program latency cells.
    pub cells: Vec<ServiceCell>,
}

impl ServiceBaseline {
    /// Looks up one program's cell.
    pub fn get(&self, program: &str) -> Option<&ServiceCell> {
        self.cells.iter().find(|c| c.program == program)
    }
}

impl Serialize for ServiceBaseline {
    fn serialize(&self) -> Value {
        Value::map([
            ("schema", Value::UInt(self.schema)),
            ("calibration_ns", Value::UInt(self.calibration_ns)),
            ("throughput_rps", Value::Float(self.throughput_rps)),
            ("cells", Value::seq(&self.cells)),
        ])
    }
}

fn field_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

/// Parses a baseline JSON document.
///
/// # Errors
///
/// A message naming the missing/mistyped field, or a schema mismatch
/// (refresh the baseline with `service_gate record`).
pub fn parse(text: &str) -> Result<ServiceBaseline, String> {
    let root = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = field_u64(&root, "schema")?;
    if schema != SCHEMA_VERSION {
        return Err(format!(
            "schema {schema} != supported {SCHEMA_VERSION}; refresh the baseline"
        ));
    }
    let calibration_ns = field_u64(&root, "calibration_ns")?;
    let throughput_rps = root
        .get("throughput_rps")
        .and_then(Value::as_f64)
        .ok_or_else(|| "missing numeric field `throughput_rps`".to_string())?;
    let cells = root
        .get("cells")
        .and_then(Value::as_seq)
        .ok_or_else(|| "missing array field `cells`".to_string())?
        .iter()
        .map(|cell| {
            Ok(ServiceCell {
                program: cell
                    .get("program")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "missing string field `program`".to_string())?
                    .to_string(),
                p50_ns: field_u64(cell, "p50_ns")?,
                p99_ns: field_u64(cell, "p99_ns")?,
                min_ns: field_u64(cell, "min_ns")?,
                samples: field_u64(cell, "samples")? as usize,
                gates: field_u64(cell, "gates")?,
                swaps: field_u64(cell, "swaps")?,
                depth: field_u64(cell, "depth")?,
                qubits: field_u64(cell, "qubits")?,
                aqv: field_u64(cell, "aqv")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ServiceBaseline {
        schema,
        calibration_ns,
        throughput_rps,
        cells,
    })
}

/// Reads a corpus `.sq` file as single-file wire-protocol source.
///
/// The service wire carries one self-contained program per request,
/// so files written against the multi-file frontend are flattened at
/// load time: import-free sources pass through **byte-identical**
/// (the raw file is the wire payload), while sources with `import`
/// items resolve against the importing file's directory plus the
/// workspace `lib/` and render back to their canonical single-file
/// listing.
///
/// # Errors
///
/// I/O failures, or rendered diagnostics when the program does not
/// resolve — a service corpus is required to be valid.
pub fn wire_source(path: &Path) -> Result<String, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if square_lang::parse_program(&source).is_ok() {
        return Ok(source);
    }
    let lib = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../lib");
    let loader = square_lang::SearchPathLoader::with_default_lib(vec![lib]);
    let display = path.display().to_string();
    let (map, parsed) = square_lang::parse_files(&display, &source, &loader);
    match parsed {
        Ok(program) => Ok(square_qir::pretty::program_listing(&program)),
        Err(diags) => Err(format!(
            "{display} does not resolve:\n{}",
            map.render(&diags)
        )),
    }
}

/// The default gate corpus: every `.sq` file in `corpus_dir` (sorted
/// by name, flattened through [`wire_source`]) plus
/// [`CATALOG_PROGRAMS`] rendered from the workload catalog. Returns
/// `(name, source)` pairs.
///
/// # Errors
///
/// I/O failures reading the corpus directory, a corpus file that does
/// not resolve, or a catalog program that fails to render.
pub fn default_corpus(corpus_dir: &Path) -> Result<Vec<(String, String)>, String> {
    let mut entries = Vec::new();
    let mut files: Vec<_> = std::fs::read_dir(corpus_dir)
        .map_err(|e| format!("{}: {e}", corpus_dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sq"))
        .collect();
    files.sort();
    for path in files {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        entries.push((name, wire_source(&path)?));
    }
    for bench in CATALOG_PROGRAMS {
        let source = sq_source(bench).map_err(|e| format!("{}: {e}", bench.name()))?;
        entries.push((format!("catalog:{}", bench.name()), source));
    }
    Ok(entries)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn report_field(report: &Value, key: &str) -> Result<u64, String> {
    report
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("served report missing `{key}`"))
}

/// Measures the corpus through a fresh [`CompileService`]: per
/// program, one warm-up request (fills the prefix caches and pins the
/// fingerprint), then `samples` timed requests with the report cache
/// flushed before each — every sample pays a real compile over warm
/// prefix caches. A warm-cache throughput phase (8 in-process client
/// threads × the whole corpus) follows, recorded informally.
///
/// # Errors
///
/// Any request that fails to parse or compile, or a served report
/// missing a fingerprint field.
pub fn measure(
    corpus: &[(String, String)],
    samples: usize,
    mut progress: impl FnMut(&str),
) -> Result<ServiceBaseline, String> {
    let samples = samples.max(1);
    let calibration_ns = square_bench::baseline::calibrate();
    let service = Arc::new(CompileService::new(ServiceConfig::default()));
    let mut cells = Vec::new();
    for (name, source) in corpus {
        let req = CompileRequest {
            source: source.clone(),
            policy: Policy::Square,
            arch: SweepArch::NisqAuto,
            router: RouterKind::Greedy,
            budget: None,
            mbu: false,
        };
        let warm = service
            .compile_source(&req)
            .map_err(|e| format!("{name}: {e}"))?;
        // Small programs compile in microseconds — far below scheduler
        // noise. Batch enough iterations per timed window (criterion
        // style) that every sample spans ≥ 1ms, and report the
        // per-iteration average; `flush_reports` inside the loop keeps
        // each iteration an honest compile and is itself part of the
        // measured request path.
        service.flush_reports();
        let est_start = Instant::now();
        let est = service
            .compile_source(&req)
            .map_err(|e| format!("{name}: {e}"))?;
        std::hint::black_box(est);
        let est_ns = (est_start.elapsed().as_nanos() as u64).max(1);
        let iters = (1_000_000 / est_ns).clamp(1, 256) as u32;
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                service.flush_reports();
                let out = service
                    .compile_source(&req)
                    .map_err(|e| format!("{name}: {e}"))?;
                std::hint::black_box(out);
            }
            times.push(start.elapsed().as_nanos() as u64 / u64::from(iters));
        }
        times.sort_unstable();
        let cell = ServiceCell {
            program: name.clone(),
            p50_ns: times[times.len() / 2],
            p99_ns: percentile(&times, 0.99),
            min_ns: times[0],
            samples,
            gates: report_field(&warm.report, "gates").map_err(|e| format!("{name}: {e}"))?,
            swaps: report_field(&warm.report, "swaps").map_err(|e| format!("{name}: {e}"))?,
            depth: report_field(&warm.report, "depth").map_err(|e| format!("{name}: {e}"))?,
            qubits: report_field(&warm.report, "qubits").map_err(|e| format!("{name}: {e}"))?,
            aqv: report_field(&warm.report, "aqv").map_err(|e| format!("{name}: {e}"))?,
        };
        progress(&format!(
            "measured {name}: p50 {:.3}ms over {samples} samples",
            cell.p50_ns as f64 / 1e6
        ));
        cells.push(cell);
    }

    // Informational throughput: warm everything, then hammer.
    for (_, source) in corpus {
        let req = CompileRequest {
            source: source.clone(),
            policy: Policy::Square,
            arch: SweepArch::NisqAuto,
            router: RouterKind::Greedy,
            budget: None,
            mbu: false,
        };
        service.compile_source(&req).map_err(|e| e.to_string())?;
    }
    const CLIENTS: usize = 8;
    let start = Instant::now();
    let total: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let mut done = 0usize;
                    for (_, source) in corpus {
                        let req = CompileRequest {
                            source: source.clone(),
                            policy: Policy::Square,
                            arch: SweepArch::NisqAuto,
                            router: RouterKind::Greedy,
                            budget: None,
                            mbu: false,
                        };
                        if service.compile_source(&req).is_ok() {
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let throughput_rps = total as f64 / elapsed;
    progress(&format!(
        "throughput (warm cache, {CLIENTS} clients): {throughput_rps:.0} req/s"
    ));

    Ok(ServiceBaseline {
        schema: SCHEMA_VERSION,
        calibration_ns,
        throughput_rps,
        cells,
    })
}

/// One program's latency comparison.
#[derive(Debug, Clone)]
pub struct CellComparison {
    /// Program name.
    pub program: String,
    /// Calibration-normalized p50 in the baseline.
    pub baseline_norm: f64,
    /// Calibration-normalized p50 in the current run.
    pub current_norm: f64,
    /// The smaller of the p50-based and min-based normalized ratios
    /// (> 1 means slower); min-vs-min shrugs off one-sided scheduler
    /// noise the same way the compile-time gate does.
    pub ratio: f64,
}

/// Outcome of gating a current run against a service baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Programs whose served fingerprint drifted — always a failure.
    pub fingerprint_mismatches: Vec<String>,
    /// Programs measured now but absent from the baseline — always a
    /// failure (stale baseline).
    pub missing_cells: Vec<String>,
    /// Per-program comparisons.
    pub timings: Vec<CellComparison>,
    /// Geometric mean of latency ratios.
    pub geomean_ratio: f64,
    /// Configured tolerance (0.15 = fail above +15%).
    pub tolerance: f64,
}

impl GateReport {
    /// True when the gate passes.
    pub fn ok(&self) -> bool {
        self.fingerprint_mismatches.is_empty()
            && self.missing_cells.is_empty()
            && self.geomean_ratio <= 1.0 + self.tolerance
    }

    /// Renders the human-readable gate summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.fingerprint_mismatches {
            out.push_str(&format!("FINGERPRINT DRIFT: {m}\n"));
        }
        for m in &self.missing_cells {
            out.push_str(&format!("MISSING FROM BASELINE: {m}\n"));
        }
        out.push_str(&format!(
            "{:<24} {:>14} {:>14} {:>8}\n",
            "program", "base(norm)", "now(norm)", "ratio"
        ));
        for t in &self.timings {
            out.push_str(&format!(
                "{:<24} {:>14.4} {:>14.4} {:>8.3}\n",
                t.program, t.baseline_norm, t.current_norm, t.ratio
            ));
        }
        out.push_str(&format!(
            "geomean ratio {:.3} (tolerance +{:.0}%): {}\n",
            self.geomean_ratio,
            self.tolerance * 100.0,
            if self.ok() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// Gates `current` against `baseline`: fingerprint equality per
/// program plus a geomean latency-regression bound. Programs only in
/// the baseline are ignored; programs only in `current` fail the gate.
pub fn gate(baseline: &ServiceBaseline, current: &ServiceBaseline, tolerance: f64) -> GateReport {
    let mut fingerprint_mismatches = Vec::new();
    let mut missing_cells = Vec::new();
    let mut timings = Vec::new();
    let mut log_sum = 0.0f64;
    for cell in &current.cells {
        let Some(base) = baseline.get(&cell.program) else {
            missing_cells.push(cell.program.clone());
            continue;
        };
        if base.fingerprint() != cell.fingerprint() {
            fingerprint_mismatches.push(format!(
                "{}: baseline (gates {}, swaps {}, depth {}, qubits {}, aqv {}) vs current (gates {}, swaps {}, depth {}, qubits {}, aqv {})",
                cell.program,
                base.gates, base.swaps, base.depth, base.qubits, base.aqv,
                cell.gates, cell.swaps, cell.depth, cell.qubits, cell.aqv,
            ));
        }
        let base_cal = baseline.calibration_ns.max(1) as f64;
        let cur_cal = current.calibration_ns.max(1) as f64;
        let norm_ratio = |b: u64, c: u64| {
            let b = b as f64 / base_cal;
            if b > 0.0 {
                (c as f64 / cur_cal) / b
            } else {
                1.0
            }
        };
        let ratio = norm_ratio(base.p50_ns, cell.p50_ns).min(norm_ratio(base.min_ns, cell.min_ns));
        log_sum += ratio.max(f64::MIN_POSITIVE).ln();
        timings.push(CellComparison {
            program: cell.program.clone(),
            baseline_norm: base.p50_ns as f64 / base_cal,
            current_norm: cell.p50_ns as f64 / cur_cal,
            ratio,
        });
    }
    let geomean_ratio = if timings.is_empty() {
        1.0
    } else {
        (log_sum / timings.len() as f64).exp()
    };
    GateReport {
        fingerprint_mismatches,
        missing_cells,
        timings,
        geomean_ratio,
        tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(program: &str, p50_ns: u64, gates: u64) -> ServiceCell {
        ServiceCell {
            program: program.to_string(),
            p50_ns,
            p99_ns: p50_ns * 2,
            min_ns: p50_ns,
            samples: 3,
            gates,
            swaps: 1,
            depth: 2,
            qubits: 3,
            aqv: 4,
        }
    }

    fn baseline_of(cells: Vec<ServiceCell>, calibration_ns: u64) -> ServiceBaseline {
        ServiceBaseline {
            schema: SCHEMA_VERSION,
            calibration_ns,
            throughput_rps: 100.0,
            cells,
        }
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let baseline = baseline_of(vec![cell("adder", 1_000_000, 42)], 50_000_000);
        let text = serde_json::to_string_pretty(&baseline).unwrap();
        assert_eq!(parse(&text).unwrap(), baseline);
    }

    #[test]
    fn schema_drift_is_rejected() {
        let baseline = baseline_of(vec![], 1);
        let text = serde_json::to_string(&baseline)
            .unwrap()
            .replace("\"schema\":1", "\"schema\":999");
        assert!(parse(&text).unwrap_err().contains("schema"));
    }

    #[test]
    fn identical_runs_pass_and_regressions_fail() {
        let base = baseline_of(vec![cell("adder", 1_000_000, 42)], 50_000_000);
        assert!(gate(&base, &base, 0.15).ok());
        let mut slow = base.clone();
        slow.cells[0].p50_ns = 2_000_000;
        slow.cells[0].min_ns = 2_000_000;
        let report = gate(&base, &slow, 0.15);
        assert!(!report.ok());
        assert!(report.geomean_ratio > 1.9);
    }

    #[test]
    fn calibration_normalizes_machine_speed() {
        let base = baseline_of(vec![cell("adder", 1_000_000, 42)], 50_000_000);
        // Twice as slow a machine, twice the latency: ratio 1.
        let mut current = base.clone();
        current.calibration_ns = 100_000_000;
        current.cells[0].p50_ns = 2_000_000;
        current.cells[0].min_ns = 2_000_000;
        assert!(gate(&base, &current, 0.01).ok());
    }

    #[test]
    fn fingerprint_drift_always_fails() {
        let base = baseline_of(vec![cell("adder", 1_000_000, 42)], 50_000_000);
        let mut drift = base.clone();
        drift.cells[0].gates = 43;
        let report = gate(&base, &drift, 0.15);
        assert!(!report.ok());
        assert_eq!(report.fingerprint_mismatches.len(), 1);
    }

    #[test]
    fn stale_baseline_fails_and_extra_baseline_cells_are_ignored() {
        let base = baseline_of(
            vec![cell("adder", 1_000_000, 42), cell("extra", 1_000_000, 7)],
            50_000_000,
        );
        let current = baseline_of(
            vec![cell("adder", 1_000_000, 42), cell("new", 1_000_000, 9)],
            50_000_000,
        );
        let report = gate(&base, &current, 0.15);
        assert!(!report.ok());
        assert_eq!(report.missing_cells, vec!["new".to_string()]);
    }

    #[test]
    fn percentile_picks_sane_indices() {
        let xs = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&xs, 0.5), 30);
        assert_eq!(percentile(&xs, 0.99), 50);
        assert_eq!(percentile(&[7], 0.99), 7);
    }
}

//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order.
//! A compile request names the source plus an optional cell:
//!
//! ```text
//! {"id": 1, "source": "entry module main(...) { ... }",
//!  "policy": "square", "arch": "nisq", "router": "greedy"}
//! ```
//!
//! `policy`/`arch`/`router` default to `square`/`nisq`/`greedy`. The
//! optional `id` is echoed verbatim in the response so clients can
//! pipeline. Control requests use `cmd`: `{"cmd":"ping"}`,
//! `{"cmd":"stats"}` and `{"cmd":"shutdown"}`.
//!
//! Responses are `{"id", "ok": true, …}` or
//! `{"id", "ok": false, "error": "…"}`; a successful compile carries
//! the cell echo, `program_hash`, `cached`/`coalesced` flags,
//! `compile_ms`, the `report` object (byte-identical to
//! `squarec --json`'s `report` field for the same cell) and a `cache`
//! block with the live [`ServiceStats`].

use serde::{Serialize, Value};
use square_bench::SweepArch;
use square_core::{Policy, RouterKind};

use crate::service::{CompileOutcome, CompileRequest, ServiceStats};

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile a source under a cell.
    Compile {
        /// Client-chosen id, echoed in the response (`Null` if absent).
        id: Value,
        /// The compile to run.
        req: CompileRequest,
    },
    /// Liveness probe.
    Ping {
        /// Echoed id.
        id: Value,
    },
    /// Cache/counter snapshot.
    Stats {
        /// Echoed id.
        id: Value,
    },
    /// Ask the server to stop accepting connections and exit.
    Shutdown {
        /// Echoed id.
        id: Value,
    },
}

impl Request {
    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// A human-readable message when the line is not valid JSON, is
    /// not an object, or names an unknown command / policy / arch /
    /// router. The caller wraps it in an error response carrying the
    /// request id when one could be extracted.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
        if !matches!(value, Value::Map(_)) {
            return Err("request must be a JSON object".to_string());
        }
        let id = value.get("id").cloned().unwrap_or(Value::Null);
        if let Some(cmd) = value.get("cmd") {
            let cmd = cmd
                .as_str()
                .ok_or_else(|| "`cmd` must be a string".to_string())?;
            return match cmd {
                "ping" => Ok(Request::Ping { id }),
                "stats" => Ok(Request::Stats { id }),
                "shutdown" => Ok(Request::Shutdown { id }),
                other => Err(format!(
                    "unknown cmd `{other}` (expected ping, stats or shutdown)"
                )),
            };
        }
        let source = value
            .get("source")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing string field `source`".to_string())?
            .to_string();
        let policy = match value.get("policy").and_then(Value::as_str) {
            None => Policy::Square,
            Some(name) => Policy::parse(name).ok_or_else(|| format!("unknown policy `{name}`"))?,
        };
        let arch = match value.get("arch").and_then(Value::as_str) {
            None => SweepArch::NisqAuto,
            Some(spec) => SweepArch::parse(spec).ok_or_else(|| format!("unknown arch `{spec}`"))?,
        };
        let router = match value.get("router").and_then(Value::as_str) {
            None => RouterKind::Greedy,
            Some(name) => {
                RouterKind::parse(name).ok_or_else(|| format!("unknown router `{name}`"))?
            }
        };
        Ok(Request::Compile {
            id,
            req: CompileRequest {
                source,
                policy,
                arch,
                router,
            },
        })
    }

    /// The id to echo, whatever the request kind.
    pub fn id(&self) -> &Value {
        match self {
            Request::Compile { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id } => id,
        }
    }
}

/// A successful compile response.
pub fn compile_response(
    id: &Value,
    req: &CompileRequest,
    outcome: &CompileOutcome,
    stats: &ServiceStats,
) -> Value {
    Value::map([
        ("id", id.clone()),
        ("ok", Value::Bool(true)),
        ("program_hash", Value::String(outcome.program_hash.clone())),
        ("policy", Value::String(req.policy.cli_name().to_string())),
        ("arch", Value::String(req.arch.to_string())),
        ("router", Value::String(req.router.cli_name().to_string())),
        ("cached", Value::Bool(outcome.cached)),
        ("coalesced", Value::Bool(outcome.coalesced)),
        ("compile_ms", Value::Float(outcome.compile_ms)),
        ("report", (*outcome.report).clone()),
        ("cache", stats.serialize()),
    ])
}

/// An error response (parse failures, compile failures, bad requests).
pub fn error_response(id: &Value, error: &str) -> Value {
    Value::map([
        ("id", id.clone()),
        ("ok", Value::Bool(false)),
        ("error", Value::String(error.to_string())),
    ])
}

/// The `ping` response.
pub fn pong_response(id: &Value) -> Value {
    Value::map([
        ("id", id.clone()),
        ("ok", Value::Bool(true)),
        ("pong", Value::Bool(true)),
    ])
}

/// The `stats` response.
pub fn stats_response(id: &Value, stats: &ServiceStats) -> Value {
    Value::map([
        ("id", id.clone()),
        ("ok", Value::Bool(true)),
        ("cache", stats.serialize()),
    ])
}

/// The `shutdown` acknowledgement (sent before the listener stops).
pub fn shutdown_response(id: &Value) -> Value {
    Value::map([
        ("id", id.clone()),
        ("ok", Value::Bool(true)),
        ("shutdown", Value::Bool(true)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_request_defaults_fill_in() {
        let req = Request::parse(r#"{"source": "x"}"#).unwrap();
        match req {
            Request::Compile { id, req } => {
                assert!(id.is_null());
                assert_eq!(req.policy, Policy::Square);
                assert_eq!(req.arch, SweepArch::NisqAuto);
                assert_eq!(req.router, RouterKind::Greedy);
            }
            other => panic!("expected compile, got {other:?}"),
        }
    }

    #[test]
    fn explicit_cell_and_id_parse() {
        let line = r#"{"id": 7, "source": "x", "policy": "lazy",
                       "arch": "grid:4x4", "router": "lookahead"}"#;
        match Request::parse(line).unwrap() {
            Request::Compile { id, req } => {
                assert_eq!(id.as_u64(), Some(7));
                assert_eq!(req.policy, Policy::Lazy);
                assert_eq!(
                    req.arch,
                    SweepArch::Grid {
                        width: 4,
                        height: 4
                    }
                );
                assert_eq!(req.router, RouterKind::Lookahead);
            }
            other => panic!("expected compile, got {other:?}"),
        }
    }

    #[test]
    fn commands_and_errors() {
        assert!(matches!(
            Request::parse(r#"{"cmd": "ping"}"#).unwrap(),
            Request::Ping { .. }
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd": "stats", "id": "s"}"#).unwrap(),
            Request::Stats { .. }
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd": "shutdown"}"#).unwrap(),
            Request::Shutdown { .. }
        ));
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("[1, 2]").is_err());
        assert!(Request::parse(r#"{"cmd": "dance"}"#).is_err());
        assert!(Request::parse(r#"{"source": "x", "policy": "yolo"}"#).is_err());
        assert!(Request::parse(r#"{"source": "x", "arch": "torus:3"}"#).is_err());
        assert!(Request::parse(r#"{"source": "x", "router": "bgp"}"#).is_err());
        assert!(Request::parse(r#"{}"#).is_err(), "no source, no cmd");
    }
}

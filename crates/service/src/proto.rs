//! The versioned newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order.
//! Every line carries the protocol version in a `"v"` field
//! ([`PROTO_VERSION`], currently `1`). Requests may omit it — a line
//! without `"v"` is treated as speaking the current version, so
//! pre-versioning clients keep working — but a request naming any
//! *other* version is rejected with a structured
//! `"error_kind": "unsupported_version"` error instead of a confusing
//! field-level failure. Responses always carry `"v"`.
//!
//! A compile request names the source plus an optional cell:
//!
//! ```text
//! {"v": 1, "id": 1, "source": "entry module main(...) { ... }",
//!  "policy": "square", "arch": "nisq", "router": "greedy"}
//! ```
//!
//! `policy`/`arch`/`router` default to `square`/`nisq`/`greedy`. The
//! `policy` field speaks the full spec grammar (`"square,budget:64"`),
//! or the cap can come as a separate integer `"budget"` field —
//! naming it in both is rejected. The optional `id` is echoed
//! verbatim in the response so clients can pipeline. Control requests
//! use `cmd`: `{"cmd":"ping"}`, `{"cmd":"stats"}` and
//! `{"cmd":"shutdown"}`.
//!
//! Both directions are typed: a line parses into a [`Request`], and
//! the server answers by serializing a [`Response`] — there is no
//! ad-hoc field assembly outside this module. Responses are
//! `{"v", "id", "ok": true, …}` or
//! `{"v", "id", "ok": false, "error_kind": "…", "error": "…"}`; a
//! successful compile carries the cell echo, `program_hash`,
//! `cached`/`coalesced` flags, `compile_ms`, the `report` object
//! (byte-identical to `squarec --json`'s `report` field for the same
//! cell) and a `cache` block with the live [`ServiceStats`].

use std::fmt;

use serde::{Serialize, Value};
use square_bench::SweepArch;
use square_core::{BudgetPolicy, Policy, RouterKind};

use crate::service::{CompileOutcome, CompileRequest, ServiceError, ServiceStats};

/// The wire protocol version this build speaks.
pub const PROTO_VERSION: u64 = 1;

/// Why a request line was rejected before reaching the service.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The request named a protocol version this build does not speak
    /// (`None` when `"v"` was present but not an integer).
    UnsupportedVersion {
        /// The version the client asked for.
        got: Option<u64>,
    },
    /// Anything else: invalid JSON, missing/ill-typed fields, unknown
    /// command / policy / arch / router.
    Malformed(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnsupportedVersion { got: Some(v) } => {
                write!(
                    f,
                    "unsupported protocol version {v} (this server speaks {PROTO_VERSION})"
                )
            }
            ParseError::UnsupportedVersion { got: None } => {
                write!(
                    f,
                    "`v` must be an integer (this server speaks {PROTO_VERSION})"
                )
            }
            ParseError::Malformed(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile a source under a cell.
    Compile {
        /// Client-chosen id, echoed in the response (`Null` if absent).
        id: Value,
        /// The compile to run.
        req: CompileRequest,
    },
    /// Liveness probe.
    Ping {
        /// Echoed id.
        id: Value,
    },
    /// Cache/counter snapshot.
    Stats {
        /// Echoed id.
        id: Value,
    },
    /// Ask the server to stop accepting connections and exit.
    Shutdown {
        /// Echoed id.
        id: Value,
    },
}

impl Request {
    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// [`ParseError::UnsupportedVersion`] when the line names a
    /// protocol version other than [`PROTO_VERSION`];
    /// [`ParseError::Malformed`] when it is not valid JSON, is not an
    /// object, or names an unknown command / policy / arch / router.
    /// The caller wraps either in an error [`Response`] carrying the
    /// request id when one could be extracted.
    pub fn parse(line: &str) -> Result<Request, ParseError> {
        let malformed = ParseError::Malformed;
        let value: Value =
            serde_json::from_str(line).map_err(|e| malformed(format!("invalid JSON: {e}")))?;
        if !matches!(value, Value::Map(_)) {
            return Err(malformed("request must be a JSON object".to_string()));
        }
        // Version gate first: a client speaking a different protocol
        // revision should learn *that*, not trip over a field change.
        if let Some(v) = value.get("v") {
            let got = v.as_u64();
            if got != Some(PROTO_VERSION) {
                return Err(ParseError::UnsupportedVersion { got });
            }
        }
        let id = value.get("id").cloned().unwrap_or(Value::Null);
        if let Some(cmd) = value.get("cmd") {
            let cmd = cmd
                .as_str()
                .ok_or_else(|| malformed("`cmd` must be a string".to_string()))?;
            return match cmd {
                "ping" => Ok(Request::Ping { id }),
                "stats" => Ok(Request::Stats { id }),
                "shutdown" => Ok(Request::Shutdown { id }),
                other => Err(malformed(format!(
                    "unknown cmd `{other}` (expected ping, stats or shutdown)"
                ))),
            };
        }
        let source = value
            .get("source")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed("missing string field `source`".to_string()))?
            .to_string();
        // The policy field speaks the full `BudgetPolicy` spec grammar
        // (`"square"`, `"square,budget:64"`, `"budget:64"`), and the
        // cap can equivalently come as a separate integer `budget`
        // field; naming it in both places is ambiguous and rejected.
        let spec = match value.get("policy").and_then(Value::as_str) {
            None => BudgetPolicy::unbudgeted(Policy::Square),
            Some(name) => BudgetPolicy::parse(name)
                .ok_or_else(|| malformed(format!("unknown policy `{name}`")))?,
        };
        let policy = spec.base;
        let mut budget = spec.budget;
        if let Some(b) = value.get("budget") {
            let n = b
                .as_u64()
                .ok_or_else(|| malformed("`budget` must be a non-negative integer".to_string()))?;
            if budget.is_some() {
                return Err(malformed(
                    "budget named in both `policy` and `budget`".to_string(),
                ));
            }
            budget = Some(n as usize);
        }
        let arch = match value.get("arch").and_then(Value::as_str) {
            None => SweepArch::NisqAuto,
            Some(spec) => {
                SweepArch::parse(spec).ok_or_else(|| malformed(format!("unknown arch `{spec}`")))?
            }
        };
        let router = match value.get("router").and_then(Value::as_str) {
            None => RouterKind::Greedy,
            Some(name) => RouterKind::parse(name)
                .ok_or_else(|| malformed(format!("unknown router `{name}`")))?,
        };
        // Absent means off, so pre-MBU clients keep speaking the same
        // cells (and getting the same bytes) as before the field existed.
        let mbu = match value.get("mbu") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| malformed("`mbu` must be a boolean".to_string()))?,
        };
        Ok(Request::Compile {
            id,
            req: CompileRequest {
                source,
                policy,
                arch,
                router,
                budget,
                mbu,
            },
        })
    }

    /// The id to echo, whatever the request kind.
    pub fn id(&self) -> &Value {
        match self {
            Request::Compile { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id } => id,
        }
    }
}

/// Machine-readable classification of an error response, carried in
/// the `error_kind` field so clients can branch without parsing
/// message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request spoke a protocol version this server does not.
    UnsupportedVersion,
    /// The request line could not be parsed into a [`Request`].
    BadRequest,
    /// The request was well-formed but the compile failed.
    CompileFailed,
    /// The compile failed because the machine (or the `budget:N` cap)
    /// ran out of qubits. The error response additionally carries a
    /// structured `detail` object: `requested`, `capacity`, `live`,
    /// `policy`, `budget`, `module` and `min_feasible`.
    OutOfQubits,
}

impl ErrorKind {
    /// The wire spelling of the kind.
    pub fn wire_name(self) -> &'static str {
        match self {
            ErrorKind::UnsupportedVersion => "unsupported_version",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::CompileFailed => "compile_failed",
            ErrorKind::OutOfQubits => "out_of_qubits",
        }
    }
}

/// A typed response line — the only way the server emits output, so
/// every wire field (including `"v"`) is stamped in one place.
#[derive(Debug, Clone)]
pub enum Response {
    /// A successful compile.
    Compile {
        /// Echoed request id.
        id: Value,
        /// The cell that was compiled (echoed back normalized).
        req: CompileRequest,
        /// The served result.
        outcome: CompileOutcome,
        /// Live cache/counter snapshot.
        stats: ServiceStats,
    },
    /// Any failure: version mismatch, parse error, compile error.
    Error {
        /// Echoed request id (`Null` when none could be extracted).
        id: Value,
        /// Machine-readable classification.
        kind: ErrorKind,
        /// Human-readable message.
        message: String,
        /// Structured diagnostic payload (today: the out-of-qubits
        /// detail object), absent for message-only errors.
        detail: Option<Value>,
    },
    /// The `ping` acknowledgement.
    Pong {
        /// Echoed request id.
        id: Value,
    },
    /// The `stats` snapshot.
    Stats {
        /// Echoed request id.
        id: Value,
        /// Live cache/counter snapshot.
        stats: ServiceStats,
    },
    /// The `shutdown` acknowledgement (sent before the listener
    /// stops).
    Shutdown {
        /// Echoed request id.
        id: Value,
    },
}

impl Response {
    /// Wraps a [`ParseError`] with the matching [`ErrorKind`].
    pub fn parse_error(id: &Value, error: &ParseError) -> Response {
        let kind = match error {
            ParseError::UnsupportedVersion { .. } => ErrorKind::UnsupportedVersion,
            ParseError::Malformed(_) => ErrorKind::BadRequest,
        };
        Response::Error {
            id: id.clone(),
            kind,
            message: error.to_string(),
            detail: None,
        }
    }

    /// Wraps a compile failure.
    pub fn compile_error(id: &Value, message: &str) -> Response {
        Response::Error {
            id: id.clone(),
            kind: ErrorKind::CompileFailed,
            message: message.to_string(),
            detail: None,
        }
    }

    /// Wraps a [`ServiceError`] with the matching [`ErrorKind`] —
    /// out-of-qubits failures keep their typed kind plus the
    /// structured `detail` object, everything else degrades to
    /// `compile_failed` with a message.
    pub fn service_error(id: &Value, error: &ServiceError) -> Response {
        let (kind, detail) = match error {
            ServiceError::OutOfQubits(e) => {
                (ErrorKind::OutOfQubits, Some(square_bench::error_json(e)))
            }
            ServiceError::Parse(_) | ServiceError::Compile(_) => (ErrorKind::CompileFailed, None),
        };
        Response::Error {
            id: id.clone(),
            kind,
            message: error.to_string(),
            detail,
        }
    }

    /// Lowers the response to the wire JSON object.
    pub fn serialize(&self) -> Value {
        let envelope = |id: &Value, ok: bool| {
            vec![
                ("v", Value::Int(PROTO_VERSION as i64)),
                ("id", id.clone()),
                ("ok", Value::Bool(ok)),
            ]
        };
        match self {
            Response::Compile {
                id,
                req,
                outcome,
                stats,
            } => {
                let mut fields = envelope(id, true);
                fields.extend([
                    ("program_hash", Value::String(outcome.program_hash.clone())),
                    ("policy", Value::String(req.policy.cli_name().to_string())),
                    ("arch", Value::String(req.arch.to_string())),
                    ("router", Value::String(req.router.cli_name().to_string())),
                ]);
                // Echoed only for budgeted cells so unbudgeted
                // responses stay byte-identical to the pre-budget wire.
                if let Some(n) = req.budget {
                    fields.push(("budget", Value::UInt(n as u64)));
                }
                // Same presence-gating for the MBU flag.
                if req.mbu {
                    fields.push(("mbu", Value::Bool(true)));
                }
                fields.extend([
                    ("cached", Value::Bool(outcome.cached)),
                    ("coalesced", Value::Bool(outcome.coalesced)),
                    ("compile_ms", Value::Float(outcome.compile_ms)),
                    ("report", (*outcome.report).clone()),
                    ("cache", stats.serialize()),
                ]);
                Value::map(fields)
            }
            Response::Error {
                id,
                kind,
                message,
                detail,
            } => {
                let mut fields = envelope(id, false);
                fields.extend([
                    ("error_kind", Value::String(kind.wire_name().to_string())),
                    ("error", Value::String(message.clone())),
                ]);
                if let Some(detail) = detail {
                    fields.push(("detail", detail.clone()));
                }
                Value::map(fields)
            }
            Response::Pong { id } => {
                let mut fields = envelope(id, true);
                fields.push(("pong", Value::Bool(true)));
                Value::map(fields)
            }
            Response::Stats { id, stats } => {
                let mut fields = envelope(id, true);
                fields.push(("cache", stats.serialize()));
                Value::map(fields)
            }
            Response::Shutdown { id } => {
                let mut fields = envelope(id, true);
                fields.push(("shutdown", Value::Bool(true)));
                Value::map(fields)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_request_defaults_fill_in() {
        let req = Request::parse(r#"{"source": "x"}"#).unwrap();
        match req {
            Request::Compile { id, req } => {
                assert!(id.is_null());
                assert_eq!(req.policy, Policy::Square);
                assert_eq!(req.arch, SweepArch::NisqAuto);
                assert_eq!(req.router, RouterKind::Greedy);
            }
            other => panic!("expected compile, got {other:?}"),
        }
    }

    #[test]
    fn explicit_cell_and_id_parse() {
        let line = r#"{"v": 1, "id": 7, "source": "x", "policy": "lazy",
                       "arch": "grid:4x4", "router": "lookahead"}"#;
        match Request::parse(line).unwrap() {
            Request::Compile { id, req } => {
                assert_eq!(id.as_u64(), Some(7));
                assert_eq!(req.policy, Policy::Lazy);
                assert_eq!(
                    req.arch,
                    SweepArch::Grid {
                        width: 4,
                        height: 4
                    }
                );
                assert_eq!(req.router, RouterKind::Lookahead);
            }
            other => panic!("expected compile, got {other:?}"),
        }
    }

    #[test]
    fn commands_and_errors() {
        assert!(matches!(
            Request::parse(r#"{"cmd": "ping"}"#).unwrap(),
            Request::Ping { .. }
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd": "stats", "id": "s"}"#).unwrap(),
            Request::Stats { .. }
        ));
        assert!(matches!(
            Request::parse(r#"{"v": 1, "cmd": "shutdown"}"#).unwrap(),
            Request::Shutdown { .. }
        ));
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("[1, 2]").is_err());
        assert!(Request::parse(r#"{"cmd": "dance"}"#).is_err());
        assert!(Request::parse(r#"{"source": "x", "policy": "yolo"}"#).is_err());
        assert!(Request::parse(r#"{"source": "x", "arch": "torus:3"}"#).is_err());
        assert!(Request::parse(r#"{"source": "x", "router": "bgp"}"#).is_err());
        assert!(Request::parse(r#"{}"#).is_err(), "no source, no cmd");
    }

    #[test]
    fn budget_parses_from_either_spelling() {
        // Inline in the policy spec…
        match Request::parse(r#"{"source": "x", "policy": "square,budget:64"}"#).unwrap() {
            Request::Compile { req, .. } => {
                assert_eq!(req.policy, Policy::Square);
                assert_eq!(req.budget, Some(64));
            }
            other => panic!("expected compile, got {other:?}"),
        }
        // …or as a dedicated integer field.
        match Request::parse(r#"{"source": "x", "policy": "lazy", "budget": 7}"#).unwrap() {
            Request::Compile { req, .. } => {
                assert_eq!(req.policy, Policy::Lazy);
                assert_eq!(req.budget, Some(7));
            }
            other => panic!("expected compile, got {other:?}"),
        }
        // Both at once is ambiguous; ill-typed budgets are malformed.
        assert!(Request::parse(r#"{"source": "x", "policy": "budget:3", "budget": 4}"#).is_err());
        assert!(Request::parse(r#"{"source": "x", "budget": "lots"}"#).is_err());
    }

    #[test]
    fn mbu_parses_gated_and_defaults_off() {
        // Absent means off — the pre-MBU wire is unchanged.
        match Request::parse(r#"{"source": "x"}"#).unwrap() {
            Request::Compile { req, .. } => assert!(!req.mbu),
            other => panic!("expected compile, got {other:?}"),
        }
        match Request::parse(r#"{"source": "x", "mbu": true}"#).unwrap() {
            Request::Compile { req, .. } => assert!(req.mbu),
            other => panic!("expected compile, got {other:?}"),
        }
        assert!(Request::parse(r#"{"source": "x", "mbu": "yes"}"#).is_err());
    }

    #[test]
    fn out_of_qubits_errors_carry_typed_kind_and_detail() {
        let e = square_core::CompileError::OutOfQubits {
            requested: 4,
            capacity: 16,
            live: 14,
            policy: Policy::Square,
            budget: Some(16),
            module: Some("mul".to_string()),
            min_feasible: Some(18),
        };
        let resp = Response::service_error(&Value::Int(9), &ServiceError::OutOfQubits(Box::new(e)))
            .serialize();
        assert_eq!(
            resp.get("error_kind").and_then(Value::as_str),
            Some("out_of_qubits")
        );
        let detail = resp.get("detail").expect("structured detail present");
        assert_eq!(detail.get("requested").and_then(Value::as_u64), Some(4));
        assert_eq!(detail.get("min_feasible").and_then(Value::as_u64), Some(18));
        assert_eq!(detail.get("module").and_then(Value::as_str), Some("mul"));
        // Plain compile failures stay message-only.
        let plain =
            Response::service_error(&Value::Null, &ServiceError::Compile("boom".to_string()))
                .serialize();
        assert_eq!(
            plain.get("error_kind").and_then(Value::as_str),
            Some("compile_failed")
        );
        assert!(plain.get("detail").is_none());
    }

    #[test]
    fn version_gate_rejects_other_versions() {
        let err = Request::parse(r#"{"v": 2, "cmd": "ping"}"#).unwrap_err();
        assert_eq!(err, ParseError::UnsupportedVersion { got: Some(2) });
        let err = Request::parse(r#"{"v": "one", "cmd": "ping"}"#).unwrap_err();
        assert_eq!(err, ParseError::UnsupportedVersion { got: None });
        // Version-less lines speak the current protocol.
        assert!(Request::parse(r#"{"cmd": "ping"}"#).is_ok());
        // The structured response names the kind on the wire.
        let resp = Response::parse_error(&Value::Null, &err).serialize();
        assert_eq!(
            resp.get("error_kind").and_then(Value::as_str),
            Some("unsupported_version")
        );
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn responses_carry_the_version() {
        for resp in [
            Response::Pong { id: Value::Int(3) },
            Response::Shutdown { id: Value::Null },
            Response::compile_error(&Value::Int(1), "boom"),
        ] {
            let v = resp.serialize();
            assert_eq!(v.get("v").and_then(Value::as_u64), Some(PROTO_VERSION));
        }
        let err = Response::compile_error(&Value::Int(1), "boom").serialize();
        assert_eq!(
            err.get("error_kind").and_then(Value::as_str),
            Some("compile_failed")
        );
    }
}

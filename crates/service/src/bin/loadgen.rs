//! `loadgen` — the squared traffic generator.
//!
//! ```text
//! loadgen --addr HOST:PORT [--corpus DIR]… [--catalog NAME,NAME,…]
//!         [--clients N] [--requests M] [--open --rate R]
//!         [--policy NAME] [--arch SPEC] [--router NAME]
//!         [--json] [--assert-zero-errors] [--assert-cache-hits]
//! ```
//!
//! `N` concurrent clients (default 8) each send `M` requests (default
//! 50) over their own TCP connection, cycling through the corpus:
//! every `.sq` file in each `--corpus` directory plus any `--catalog`
//! benchmarks rendered from the built-in workload catalog. Clients
//! start at staggered corpus offsets so identical programs are in
//! flight simultaneously — exactly the duplicate traffic the server's
//! report cache and in-flight coalescing exist for.
//!
//! Closed loop by default (send, await response, repeat). `--open`
//! with `--rate R` schedules sends at `R` req/s per client and
//! measures latency from the *scheduled* send time, so a stalling
//! server cannot hide queueing delay (no coordinated omission).
//!
//! The summary — request counts, errors, req/s, latency percentiles,
//! per-program p50 and the server's final cache counters — prints to
//! stdout (JSON with `--json`, `loadgen … --json | jq .` stays
//! valid); progress goes to stderr. `--assert-zero-errors` and
//! `--assert-cache-hits` turn the summary into a CI check via the
//! exit code.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Value;
use square_bench::SweepArch;
use square_core::{Policy, RouterKind};
use square_service::proto::PROTO_VERSION;
use square_workloads::{sq_source, Benchmark};

const USAGE: &str = "usage: loadgen --addr HOST:PORT [--corpus DIR]... \
     [--catalog NAME,NAME,...] [--clients N] [--requests M] [--open --rate R] \
     [--policy lazy|eager|square|laa] [--arch SPEC] [--router greedy|lookahead] \
     [--json] [--assert-zero-errors] [--assert-cache-hits]";

struct Options {
    addr: String,
    corpus_dirs: Vec<PathBuf>,
    catalog: Vec<Benchmark>,
    clients: usize,
    requests: usize,
    open_loop: bool,
    rate: f64,
    policy: Policy,
    arch: SweepArch,
    router: RouterKind,
    json: bool,
    assert_zero_errors: bool,
    assert_cache_hits: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: String::new(),
        corpus_dirs: Vec::new(),
        catalog: Vec::new(),
        clients: 8,
        requests: 50,
        open_loop: false,
        rate: 0.0,
        policy: Policy::Square,
        arch: SweepArch::NisqAuto,
        router: RouterKind::Greedy,
        json: false,
        assert_zero_errors: false,
        assert_cache_hits: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value(arg)?,
            "--corpus" => opts.corpus_dirs.push(PathBuf::from(value(arg)?)),
            "--catalog" => {
                for name in value(arg)?.split(',').filter(|s| !s.is_empty()) {
                    opts.catalog.push(
                        Benchmark::from_name(name)
                            .ok_or_else(|| format!("--catalog: unknown benchmark `{name}`"))?,
                    );
                }
            }
            "--clients" => {
                opts.clients = value(arg)?
                    .parse()
                    .map_err(|_| "--clients: not a number".to_string())?;
            }
            "--requests" => {
                opts.requests = value(arg)?
                    .parse()
                    .map_err(|_| "--requests: not a number".to_string())?;
            }
            "--open" => opts.open_loop = true,
            "--rate" => {
                opts.rate = value(arg)?
                    .parse()
                    .map_err(|_| "--rate: not a number".to_string())?;
            }
            "--policy" => {
                let v = value(arg)?;
                opts.policy =
                    Policy::parse(&v).ok_or_else(|| format!("--policy: unknown policy `{v}`"))?;
            }
            "--arch" => {
                // One grammar everywhere: `SweepArch::parse` is a thin
                // shim over `ArchSpec`'s `FromStr` plus the `nisq`/`ft`
                // comm-model aliases.
                let v = value(arg)?;
                opts.arch =
                    SweepArch::parse(&v).ok_or_else(|| format!("--arch: unknown arch `{v}`"))?;
            }
            "--router" => {
                let v = value(arg)?;
                opts.router = RouterKind::parse(&v)
                    .ok_or_else(|| format!("--router: unknown router `{v}`"))?;
            }
            "--json" => opts.json = true,
            "--assert-zero-errors" => opts.assert_zero_errors = true,
            "--assert-cache-hits" => opts.assert_cache_hits = true,
            flag => return Err(format!("unknown flag `{flag}`")),
        }
    }
    if opts.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    if opts.corpus_dirs.is_empty() && opts.catalog.is_empty() {
        return Err("no corpus: pass --corpus DIR and/or --catalog NAMES".to_string());
    }
    if opts.open_loop && opts.rate <= 0.0 {
        return Err("--open needs --rate R > 0".to_string());
    }
    if opts.clients == 0 || opts.requests == 0 {
        return Err("--clients and --requests must be > 0".to_string());
    }
    Ok(opts)
}

/// Loads the corpus as `(name, source)` pairs, files sorted per dir.
fn load_corpus(opts: &Options) -> Result<Vec<(String, String)>, String> {
    let mut corpus = Vec::new();
    for dir in &opts.corpus_dirs {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "sq"))
            .collect();
        files.sort();
        for path in files {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            // Flatten multi-file sources: the wire carries one
            // self-contained program per request.
            corpus.push((name, square_service::gate::wire_source(&path)?));
        }
    }
    for &bench in &opts.catalog {
        let source = sq_source(bench).map_err(|e| format!("{}: {e}", bench.name()))?;
        corpus.push((format!("catalog:{}", bench.name()), source));
    }
    Ok(corpus)
}

/// One completed request as seen by a client.
struct Sample {
    program: String,
    latency_ns: u64,
    ok: bool,
}

/// JSON-escapes into a request line without building a `Value` tree —
/// the hot path of the generator.
fn request_line(id: usize, source: &str, opts: &Options) -> String {
    let escaped = serde_json::to_string(&Value::String(source.to_string()))
        .expect("string serialization is infallible");
    format!(
        "{{\"v\": {v}, \"id\": {id}, \"source\": {escaped}, \"policy\": \"{}\", \"arch\": \"{}\", \"router\": \"{}\"}}\n",
        opts.policy.cli_name(),
        opts.arch,
        opts.router.cli_name(),
        v = PROTO_VERSION
    )
}

/// Runs one client's closed or open loop. Returns its samples.
fn run_client(
    client: usize,
    corpus: &[(String, String)],
    opts: &Options,
) -> Result<Vec<Sample>, String> {
    let stream =
        TcpStream::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
    // One small line per request: Nagle + delayed ACK would turn
    // every microsecond compile into a ~40ms round trip.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut samples = Vec::with_capacity(opts.requests);
    let start = Instant::now();
    let mut line = String::new();
    for i in 0..opts.requests {
        // Staggered start offset: client k begins at corpus item k, so
        // several clients request the same program at the same time.
        let (name, source) = &corpus[(client + i) % corpus.len()];
        let scheduled = if opts.open_loop {
            let at = Duration::from_secs_f64(i as f64 / opts.rate);
            let now = start.elapsed();
            if at > now {
                std::thread::sleep(at - now);
            }
            at
        } else {
            start.elapsed()
        };
        let request = request_line(i, source, opts);
        writer
            .write_all(request.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if line.is_empty() {
            return Err("server closed the connection".to_string());
        }
        let latency = start.elapsed().saturating_sub(scheduled);
        let ok = serde_json::from_str(&line)
            .ok()
            .and_then(|v: Value| v.get("ok").and_then(Value::as_bool))
            .unwrap_or(false);
        samples.push(Sample {
            program: name.clone(),
            latency_ns: latency.as_nanos() as u64,
            ok,
        });
    }
    Ok(samples)
}

/// Asks the server for its cache counters.
fn fetch_stats(addr: &str) -> Result<Value, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    writer
        .write_all(b"{\"v\": 1, \"cmd\": \"stats\"}\n")
        .map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("recv: {e}"))?;
    let response = serde_json::from_str(&line).map_err(|e| format!("stats response: {e}"))?;
    response
        .get("cache")
        .cloned()
        .ok_or_else(|| "stats response missing `cache`".to_string())
}

fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let corpus = match load_corpus(&opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loadgen: {} clients x {} requests over {} programs against {} ({})",
        opts.clients,
        opts.requests,
        corpus.len(),
        opts.addr,
        if opts.open_loop {
            format!("open loop, {} req/s per client", opts.rate)
        } else {
            "closed loop".to_string()
        }
    );

    let corpus = Arc::new(corpus);
    let opts = Arc::new(opts);
    let bench_start = Instant::now();
    let results: Vec<Result<Vec<Sample>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|client| {
                let corpus = Arc::clone(&corpus);
                let opts = Arc::clone(&opts);
                scope.spawn(move || run_client(client, &corpus, &opts))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let duration_s = bench_start.elapsed().as_secs_f64().max(1e-9);

    let mut samples = Vec::new();
    let mut client_failures = 0usize;
    for result in results {
        match result {
            Ok(mut s) => samples.append(&mut s),
            Err(e) => {
                eprintln!("loadgen: client failed: {e}");
                client_failures += 1;
            }
        }
    }
    let errors = samples.iter().filter(|s| !s.ok).count() + client_failures * opts.requests;
    let total = samples.len();
    let mut latencies: Vec<u64> = samples.iter().map(|s| s.latency_ns).collect();
    latencies.sort_unstable();
    let mean_ns = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };

    let mut per_program: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for s in &samples {
        per_program
            .entry(s.program.clone())
            .or_default()
            .push(s.latency_ns);
    }
    let per_program_json: Vec<(String, Value)> = per_program
        .iter()
        .map(|(name, times)| {
            let mut times = times.clone();
            times.sort_unstable();
            (
                name.clone(),
                Value::map([
                    ("requests", Value::UInt(times.len() as u64)),
                    ("p50_ms", Value::Float(ms(percentile_ns(&times, 0.5)))),
                    ("p99_ms", Value::Float(ms(percentile_ns(&times, 0.99)))),
                ]),
            )
        })
        .collect();

    let cache = match fetch_stats(&opts.addr) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("loadgen: cannot fetch server stats: {e}");
            Value::Null
        }
    };
    let report_hits = cache
        .get("reports")
        .and_then(|r| r.get("hits"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let coalesced = cache.get("coalesced").and_then(Value::as_u64).unwrap_or(0);

    let summary = Value::map([
        ("clients", Value::UInt(opts.clients as u64)),
        ("requests_per_client", Value::UInt(opts.requests as u64)),
        ("total", Value::UInt(total as u64)),
        ("errors", Value::UInt(errors as u64)),
        ("duration_s", Value::Float(duration_s)),
        ("rps", Value::Float(total as f64 / duration_s)),
        (
            "latency_ms",
            Value::map([
                ("p50", Value::Float(ms(percentile_ns(&latencies, 0.5)))),
                ("p90", Value::Float(ms(percentile_ns(&latencies, 0.9)))),
                ("p99", Value::Float(ms(percentile_ns(&latencies, 0.99)))),
                (
                    "max",
                    Value::Float(ms(latencies.last().copied().unwrap_or(0))),
                ),
                ("mean", Value::Float(ms(mean_ns))),
            ]),
        ),
        ("per_program", Value::Map(per_program_json)),
        ("cache", cache),
    ]);

    if opts.json {
        match serde_json::to_string_pretty(&summary) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("loadgen: serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!(
            "{} requests in {:.2}s ({:.0} req/s), {} errors",
            total,
            duration_s,
            total as f64 / duration_s,
            errors
        );
        println!(
            "latency p50 {:.2}ms p90 {:.2}ms p99 {:.2}ms max {:.2}ms",
            ms(percentile_ns(&latencies, 0.5)),
            ms(percentile_ns(&latencies, 0.9)),
            ms(percentile_ns(&latencies, 0.99)),
            ms(latencies.last().copied().unwrap_or(0)),
        );
        println!("report-cache hits {report_hits}, coalesced {coalesced}");
    }

    if opts.assert_zero_errors && errors > 0 {
        eprintln!("loadgen: FAIL: {errors} errors (asserted zero)");
        return ExitCode::FAILURE;
    }
    if opts.assert_cache_hits && report_hits + coalesced == 0 {
        eprintln!("loadgen: FAIL: no shared-cache hits on duplicate traffic");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

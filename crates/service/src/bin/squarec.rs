//! `squarec` — the `.sq` compiler driver.
//!
//! Compiles textual `.sq` programs (the `square-lang` frontend) end to
//! end through the SQUARE pipeline: parse → resolve → lower → compile
//! → route, optionally running the `square-verify` translation-
//! validation oracle stack over the result.
//!
//! ```text
//! squarec FILE.sq [FILE2.sq …] [flags]
//!   --search-path DIR    extra directory for `import` resolution
//!                        (repeatable; the importing file's directory
//!                        is always tried first, `lib/` always last)
//!   --policy SPEC        lazy | eager | square | laa, optionally
//!                        with a `,budget:N` hard width cap
//!                        (e.g. `square,budget:64`)           (default square)
//!   --arch SPEC          nisq | ft | grid:WxH | full:N | line:N
//!                        | heavyhex[:D] | ring[:N]          (default nisq)
//!   --router NAME        greedy | lookahead                 (default greedy)
//!   --mbu                lower eligible uncompute blocks to
//!                        measure-and-correct when cheaper     (default off)
//!   --all-policies       compile each file under all four policies
//!   --validate           replay + diff the compiled schedule against
//!                        the reference semantics (oracle stack)
//!   --emit WHAT          report | listing | schedule         (default report)
//!   --json               machine-readable output on stdout
//!   --roundtrip          also check parse → pretty → parse is the identity
//!   --dump-catalog DIR   write the 17 built-in benchmarks as .sq files
//!   --serve ADDR         run the squared compile service on ADDR
//!                        instead of compiling files
//! ```
//!
//! Parse errors render as spanned, multi-error diagnostics with
//! line/column carets on stderr. Exit code 0 when everything
//! succeeded, 1 on any parse/compile/validation failure, 2 on usage
//! errors. With `--json`, stdout carries exactly one JSON document
//! (`squarec … --json | jq .` stays valid), everything else goes to
//! stderr.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use serde::Value;
use square_bench::{error_json, report_json, SweepArch};
use square_core::{compile, BudgetPolicy, CompileError, CompileReport, Policy, RouterKind};
use square_qir::pretty::program_listing;
use square_qir::Program;
use square_workloads::{sq_file_stem, sq_source, Benchmark};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Emit {
    Report,
    Listing,
    Schedule,
}

struct Options {
    files: Vec<PathBuf>,
    search_path: Vec<PathBuf>,
    policy: Policy,
    budget: Option<usize>,
    arch: SweepArch,
    router: RouterKind,
    mbu: bool,
    all_policies: bool,
    validate: bool,
    emit: Emit,
    json: bool,
    roundtrip: bool,
    dump_catalog: Option<PathBuf>,
    serve: Option<String>,
}

/// Set as soon as any file fails, so an early exit (EPIPE on stdout)
/// still reports the failure through the exit code.
static FAILED: AtomicBool = AtomicBool::new(false);

fn mark_failed() {
    FAILED.store(true, Ordering::Relaxed);
}

const USAGE: &str = "usage: squarec FILE.sq [FILE2.sq …] \
     [--search-path DIR]… \
     [--policy lazy|eager|square|laa[,budget:N]] \
     [--arch nisq|ft|grid:WxH|full:N|line:N|heavyhex[:D]|ring[:N]] \
     [--router greedy|lookahead] [--mbu] [--all-policies] [--validate] \
     [--emit report|listing|schedule] [--json] [--roundtrip] [--dump-catalog DIR] \
     [--serve ADDR]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        search_path: Vec::new(),
        policy: Policy::Square,
        budget: None,
        arch: SweepArch::NisqAuto,
        router: RouterKind::Greedy,
        mbu: false,
        all_policies: false,
        validate: false,
        emit: Emit::Report,
        json: false,
        roundtrip: false,
        dump_catalog: None,
        serve: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--search-path" => opts.search_path.push(PathBuf::from(value(arg)?)),
            "--policy" => {
                // Full spec grammar: base name, `budget:N` cap, or
                // both (`square,budget:64`).
                let v = value(arg)?;
                let spec = BudgetPolicy::parse(&v)
                    .ok_or_else(|| format!("--policy: unknown policy `{v}`"))?;
                opts.policy = spec.base;
                opts.budget = spec.budget;
            }
            "--arch" => {
                // One grammar everywhere: `SweepArch::parse` is a thin
                // shim over `ArchSpec`'s `FromStr` plus the `nisq`/`ft`
                // comm-model aliases.
                let v = value(arg)?;
                opts.arch =
                    SweepArch::parse(&v).ok_or_else(|| format!("--arch: unknown arch `{v}`"))?;
            }
            "--router" => {
                let v = value(arg)?;
                opts.router = RouterKind::parse(&v)
                    .ok_or_else(|| format!("--router: unknown router `{v}`"))?;
            }
            "--mbu" => opts.mbu = true,
            "--all-policies" => opts.all_policies = true,
            "--validate" => opts.validate = true,
            "--emit" => {
                opts.emit = match value(arg)?.as_str() {
                    "report" => Emit::Report,
                    "listing" => Emit::Listing,
                    "schedule" => Emit::Schedule,
                    other => return Err(format!("--emit: unknown artifact `{other}`")),
                };
            }
            "--json" => opts.json = true,
            "--roundtrip" => opts.roundtrip = true,
            "--dump-catalog" => opts.dump_catalog = Some(PathBuf::from(value(arg)?)),
            "--serve" => opts.serve = Some(value(arg)?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if opts.serve.is_some() && !opts.files.is_empty() {
        return Err("--serve takes no input files".to_string());
    }
    if opts.files.is_empty() && opts.dump_catalog.is_none() && opts.serve.is_none() {
        return Err("no input files (and no --dump-catalog / --serve)".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    // `--serve` turns the driver into the squared service: same
    // compile path, shared caches, the protocol documented in
    // `square_service::proto`.
    if let Some(addr) = &opts.serve {
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("--serve {addr}: cannot bind: {e}");
                return ExitCode::FAILURE;
            }
        };
        let service = std::sync::Arc::new(square_service::CompileService::new(
            square_service::ServiceConfig::default(),
        ));
        return match square_service::server::serve(
            listener,
            service,
            square_service::server::ServerConfig::default(),
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("squared: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(dir) = &opts.dump_catalog {
        if let Err(message) = dump_catalog(dir) {
            eprintln!("{message}");
            mark_failed();
        }
    }

    let mut json_cells: Vec<Value> = Vec::new();
    for file in &opts.files {
        if !run_file(file, &opts, &mut json_cells) {
            mark_failed();
        }
    }
    if opts.json && !opts.files.is_empty() {
        match serde_json::to_string_pretty(&Value::Seq(json_cells)) {
            Ok(text) => {
                write_stdout(&text);
                write_stdout("\n");
            }
            Err(error) => {
                eprintln!("serialization failed: {error}");
                mark_failed();
            }
        }
    }
    if FAILED.load(Ordering::Relaxed) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes every catalog benchmark as a `.sq` file under `dir`.
fn dump_catalog(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    for bench in Benchmark::ALL {
        let source =
            sq_source(bench).map_err(|e| format!("{}: render failed: {e}", bench.name()))?;
        let path = dir.join(format!("{}.sq", sq_file_stem(bench)));
        std::fs::write(&path, &source)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "{:<12} -> {} ({} lines)",
            bench.name(),
            path.display(),
            source.lines().count()
        );
    }
    Ok(())
}

/// Processes one input file. Returns false on any failure.
fn run_file(file: &Path, opts: &Options, json_cells: &mut Vec<Value>) -> bool {
    let display = file.display().to_string();
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{display}: cannot read: {e}");
            return false;
        }
    };
    // Multi-file parse: `import`s resolve against the file's own
    // directory, then --search-path directories, then `lib/`. An
    // import-free file takes exactly the single-file path.
    let loader = square_lang::SearchPathLoader::with_default_lib(opts.search_path.clone());
    let (map, parsed) = square_lang::parse_files(&display, &source, &loader);
    let program = match parsed {
        Ok(p) => p,
        Err(diags) => {
            eprint!("{}", map.render(&diags));
            eprintln!(
                "{display}: {} error{}",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            );
            return false;
        }
    };

    if opts.roundtrip && !report_roundtrip(&program, &display) {
        return false;
    }

    // Listing emission needs no compile — but `--validate` still means
    // "run the oracle stack", so only skip the compile loop when
    // nothing asked for one.
    let policies: Vec<Policy> = if opts.all_policies {
        Policy::ALL.to_vec()
    } else {
        vec![opts.policy]
    };
    let mut ok = true;
    let mut rows: Vec<(Policy, CompileReport)> = Vec::new();
    if opts.validate || opts.emit != Emit::Listing {
        for &policy in &policies {
            let mut config = opts
                .arch
                .config(policy)
                .with_router(opts.router)
                .with_budget(opts.budget)
                .with_mbu(opts.mbu);
            if opts.emit == Emit::Schedule {
                config = config.with_schedule();
            }
            let outcome = if opts.validate {
                square_verify::validate(&program, &[], &config)
                    .map(|v| v.report)
                    .map_err(validation_failure)
            } else {
                compile(&program, &config).map_err(compile_failure)
            };
            let spec = BudgetPolicy {
                base: policy,
                budget: opts.budget,
            };
            match outcome {
                Ok(report) => rows.push((policy, report)),
                Err((error, detail)) => {
                    eprintln!("{display}: {} on {}: {error}", spec.cli_name(), opts.arch);
                    if opts.json {
                        let mut cell = vec![
                            ("file", Value::String(display.clone())),
                            ("policy", Value::String(policy.cli_name().to_string())),
                            ("arch", Value::String(opts.arch.to_string())),
                            ("router", Value::String(opts.router.cli_name().to_string())),
                            ("error", Value::String(error)),
                        ];
                        if let Some(n) = opts.budget {
                            cell.push(("budget", Value::UInt(n as u64)));
                        }
                        if let Some(detail) = detail {
                            cell.push(("error_detail", detail));
                        }
                        json_cells.push(Value::map(cell));
                    }
                    // Also mark globally, so a later early EPIPE exit
                    // still reports failure through the exit code.
                    mark_failed();
                    ok = false;
                }
            }
        }
    }

    if opts.emit == Emit::Listing {
        if !opts.json {
            write_stdout(&program_listing(&program));
        } else {
            json_cells.push(Value::map([
                ("file", Value::String(display.clone())),
                ("validated", Value::Bool(opts.validate && ok)),
                ("listing", Value::String(program_listing(&program))),
            ]));
        }
        return ok;
    }

    for (policy, report) in &rows {
        if opts.json {
            let mut cell = vec![
                ("file", Value::String(display.clone())),
                ("policy", Value::String(policy.cli_name().to_string())),
                ("arch", Value::String(opts.arch.to_string())),
                ("router", Value::String(opts.router.cli_name().to_string())),
            ];
            if let Some(n) = opts.budget {
                cell.push(("budget", Value::UInt(n as u64)));
            }
            cell.extend([
                ("validated", Value::Bool(opts.validate)),
                ("report", report_json(report)),
            ]);
            if opts.emit == Emit::Schedule {
                cell.push(("schedule", schedule_json(report)));
            }
            json_cells.push(Value::map(cell));
        } else if opts.emit == Emit::Schedule {
            let schedule = report.schedule.as_deref().unwrap_or(&[]);
            write_stdout(&format!(
                "# {display} {} {} — {} scheduled gates, depth {}\n",
                opts.arch,
                policy.cli_name(),
                schedule.len(),
                report.depth
            ));
            let mut chunk = String::new();
            for (i, g) in schedule.iter().enumerate() {
                let _ = writeln!(chunk, "{g}");
                // Flush in batches so multi-million-gate schedules
                // stream instead of materializing one giant string.
                if chunk.len() >= 1 << 16 || i + 1 == schedule.len() {
                    write_stdout(&chunk);
                    chunk.clear();
                }
            }
        }
    }
    if opts.emit == Emit::Report && !opts.json && !rows.is_empty() {
        write_stdout(&render_table(&display, opts, &rows));
    }
    ok
}

/// The scheduled physical circuit as a JSON array (one object per
/// gate, in record order).
fn schedule_json(report: &CompileReport) -> Value {
    let gates: Vec<Value> = report
        .schedule
        .as_deref()
        .unwrap_or(&[])
        .iter()
        .map(|g| {
            Value::map([
                ("gate", Value::String(g.gate.to_string())),
                ("start", Value::UInt(g.start)),
                ("dur", Value::UInt(g.dur)),
                ("comm", Value::Bool(g.is_comm)),
            ])
        })
        .collect();
    Value::Seq(gates)
}

/// Writes to stdout, exiting quietly when the reader is gone —
/// `squarec … --emit schedule | head` must not panic on EPIPE. The
/// exit code still reflects any failure recorded so far.
fn write_stdout(text: &str) {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    if out.write_all(text.as_bytes()).is_err() || out.flush().is_err() {
        std::process::exit(i32::from(FAILED.load(Ordering::Relaxed)));
    }
}

/// Per-file mini sweep table (one row per compiled policy).
fn render_table(file: &str, opts: &Options, rows: &[(Policy, CompileReport)]) -> String {
    let mut out = String::new();
    let validated = if opts.validate { " [validated]" } else { "" };
    let budget = match opts.budget {
        Some(n) => format!(" budget:{n}"),
        None => String::new(),
    };
    out.push_str(&format!("{file} — {}{budget}{validated}\n", opts.arch));
    out.push_str(&format!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
        "policy", "gates", "swaps", "depth", "qubits", "peak", "aqv"
    ));
    for (policy, r) in rows {
        out.push_str(&format!(
            "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
            policy.label(),
            r.gates,
            r.swaps,
            r.depth,
            r.qubits,
            r.peak_active,
            r.aqv
        ));
    }
    out
}

/// Renders a compile failure for stderr and carries the structured
/// JSON diagnostic alongside. Out-of-qubits failures — the paper's
/// "too many qubits" mode — get an actionable hint: the error itself
/// already names the offending module, the live/capacity split and
/// (for budgeted runs) the minimum feasible budget.
fn compile_failure(e: CompileError) -> (String, Option<Value>) {
    let detail = error_json(&e);
    let message = match &e {
        CompileError::OutOfQubits {
            policy,
            min_feasible: Some(n),
            ..
        } => format!(
            "{e}\n  hint: retry with `--policy {},budget:{n}` or a larger --arch",
            policy.cli_name()
        ),
        CompileError::OutOfQubits { policy, .. } => format!(
            "{e}\n  hint: a width cap forces earlier reclamation — try \
             `--policy {},budget:N` with N at most the machine size, or a larger --arch",
            policy.cli_name()
        ),
        _ => e.to_string(),
    };
    (message, Some(detail))
}

/// [`compile_failure`] lifted over the oracle stack's error type:
/// compile failures keep their structured diagnostic, everything else
/// (a genuine translation-validation mismatch) stays message-only.
fn validation_failure(e: square_verify::ValidationError) -> (String, Option<Value>) {
    match e {
        square_verify::ValidationError::Compile(ce) => compile_failure(ce),
        other => (other.to_string(), None),
    }
}

/// Checks that the canonical listing of the parsed program parses back
/// to the identical program — the frontend/printer round-trip
/// (`square_lang::check_roundtrip`), reported per file.
fn report_roundtrip(program: &Program, display: &str) -> bool {
    match square_lang::check_roundtrip(program) {
        Ok(()) => {
            eprintln!("{display}: round-trip OK ({} modules)", program.len());
            true
        }
        Err(e) => {
            eprintln!("{display}: round-trip FAILED: {e}");
            false
        }
    }
}

//! `squared` — the standalone compile-service daemon.
//!
//! ```text
//! squared [--addr HOST:PORT] [--workers N] [--queue N]
//!         [--programs-cap N] [--prepared-cap N]
//!         [--topologies-cap N] [--reports-cap N]
//! ```
//!
//! Binds the address (default `127.0.0.1:7878`; use port 0 to let the
//! OS pick — the chosen port is in the stderr `listening on` line),
//! then serves the newline-delimited JSON protocol documented in
//! `square_service::proto` until a client sends `{"cmd":"shutdown"}`.
//! All logging goes to stderr; stdout is never written.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use square_service::server::{serve, ServerConfig};
use square_service::{CompileService, ServiceConfig};

const USAGE: &str = "usage: squared [--addr HOST:PORT] [--workers N] [--queue N] \
     [--programs-cap N] [--prepared-cap N] [--topologies-cap N] [--reports-cap N]";

struct Options {
    addr: String,
    server: ServerConfig,
    service: ServiceConfig,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7878".to_string(),
        server: ServerConfig::default(),
        service: ServiceConfig::default(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let number = |flag: &str, v: String| {
            v.parse::<usize>()
                .map_err(|_| format!("{flag}: not a number: `{v}`"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value(arg)?,
            "--workers" => opts.server.workers = number(arg, value(arg)?)?,
            "--queue" => opts.server.queue_depth = number(arg, value(arg)?)?,
            "--programs-cap" => opts.service.programs_cap = number(arg, value(arg)?)?,
            "--prepared-cap" => opts.service.prepared_cap = number(arg, value(arg)?)?,
            "--topologies-cap" => opts.service.topologies_cap = number(arg, value(arg)?)?,
            "--reports-cap" => opts.service.reports_cap = number(arg, value(arg)?)?,
            flag => return Err(format!("unknown flag `{flag}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("squared: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let service = Arc::new(CompileService::new(opts.service));
    match serve(listener, service, opts.server) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("squared: {e}");
            ExitCode::FAILURE
        }
    }
}

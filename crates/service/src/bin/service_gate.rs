//! `service_gate` — record and check the service latency baseline.
//!
//! ```text
//! service_gate record --out BENCH_squared.json [--samples N] [--corpus DIR]
//! service_gate check --baseline BENCH_squared.json [--samples N]
//!                    [--tolerance 0.15] [--corpus DIR]
//! ```
//!
//! `record` measures per-program request latency through an
//! in-process [`CompileService`](square_service::CompileService)
//! (report cache flushed per sample, prefix caches warm — see
//! `square_service::gate`) and writes the calibration-normalized
//! baseline JSON. `check` re-measures and gates: fingerprint drift or
//! a normalized geomean latency regression beyond the tolerance fails
//! with exit code 1. Progress and the gate table go to stderr; only
//! `record --out -` writes (the baseline JSON) to stdout.

use std::path::PathBuf;
use std::process::ExitCode;

use square_service::gate;

const USAGE: &str = "usage: service_gate record --out FILE [--samples N] [--corpus DIR]\n\
       service_gate check --baseline FILE [--samples N] [--tolerance 0.15] [--corpus DIR]";

const DEFAULT_SAMPLES: usize = 5;
const DEFAULT_TOLERANCE: f64 = 0.15;

struct Options {
    out: Option<String>,
    baseline: Option<PathBuf>,
    samples: usize,
    tolerance: f64,
    corpus: PathBuf,
}

fn parse_args(args: &[String]) -> Result<(String, Options), String> {
    let mut it = args.iter();
    let mode = it
        .next()
        .cloned()
        .ok_or_else(|| "missing mode: record or check".to_string())?;
    if mode != "record" && mode != "check" {
        return Err(format!("unknown mode `{mode}` (expected record or check)"));
    }
    let mut opts = Options {
        out: None,
        baseline: None,
        samples: DEFAULT_SAMPLES,
        tolerance: DEFAULT_TOLERANCE,
        corpus: default_corpus_dir(),
    };
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => opts.out = Some(value(arg)?),
            "--baseline" => opts.baseline = Some(PathBuf::from(value(arg)?)),
            "--samples" => {
                opts.samples = value(arg)?
                    .parse()
                    .map_err(|_| "--samples: not a number".to_string())?;
            }
            "--tolerance" => {
                opts.tolerance = value(arg)?
                    .parse()
                    .map_err(|_| "--tolerance: not a number".to_string())?;
            }
            "--corpus" => opts.corpus = PathBuf::from(value(arg)?),
            flag => return Err(format!("unknown flag `{flag}`")),
        }
    }
    match mode.as_str() {
        "record" if opts.out.is_none() => Err("record needs --out FILE".to_string()),
        "check" if opts.baseline.is_none() => Err("check needs --baseline FILE".to_string()),
        _ => Ok((mode, opts)),
    }
}

/// `examples/sq` next to the workspace root, resolved from the binary's
/// manifest so CI and local runs agree.
fn default_corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/sq")
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, opts) = parse_args(&args).map_err(|e| format!("{e}\n{USAGE}"))?;
    let corpus = gate::default_corpus(&opts.corpus)?;
    eprintln!(
        "service_gate: {} programs, {} samples each",
        corpus.len(),
        opts.samples
    );
    let current = gate::measure(&corpus, opts.samples, |line| {
        eprintln!("service_gate: {line}")
    })?;
    match mode.as_str() {
        "record" => {
            let text =
                serde_json::to_string_pretty(&current).map_err(|e| format!("serialize: {e}"))?;
            let out = opts.out.expect("validated by parse_args");
            if out == "-" {
                println!("{text}");
            } else {
                std::fs::write(&out, format!("{text}\n")).map_err(|e| format!("{out}: {e}"))?;
                eprintln!("service_gate: wrote {out}");
            }
            Ok(true)
        }
        _ => {
            let path = opts.baseline.expect("validated by parse_args");
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let baseline = gate::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            let report = gate::gate(&baseline, &current, opts.tolerance);
            eprint!("{}", report.render());
            Ok(report.ok())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("service_gate: {message}");
            ExitCode::from(2)
        }
    }
}

//! Bounded LRU caches with hit/miss/eviction accounting.
//!
//! Every shared cache in the compile service is one of these behind a
//! `Mutex`: a `HashMap` with a monotonically increasing use stamp per
//! entry. Lookups and inserts are O(1); eviction scans for the
//! least-recently-used entry, which is O(capacity) but only runs when
//! the cache is full — capacities are small (dozens to hundreds of
//! entries holding `Arc`s), so the scan never shows up next to a
//! compile.

use std::collections::HashMap;
use std::hash::Hash;

use serde::{Serialize, Value};

/// A point-in-time snapshot of one cache's counters, returned inside
/// every service response so clients can watch hit rates live.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed (entry absent or evicted).
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when no lookups have happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Serialize for CacheStats {
    fn serialize(&self) -> Value {
        Value::map([
            ("hits", Value::UInt(self.hits)),
            ("misses", Value::UInt(self.misses)),
            ("evictions", Value::UInt(self.evictions)),
            ("entries", Value::UInt(self.entries as u64)),
            ("capacity", Value::UInt(self.capacity as u64)),
        ])
    }
}

struct Slot<V> {
    value: V,
    last_use: u64,
}

/// A bounded least-recently-used map with instrumented lookups.
pub struct LruCache<K, V> {
    map: HashMap<K, Slot<V>>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency. Counts a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.clock += 1;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.last_use = self.clock;
                self.hits += 1;
                Some(slot.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used
    /// entry when the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        self.clock += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_use)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Slot {
                value,
                last_use: self.clock,
            },
        );
    }

    /// Drops every entry (counters are preserved). The service gate
    /// uses this to force repeated requests through the real compile
    /// path while keeping the other caches warm.
    pub fn flush(&mut self) {
        self.map.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// 64-bit FNV-1a over the input bytes, hex-encoded. The service's
/// content-address for request sources: deterministic, dependency-free
/// and fast; collisions would only cause a wrong *cache* answer for
/// adversarial twins, which the committed corpus and loadgen never
/// produce (and callers can always vary whitespace to split a cell).
pub fn content_hash(bytes: &[u8]) -> String {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{state:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_misses_and_evictions_are_counted() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(3, 30); // evicts 2 (LRU: 1 was just touched)
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&3), Some(30));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, 2);
    }

    #[test]
    fn recency_refresh_protects_hot_entries() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10)); // 2 is now LRU
        cache.insert(3, 30);
        assert_eq!(cache.get(&1), Some(10), "hot entry survived");
        assert_eq!(cache.get(&2), None, "cold entry evicted");
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&2), Some(20));
    }

    #[test]
    fn flush_clears_entries_but_keeps_counters() {
        let mut cache: LruCache<u32, u32> = LruCache::new(4);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        cache.flush();
        assert_eq!(cache.get(&1), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let a = content_hash(b"module main { }");
        assert_eq!(a, content_hash(b"module main { }"));
        assert_ne!(a, content_hash(b"module main {  }"));
        assert_eq!(a.len(), 16);
        // The well-known FNV-1a test vector.
        assert_eq!(content_hash(b""), "cbf29ce484222325");
    }

    #[test]
    fn hit_rate_rounds_sanely() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.insert(1, 1);
        let _ = cache.get(&1);
        let _ = cache.get(&2);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}

//! Ergonomic construction of programs, mirroring the paper's Scaffold
//! `Compute { … } Store { … } Uncompute { … }` construct.
//!
//! Modules are registered in dependency order: a call site may only
//! reference a module that has already been built, which makes the
//! call graph a DAG by construction (the paper requires modular,
//! non-recursive reversible programs).

use crate::error::QirError;
use crate::gate::Gate;
use crate::module::{Module, ModuleId, Operand, Program, Stmt};
use crate::validate;

/// Builds a [`Program`] module by module.
///
/// ```
/// use square_qir::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// let inner = b.module("inner", 2, 1, |m| {
///     let (x, out) = (m.param(0), m.param(1));
///     let a = m.ancilla(0);
///     m.cx(x, a);
///     m.store();
///     m.cx(a, out);
/// })?;
/// let main = b.module("main", 0, 2, |m| {
///     let (x, out) = (m.ancilla(0), m.ancilla(1));
///     m.x(x);
///     m.call(inner, &[x, out]);
/// })?;
/// let program = b.finish(main)?;
/// assert_eq!(program.len(), 2);
/// # Ok::<(), square_qir::QirError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    modules: Vec<Module>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of modules registered so far.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when no modules have been registered yet.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Registers a module with `params` caller-provided qubits and
    /// `ancillas` local scratch qubits. The closure receives a
    /// [`ModuleBuilder`] positioned in the compute block; call
    /// [`ModuleBuilder::store`] to switch to the store block.
    ///
    /// # Errors
    ///
    /// Returns an error if the module body references out-of-range
    /// operands, calls unknown/not-yet-registered modules, or violates
    /// gate well-formedness (duplicate operands).
    pub fn module(
        &mut self,
        name: impl Into<String>,
        params: usize,
        ancillas: usize,
        f: impl FnOnce(&mut ModuleBuilder<'_>),
    ) -> Result<ModuleId, QirError> {
        let mut mb = ModuleBuilder {
            existing: &self.modules,
            name: name.into(),
            params,
            ancillas,
            clbits: 0,
            section: Section::Compute,
            compute: Vec::new(),
            store: Vec::new(),
            custom_uncompute: None,
            error: None,
        };
        f(&mut mb);
        if let Some(e) = mb.error {
            return Err(e);
        }
        let module = Module {
            name: mb.name,
            params,
            ancillas,
            clbits: mb.clbits,
            compute: mb.compute,
            store: mb.store,
            custom_uncompute: mb.custom_uncompute,
        };
        validate::validate_module(&module, &self.modules)?;
        let id = ModuleId(self.modules.len() as u32);
        self.modules.push(module);
        Ok(id)
    }

    /// Finalizes the program with `entry` as the top-level module and
    /// runs whole-program validation.
    ///
    /// The entry module must declare zero parameters: its inputs are
    /// modeled as entry-level ancilla, matching the paper's `main`
    /// which `Allocate`s all program qubits (Fig. 6).
    ///
    /// # Errors
    ///
    /// Returns any whole-program validation failure, e.g. a store-block
    /// discipline violation (see [`crate::validate`]).
    pub fn finish(self, entry: ModuleId) -> Result<Program, QirError> {
        let program = Program {
            modules: self.modules,
            entry,
        };
        validate::validate_program(&program)?;
        Ok(program)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Compute,
    Store,
    Uncompute,
}

/// Builder for a single module body. Obtained through
/// [`ProgramBuilder::module`].
#[derive(Debug)]
pub struct ModuleBuilder<'a> {
    existing: &'a [Module],
    name: String,
    params: usize,
    ancillas: usize,
    clbits: usize,
    section: Section,
    compute: Vec<Stmt>,
    store: Vec<Stmt>,
    custom_uncompute: Option<Vec<Stmt>>,
    error: Option<QirError>,
}

impl ModuleBuilder<'_> {
    /// The i-th caller-provided qubit.
    ///
    /// Range errors are deferred: they surface from
    /// [`ProgramBuilder::module`] rather than panicking here.
    pub fn param(&mut self, i: usize) -> Operand {
        if i >= self.params && self.error.is_none() {
            self.error = Some(QirError::OperandOutOfRange {
                module: self.name.clone(),
                operand: format!("p{i}"),
            });
        }
        Operand::Param(i)
    }

    /// The i-th local ancilla qubit.
    pub fn ancilla(&mut self, i: usize) -> Operand {
        if i >= self.ancillas && self.error.is_none() {
            self.error = Some(QirError::OperandOutOfRange {
                module: self.name.clone(),
                operand: format!("a{i}"),
            });
        }
        Operand::Ancilla(i)
    }

    /// Switches emission from the compute block to the store block.
    pub fn store(&mut self) {
        self.section = Section::Store;
    }

    /// Switches emission to an explicit uncompute block, overriding the
    /// mechanical `Inverse()` of the compute block. Rarely needed; the
    /// paper's example writes it out for illustration only.
    pub fn uncompute(&mut self) {
        self.section = Section::Uncompute;
        if self.custom_uncompute.is_none() {
            self.custom_uncompute = Some(Vec::new());
        }
    }

    fn push(&mut self, stmt: Stmt) {
        match self.section {
            Section::Compute => self.compute.push(stmt),
            Section::Store => self.store.push(stmt),
            Section::Uncompute => self
                .custom_uncompute
                .get_or_insert_with(Vec::new)
                .push(stmt),
        }
    }

    /// Emits a NOT gate.
    pub fn x(&mut self, target: Operand) {
        self.push(Stmt::Gate(Gate::X { target }));
    }

    /// Emits a CNOT gate.
    pub fn cx(&mut self, control: Operand, target: Operand) {
        self.push(Stmt::Gate(Gate::Cx { control, target }));
    }

    /// Emits a Toffoli gate.
    pub fn ccx(&mut self, c0: Operand, c1: Operand, target: Operand) {
        self.push(Stmt::Gate(Gate::Ccx { c0, c1, target }));
    }

    /// Emits a SWAP gate.
    pub fn swap(&mut self, a: Operand, b: Operand) {
        self.push(Stmt::Gate(Gate::Swap { a, b }));
    }

    /// Emits a multi-controlled NOT gate.
    pub fn mcx(&mut self, controls: &[Operand], target: Operand) {
        self.push(Stmt::Gate(Gate::Mcx {
            controls: controls.to_vec(),
            target,
        }));
    }

    /// Emits an arbitrary gate.
    pub fn gate(&mut self, gate: Gate<Operand>) {
        self.push(Stmt::Gate(gate));
    }

    /// Declares (at least) `n` module-local classical bits. Optional:
    /// [`ModuleBuilder::measure`] and [`ModuleBuilder::cond_x`] grow
    /// the count on demand; use this to reserve bits up front.
    pub fn declare_clbits(&mut self, n: usize) {
        self.clbits = self.clbits.max(n);
    }

    /// Emits a mid-circuit measurement of `qubit` into classical bit
    /// `clbit`, growing the module's clbit count to cover it.
    pub fn measure(&mut self, qubit: Operand, clbit: usize) {
        self.clbits = self.clbits.max(clbit + 1);
        self.push(Stmt::Measure { qubit, clbit });
    }

    /// Emits an X gate on `target` guarded by classical bit `clbit`
    /// (the measurement-based-uncompute correction), growing the
    /// module's clbit count to cover it.
    pub fn cond_x(&mut self, clbit: usize, target: Operand) {
        self.cond_gate(clbit, Gate::X { target });
    }

    /// Emits an arbitrary gate guarded by classical bit `clbit`.
    pub fn cond_gate(&mut self, clbit: usize, gate: Gate<Operand>) {
        self.clbits = self.clbits.max(clbit + 1);
        self.push(Stmt::CondGate { clbit, gate });
    }

    /// Emits a call to a previously registered module, binding `args`
    /// positionally to the callee's parameters.
    pub fn call(&mut self, callee: ModuleId, args: &[Operand]) {
        if self.error.is_none() {
            match self.existing.get(callee.index()) {
                None => self.error = Some(QirError::UnknownModule(callee)),
                Some(m) if m.params != args.len() => {
                    self.error = Some(QirError::ArityMismatch {
                        caller: self.name.clone(),
                        callee: m.name.clone(),
                        expected: m.params,
                        found: args.len(),
                    });
                }
                Some(m) => {
                    for (i, a) in args.iter().enumerate() {
                        if args[i + 1..].contains(a) {
                            self.error = Some(QirError::AliasedArguments {
                                caller: self.name.clone(),
                                callee: m.name.clone(),
                            });
                            break;
                        }
                    }
                }
            }
        }
        self.push(Stmt::Call {
            callee,
            args: args.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_fig6_program() {
        let mut b = ProgramBuilder::new();
        let fun1 = b
            .module("fun1", 4, 1, |m| {
                let (i0, i1, i2, out) = (m.param(0), m.param(1), m.param(2), m.param(3));
                let a = m.ancilla(0);
                m.ccx(i0, i1, i2);
                m.cx(i2, a);
                m.ccx(i1, i0, a);
                m.store();
                m.cx(a, out);
            })
            .unwrap();
        let main = b
            .module("main", 0, 4, |m| {
                let q: Vec<_> = (0..4).map(|i| m.ancilla(i)).collect();
                m.call(fun1, &q);
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        assert_eq!(p.module(fun1).compute().len(), 3);
        assert_eq!(p.module(fun1).store().len(), 1);
        assert_eq!(p.entry(), main);
    }

    #[test]
    fn rejects_out_of_range_param() {
        let mut b = ProgramBuilder::new();
        let err = b.module("bad", 1, 0, |m| {
            let p9 = m.param(9);
            m.x(p9);
        });
        assert!(matches!(err, Err(QirError::OperandOutOfRange { .. })));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut b = ProgramBuilder::new();
        let leaf = b
            .module("leaf", 2, 0, |m| {
                let (a, bq) = (m.param(0), m.param(1));
                m.cx(a, bq);
            })
            .unwrap();
        let err = b.module("caller", 3, 0, |m| {
            let a = m.param(0);
            m.call(leaf, &[a]);
        });
        assert!(matches!(err, Err(QirError::ArityMismatch { .. })));
    }

    #[test]
    fn rejects_aliased_call_args() {
        let mut b = ProgramBuilder::new();
        let leaf = b
            .module("leaf", 2, 0, |m| {
                let (a, bq) = (m.param(0), m.param(1));
                m.cx(a, bq);
            })
            .unwrap();
        let err = b.module("caller", 1, 0, |m| {
            let a = m.param(0);
            m.call(leaf, &[a, a]);
        });
        assert!(matches!(err, Err(QirError::AliasedArguments { .. })));
    }

    #[test]
    fn rejects_forward_call() {
        let mut b = ProgramBuilder::new();
        let err = b.module("caller", 1, 0, |m| {
            let a = m.param(0);
            m.call(ModuleId::from_index(5), &[a]);
        });
        assert!(matches!(err, Err(QirError::UnknownModule(_))));
    }

    #[test]
    fn explicit_uncompute_block() {
        let mut b = ProgramBuilder::new();
        let id = b
            .module("explicit", 1, 1, |m| {
                let (p, a) = (m.param(0), m.ancilla(0));
                m.cx(p, a);
                m.store();
                m.uncompute();
                m.cx(p, a);
            })
            .unwrap();
        let p = b.finish(id).unwrap_err();
        // entry with params is rejected
        assert!(matches!(p, QirError::EntryHasParams { .. }));
    }

    #[test]
    fn measure_and_cond_grow_clbits() {
        let mut b = ProgramBuilder::new();
        let main = b
            .module("main", 0, 2, |m| {
                let (x, a) = (m.ancilla(0), m.ancilla(1));
                m.x(x);
                m.cx(x, a);
                m.measure(a, 1);
                m.cond_x(1, a);
                m.store();
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        assert_eq!(p.module(main).clbits(), 2);
        assert_eq!(p.module(main).compute().len(), 4);
    }
}

//! Executed instruction traces and mechanical uncomputation.
//!
//! The instrumentation-driven compilation of the SQUARE paper executes
//! the program's (fully known) control flow at compile time, producing
//! a flat stream of allocation, gate, and free events over *virtual*
//! qubits. Uncomputing a compute block is a purely mechanical
//! transformation of the recorded trace slice: replay it in reverse,
//! inverting each gate (all gates in this IR are self-inverse), turning
//! `Alloc` into `Free` and `Free` into a fresh `Alloc`.
//!
//! This single transformation yields both phenomena the paper studies:
//!
//! * **Recursive recomputation** (Eager): a child that reclaimed its
//!   ancilla has `Alloc … gates … Free` inside the parent's compute
//!   slice; the inverse slice *re-allocates and re-runs* the child —
//!   the `2^ℓ` blowup of Section III.
//! * **Qubit reservation sweep** (Lazy): a child that kept garbage has
//!   an `Alloc` with no matching `Free` in the slice; the inverse slice
//!   ends the garbage's life with a `Free` — the ancestor's uncompute
//!   cleans it up.

use crate::gate::Gate;
use std::collections::HashMap;
use std::fmt;

/// A program-wide virtual qubit id, unique per allocation event.
///
/// Virtual ids are never reused: re-allocating a reclaimed physical
/// qubit mints a fresh `VirtId`. This keeps trace inversion and
/// liveness bookkeeping unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtId(pub u32);

impl VirtId {
    /// Raw index (dense, allocation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VirtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A program-wide classical bit id, unique per measurement site.
///
/// Like [`VirtId`]s, classical-bit ids are never reused: every frame
/// activation mints fresh ids for its module-local classical bits, so
/// a recursive module's measurement outcomes stay distinguishable in
/// the trace and in validator diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClbitId(pub u32);

impl ClbitId {
    /// Raw index (dense, mint order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClbitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One event in an executed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// A fresh virtual qubit comes alive in state |0⟩.
    Alloc(VirtId),
    /// The virtual qubit is reclaimed (must be |0⟩ for non-garbage
    /// frees; checked by the reference semantics).
    Free(VirtId),
    /// A gate over live virtual qubits.
    Gate(Gate<VirtId>),
    /// A mid-circuit computational-basis measurement: the qubit's
    /// current value is recorded into `clbit`. In this IR's
    /// basis-state model measurement is non-destructive — the qubit
    /// keeps its value (the boolean analog of the X-basis
    /// measure-and-fix-up of measurement-based uncomputation).
    Measure {
        /// Qubit being read.
        qubit: VirtId,
        /// Classical bit receiving the outcome.
        clbit: ClbitId,
    },
    /// A classically controlled gate: `gate` fires iff `clbit` holds 1.
    CondGate {
        /// Classical guard bit (must have been measured).
        clbit: ClbitId,
        /// The guarded gate.
        gate: Gate<VirtId>,
    },
}

impl TraceOp {
    /// True for gate events. Measurements and classically controlled
    /// gates count: both occupy their cell for a cycle, so every gate
    /// counter (trace, semantics, executor) treats them as gates.
    pub fn is_gate(&self) -> bool {
        matches!(
            self,
            TraceOp::Gate(_) | TraceOp::Measure { .. } | TraceOp::CondGate { .. }
        )
    }
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceOp::Alloc(v) => write!(f, "alloc {v}"),
            TraceOp::Free(v) => write!(f, "free {v}"),
            TraceOp::Gate(g) => write!(f, "{g}"),
            TraceOp::Measure { qubit, clbit } => write!(f, "measure {qubit} {clbit}"),
            TraceOp::CondGate { clbit, gate } => write!(f, "cond {clbit} {gate}"),
        }
    }
}

/// Mechanically inverts a trace slice.
///
/// `fresh` mints virtual ids for qubits that the inverse slice must
/// re-allocate (those that were freed inside the original slice). Ids
/// allocated *outside* the slice (live-through qubits and garbage from
/// non-reclaimed children) keep their identity, so the inverse acts on
/// the same live qubits.
///
/// Replaying `slice` followed by `invert_slice(slice, …)` on any state
/// restores that state (see the property tests in this module and in
/// `sem`).
pub fn invert_slice(slice: &[TraceOp], fresh: impl FnMut() -> VirtId) -> Vec<TraceOp> {
    let mut out = Vec::new();
    invert_slice_into(slice, &mut out, fresh);
    out
}

/// [`invert_slice`] writing into a caller-owned buffer.
///
/// `out` is cleared first; its capacity is reused, which lets a
/// compile loop invert one frame slice per reclamation without
/// allocating a fresh vector each time.
pub fn invert_slice_into(
    slice: &[TraceOp],
    out: &mut Vec<TraceOp>,
    mut fresh: impl FnMut() -> VirtId,
) {
    out.clear();
    out.reserve(slice.len());
    let mut remap: HashMap<VirtId, VirtId> = HashMap::new();
    for op in slice.iter().rev() {
        match op {
            TraceOp::Free(v) => {
                let nv = fresh();
                remap.insert(*v, nv);
                out.push(TraceOp::Alloc(nv));
            }
            TraceOp::Alloc(v) => {
                let mapped = remap.get(v).copied().unwrap_or(*v);
                out.push(TraceOp::Free(mapped));
            }
            TraceOp::Gate(g) => {
                let inv = g.inverse().map(|q| remap.get(q).copied().unwrap_or(*q));
                out.push(TraceOp::Gate(inv));
            }
            // Measurement is idempotent on basis states: re-measuring
            // at the replay point reads the same value into the same
            // classical bit, so the inverse of a measurement is the
            // measurement itself (qubit remapped, clbit kept).
            TraceOp::Measure { qubit, clbit } => {
                let qubit = remap.get(qubit).copied().unwrap_or(*qubit);
                out.push(TraceOp::Measure {
                    qubit,
                    clbit: *clbit,
                });
            }
            // A guarded gate inverts to the same guard over the
            // inverted gate: the clbit's value is unchanged between
            // forward pass and sweep (classical bits are write-once per
            // measurement site), so the guard fires iff it fired
            // forward, undoing exactly what was done.
            TraceOp::CondGate { clbit, gate } => {
                let inv = gate.inverse().map(|q| remap.get(q).copied().unwrap_or(*q));
                out.push(TraceOp::CondGate {
                    clbit: *clbit,
                    gate: inv,
                });
            }
        }
    }
}

/// Counts the gate events in a trace slice (allocation bookkeeping
/// events are free at runtime and excluded from gate costs).
pub fn gate_count(slice: &[TraceOp]) -> u64 {
    slice.iter().filter(|op| op.is_gate()).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(ops: &[TraceOp], bits: &mut HashMap<VirtId, bool>) {
        apply_with_clbits(ops, bits, &mut HashMap::new());
    }

    fn apply_with_clbits(
        ops: &[TraceOp],
        bits: &mut HashMap<VirtId, bool>,
        clbits: &mut HashMap<ClbitId, bool>,
    ) {
        for op in ops {
            match op {
                TraceOp::Alloc(v) => {
                    assert!(bits.insert(*v, false).is_none(), "double alloc {v}");
                }
                TraceOp::Free(v) => {
                    bits.remove(v).expect("free of dead qubit");
                }
                TraceOp::Measure { qubit, clbit } => {
                    clbits.insert(*clbit, bits[qubit]);
                }
                TraceOp::CondGate { clbit, gate } => {
                    if clbits[clbit] {
                        apply_with_clbits(
                            &[TraceOp::Gate(gate.clone())],
                            bits,
                            &mut HashMap::new(),
                        );
                    }
                }
                TraceOp::Gate(g) => {
                    let val = |q: &VirtId| bits[q];
                    match g {
                        Gate::X { target } => {
                            let t = *target;
                            *bits.get_mut(&t).unwrap() ^= true;
                        }
                        Gate::Cx { control, target } => {
                            let c = val(control);
                            let t = *target;
                            if c {
                                *bits.get_mut(&t).unwrap() ^= true;
                            }
                        }
                        Gate::Ccx { c0, c1, target } => {
                            let c = val(c0) && val(c1);
                            let t = *target;
                            if c {
                                *bits.get_mut(&t).unwrap() ^= true;
                            }
                        }
                        Gate::Swap { a, b } => {
                            let (va, vb) = (val(a), val(b));
                            *bits.get_mut(a).unwrap() = vb;
                            *bits.get_mut(b).unwrap() = va;
                        }
                        Gate::Mcx { controls, target } => {
                            let c = controls.iter().all(val);
                            let t = *target;
                            if c {
                                *bits.get_mut(&t).unwrap() ^= true;
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn inverse_restores_state_including_inner_alloc_free() {
        // Slice: alloc q2; CX q0->q2; CCX q0,q2->q1; CX q0->q2; free q2
        // (an "eager child" that allocates, computes, reclaims).
        let q0 = VirtId(0);
        let q1 = VirtId(1);
        let q2 = VirtId(2);
        let slice = vec![
            TraceOp::Alloc(q2),
            TraceOp::Gate(Gate::Cx {
                control: q0,
                target: q2,
            }),
            TraceOp::Gate(Gate::Ccx {
                c0: q0,
                c1: q2,
                target: q1,
            }),
            TraceOp::Gate(Gate::Cx {
                control: q0,
                target: q2,
            }),
            TraceOp::Free(q2),
        ];
        let mut next = 3u32;
        let inv = invert_slice(&slice, || {
            let v = VirtId(next);
            next += 1;
            v
        });
        // Inverse must re-allocate a fresh qubit where the free was.
        assert!(matches!(inv[0], TraceOp::Alloc(VirtId(3))));
        assert!(matches!(inv[4], TraceOp::Free(VirtId(3))));

        let mut bits = HashMap::new();
        bits.insert(q0, true);
        bits.insert(q1, false);
        apply(&slice, &mut bits);
        assert!(bits[&q1], "CCX fired: q2 held q0's value");
        apply(&inv, &mut bits);
        assert!(bits[&q0]);
        assert!(!bits[&q1], "inverse undid the compute");
        assert_eq!(bits.len(), 2, "no leaked allocations");
    }

    #[test]
    fn inverse_frees_unmatched_garbage_alloc() {
        // Slice: alloc q1; CX q0->q1  (a "lazy child" leaving garbage).
        let q0 = VirtId(0);
        let q1 = VirtId(1);
        let slice = vec![
            TraceOp::Alloc(q1),
            TraceOp::Gate(Gate::Cx {
                control: q0,
                target: q1,
            }),
        ];
        let inv = invert_slice(&slice, || unreachable!("no frees in slice"));
        assert_eq!(
            inv,
            vec![
                TraceOp::Gate(Gate::Cx {
                    control: q0,
                    target: q1
                }),
                TraceOp::Free(q1),
            ]
        );

        let mut bits = HashMap::new();
        bits.insert(q0, true);
        apply(&slice, &mut bits);
        assert!(bits[&q1], "garbage holds a copy");
        apply(&inv, &mut bits);
        assert!(!bits.contains_key(&q1), "garbage swept by ancestor");
        assert!(bits[&q0]);
    }

    #[test]
    fn double_inversion_has_same_shape() {
        let q0 = VirtId(0);
        let slice = vec![
            TraceOp::Alloc(VirtId(1)),
            TraceOp::Gate(Gate::Cx {
                control: q0,
                target: VirtId(1),
            }),
            TraceOp::Free(VirtId(1)),
        ];
        let mut next = 10u32;
        let mut fresh = || {
            let v = VirtId(next);
            next += 1;
            v
        };
        let inv = invert_slice(&slice, &mut fresh);
        let inv2 = invert_slice(&inv, &mut fresh);
        assert_eq!(inv2.len(), slice.len());
        assert_eq!(gate_count(&inv2), gate_count(&slice));
    }

    #[test]
    fn gate_count_ignores_bookkeeping() {
        let slice = vec![
            TraceOp::Alloc(VirtId(0)),
            TraceOp::Gate(Gate::X { target: VirtId(0) }),
            TraceOp::Free(VirtId(0)),
        ];
        assert_eq!(gate_count(&slice), 1);
    }

    #[test]
    fn gate_count_includes_measure_and_cond() {
        let slice = vec![
            TraceOp::Alloc(VirtId(0)),
            TraceOp::Measure {
                qubit: VirtId(0),
                clbit: ClbitId(0),
            },
            TraceOp::CondGate {
                clbit: ClbitId(0),
                gate: Gate::X { target: VirtId(0) },
            },
            TraceOp::Free(VirtId(0)),
        ];
        assert_eq!(gate_count(&slice), 2);
    }

    #[test]
    fn measure_and_correct_resets_ancilla_and_survives_inversion() {
        // The MBU reclaim sequence on a dirty ancilla: measure into a
        // clbit, conditionally flip. The ancilla ends |0⟩ regardless of
        // its value, and the mechanical inverse of the sequence (same
        // clbit, re-measure + same guard) is a no-op on the restored
        // state — replaying slice + inverse round-trips.
        let a = VirtId(0);
        let c = ClbitId(0);
        let slice = vec![
            TraceOp::Measure { qubit: a, clbit: c },
            TraceOp::CondGate {
                clbit: c,
                gate: Gate::X { target: a },
            },
        ];
        for dirty in [false, true] {
            let mut bits = HashMap::from([(a, dirty)]);
            let mut clbits = HashMap::new();
            apply_with_clbits(&slice, &mut bits, &mut clbits);
            assert!(!bits[&a], "ancilla reset (dirty={dirty})");
            assert_eq!(clbits[&c], dirty, "outcome recorded");
        }
        let inv = invert_slice(&slice, || unreachable!("no frees"));
        assert_eq!(
            inv,
            vec![
                TraceOp::CondGate {
                    clbit: c,
                    gate: Gate::X { target: a },
                },
                TraceOp::Measure { qubit: a, clbit: c },
            ]
        );
        assert!(inv.iter().all(|op| op.is_gate()));
    }
}

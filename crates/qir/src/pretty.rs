//! Human-readable rendering of programs and traces.

use std::fmt::Write as _;

use crate::analysis::ProgramStats;
use crate::module::{Program, Stmt};
use crate::trace::TraceOp;

/// Renders a program listing with per-module compute/store/uncompute
/// sections, in the spirit of the paper's Fig. 6 sample code.
pub fn program_listing(program: &Program) -> String {
    let mut out = String::new();
    for (i, m) in program.modules().iter().enumerate() {
        let marker = if crate::module::ModuleId::from_index(i) == program.entry() {
            " (entry)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "module {}({} params, {} ancilla){}:",
            m.name(),
            m.params(),
            m.ancillas(),
            marker
        );
        let block = |out: &mut String, label: &str, stmts: &[Stmt], program: &Program| {
            if stmts.is_empty() {
                return;
            }
            let _ = writeln!(out, "  {label} {{");
            for s in stmts {
                match s {
                    Stmt::Gate(g) => {
                        let _ = writeln!(out, "    {g}");
                    }
                    Stmt::Call { callee, args } => {
                        let name = program.module(*callee).name();
                        let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                        let _ = writeln!(out, "    call {name}({})", args.join(", "));
                    }
                }
            }
            let _ = writeln!(out, "  }}");
        };
        block(&mut out, "Compute", m.compute(), program);
        block(&mut out, "Store", m.store(), program);
        if let Some(u) = m.custom_uncompute() {
            block(&mut out, "Uncompute", u, program);
        }
    }
    out
}

/// One-line-per-event rendering of a trace (for debugging and the
/// `quickstart` example).
pub fn trace_listing(trace: &[TraceOp], limit: usize) -> String {
    let mut out = String::new();
    for (i, op) in trace.iter().take(limit).enumerate() {
        let _ = writeln!(out, "{i:>6}  {op}");
    }
    if trace.len() > limit {
        let _ = writeln!(out, "  … {} more events", trace.len() - limit);
    }
    out
}

/// Summarizes static program shape: module count, flattened gates,
/// nesting height — the knobs the paper's synthetic benchmarks sweep.
pub fn program_summary(program: &Program) -> String {
    let stats = ProgramStats::analyze(program);
    let entry = stats.module(program.entry());
    format!(
        "{} modules; entry `{}`: {} forward gates, {} transitive ancilla, height {}",
        program.len(),
        program.module(program.entry()).name(),
        entry.gates_forward(),
        entry.ancilla_transitive,
        entry.height
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn listing_contains_sections_and_calls() {
        let mut b = ProgramBuilder::new();
        let f = b
            .module("f", 1, 1, |m| {
                let (x, a) = (m.param(0), m.ancilla(0));
                m.cx(x, a);
            })
            .unwrap();
        let main = b
            .module("main", 0, 1, |m| {
                let x = m.ancilla(0);
                m.x(x);
                m.call(f, &[x]);
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let listing = program_listing(&p);
        assert!(listing.contains("module f(1 params, 1 ancilla)"));
        assert!(listing.contains("call f(a0)"));
        assert!(listing.contains("(entry)"));
        let summary = program_summary(&p);
        assert!(summary.contains("2 modules"));
    }

    #[test]
    fn trace_listing_truncates() {
        use crate::gate::Gate;
        use crate::trace::VirtId;
        let trace: Vec<TraceOp> = (0..10)
            .map(|_| TraceOp::Gate(Gate::X { target: VirtId(0) }))
            .collect();
        let s = trace_listing(&trace, 3);
        assert!(s.contains("… 7 more events"));
    }
}

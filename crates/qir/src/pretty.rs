//! Human-readable rendering of programs and traces.
//!
//! [`program_listing`] emits the canonical `.sq` surface syntax of the
//! `square-lang` frontend — the Fig. 6-style module listings of the
//! paper, made machine-parseable. The rendering is *lossless*: for any
//! valid [`Program`] `p`, parsing the listing back reproduces `p`
//! structurally (`square_lang::parse_program(&program_listing(&p)) ==
//! Ok(p)`), which the frontend's round-trip tests and the pipeline
//! fuzzer enforce. Losslessness requires three things the historical
//! renderer got wrong: the entry module is marked deterministically
//! (`entry module …`), an *empty* explicit uncompute block prints as
//! `uncompute {}` (it means "do nothing", which is different from the
//! absent block's "mechanically invert compute"), and every statement
//! is terminated so the grammar needs no newline sensitivity.

use std::fmt::Write as _;

use crate::analysis::ProgramStats;
use crate::gate::Gate;
use crate::module::{ModuleId, Operand, Program, Stmt};
use crate::trace::TraceOp;

/// The canonical lowercase `.sq` mnemonic for a gate kind.
pub fn gate_mnemonic<Q>(gate: &Gate<Q>) -> &'static str {
    match gate {
        Gate::X { .. } => "x",
        Gate::Cx { .. } => "cx",
        Gate::Ccx { .. } => "ccx",
        Gate::Swap { .. } => "swap",
        Gate::Mcx { .. } => "mcx",
    }
}

/// Renders one statement in `.sq` surface syntax, without indentation
/// or the trailing `;` (`ccx p0 p1 a0`, `call fun1(a0, p1)`).
pub fn stmt_listing(stmt: &Stmt, program: &Program) -> String {
    let mut out = String::new();
    match stmt {
        Stmt::Gate(g) => out.push_str(&gate_stmt_listing(g)),
        Stmt::Call { callee, args } => {
            let name = program.module(*callee).name();
            let args: Vec<String> = args.iter().map(Operand::to_string).collect();
            let _ = write!(out, "call {name}({})", args.join(", "));
        }
        Stmt::Measure { qubit, clbit } => {
            let _ = write!(out, "measure {qubit} c{clbit}");
        }
        Stmt::CondGate { clbit, gate } => {
            let _ = write!(out, "cond c{clbit} {}", gate_stmt_listing(gate));
        }
    }
    out
}

fn gate_stmt_listing(gate: &Gate<Operand>) -> String {
    let mut out = String::from(gate_mnemonic(gate));
    gate.for_each_qubit(|q| {
        let _ = write!(out, " {q}");
    });
    out
}

/// Renders a program as canonical `.sq` source: per-module
/// compute/store/uncompute sections in the spirit of the paper's
/// Fig. 6 sample code, parseable by the `square-lang` frontend.
///
/// Empty compute and store blocks are omitted (absence means empty);
/// an explicit uncompute block is always printed — `uncompute {}`
/// when empty — because its *presence* is semantically meaningful.
pub fn program_listing(program: &Program) -> String {
    let mut out = String::new();
    for (i, m) in program.modules().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let marker = if ModuleId::from_index(i) == program.entry() {
            "entry "
        } else {
            ""
        };
        // The clbits clause is printed only when present so programs
        // without measurement render byte-identically to before the
        // clause existed.
        let clbits = if m.clbits() > 0 {
            format!(", {} clbits", m.clbits())
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{marker}module {}({} params, {} ancilla{clbits}) {{",
            m.name(),
            m.params(),
            m.ancillas(),
        );
        let block = |out: &mut String, label: &str, stmts: &[Stmt]| {
            if stmts.is_empty() {
                let _ = writeln!(out, "  {label} {{}}");
                return;
            }
            let _ = writeln!(out, "  {label} {{");
            for s in stmts {
                let _ = writeln!(out, "    {};", stmt_listing(s, program));
            }
            let _ = writeln!(out, "  }}");
        };
        if !m.compute().is_empty() {
            block(&mut out, "compute", m.compute());
        }
        if !m.store().is_empty() {
            block(&mut out, "store", m.store());
        }
        if let Some(u) = m.custom_uncompute() {
            block(&mut out, "uncompute", u);
        }
        out.push_str("}\n");
    }
    out
}

/// One-line-per-event rendering of a trace (for debugging and the
/// `quickstart` example).
pub fn trace_listing(trace: &[TraceOp], limit: usize) -> String {
    let mut out = String::new();
    for (i, op) in trace.iter().take(limit).enumerate() {
        let _ = writeln!(out, "{i:>6}  {op}");
    }
    if trace.len() > limit {
        let _ = writeln!(out, "  … {} more events", trace.len() - limit);
    }
    out
}

/// Summarizes static program shape: module count, flattened gates,
/// nesting height — the knobs the paper's synthetic benchmarks sweep.
pub fn program_summary(program: &Program) -> String {
    let stats = ProgramStats::analyze(program);
    let entry = stats.module(program.entry());
    format!(
        "{} modules; entry `{}`: {} forward gates, {} transitive ancilla, height {}",
        program.len(),
        program.module(program.entry()).name(),
        entry.gates_forward(),
        entry.ancilla_transitive,
        entry.height
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn listing_contains_sections_and_calls() {
        let mut b = ProgramBuilder::new();
        let f = b
            .module("f", 1, 1, |m| {
                let (x, a) = (m.param(0), m.ancilla(0));
                m.cx(x, a);
            })
            .unwrap();
        let main = b
            .module("main", 0, 1, |m| {
                let x = m.ancilla(0);
                m.x(x);
                m.call(f, &[x]);
            })
            .unwrap();
        let p = b.finish(main).unwrap();
        let listing = program_listing(&p);
        assert!(listing.contains("module f(1 params, 1 ancilla) {"));
        assert!(listing.contains("call f(a0);"));
        assert!(listing.contains("entry module main(0 params, 1 ancilla) {"));
        let summary = program_summary(&p);
        assert!(summary.contains("2 modules"));
    }

    #[test]
    fn empty_custom_uncompute_is_rendered() {
        // `Some([])` (explicitly do nothing) must stay distinguishable
        // from `None` (mechanically invert compute) in the listing.
        let mut b = ProgramBuilder::new();
        let id = b
            .module("noop_unc", 0, 2, |m| {
                let (a, out) = (m.ancilla(0), m.ancilla(1));
                m.x(a);
                m.store();
                m.cx(a, out);
                m.uncompute();
            })
            .unwrap();
        let p = b.finish(id).unwrap();
        let listing = program_listing(&p);
        assert!(listing.contains("uncompute {}"), "{listing}");
    }

    #[test]
    fn measurement_statements_render_with_clbit_clause() {
        let mut b = ProgramBuilder::new();
        let id = b
            .module("mbu", 0, 1, |m| {
                let a = m.ancilla(0);
                m.x(a);
                m.measure(a, 0);
                m.cond_x(0, a);
            })
            .unwrap();
        let p = b.finish(id).unwrap();
        let listing = program_listing(&p);
        assert!(
            listing.contains("entry module mbu(0 params, 1 ancilla, 1 clbits) {"),
            "{listing}"
        );
        assert!(listing.contains("measure a0 c0;"), "{listing}");
        assert!(listing.contains("cond c0 x a0;"), "{listing}");
    }

    #[test]
    fn mnemonics_are_lowercase_sq_names() {
        use crate::gate::Gate;
        assert_eq!(gate_mnemonic(&Gate::X { target: 0u32 }), "x");
        assert_eq!(
            gate_mnemonic(&Gate::Mcx {
                controls: vec![0u32],
                target: 1
            }),
            "mcx"
        );
    }

    #[test]
    fn trace_listing_truncates() {
        use crate::gate::Gate;
        use crate::trace::VirtId;
        let trace: Vec<TraceOp> = (0..10)
            .map(|_| TraceOp::Gate(Gate::X { target: VirtId(0) }))
            .collect();
        let s = trace_listing(&trace, 3);
        assert!(s.contains("… 7 more events"));
    }
}
